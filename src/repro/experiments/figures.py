"""Regeneration of the paper's evaluation figures (§5.3, §5.4.4).

Figures 10 and 13-15 are distributions of the detected bugs over properties
of their triggering queries (synthesis steps, dependencies, patterns,
nesting depth); Figures 11-12 are clause statistics over the bug-triggering
queries; Figure 18 is the cumulative-bugs-over-time comparison.  All return
plain data series; :mod:`repro.experiments.report` renders ASCII charts.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runner import CampaignResult
from repro.experiments.tables import run_full_gqs_campaigns
from repro.gdb import DIALECTS

__all__ = [
    "collect_trigger_records",
    "figure10",
    "figure10_throughput",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure18",
]

_ENGINE_ORDER = ("neo4j", "memgraph", "kuzu", "falkordb")


def collect_trigger_records(
    campaigns: Optional[Dict[str, CampaignResult]] = None, seed: int = 0
) -> List[Dict[str, object]]:
    """One record per detected bug: the §5.3 analysis corpus."""
    campaigns = campaigns or run_full_gqs_campaigns(seed=seed)
    records: List[Dict[str, object]] = []
    for name in _ENGINE_ORDER:
        records.extend(campaigns[name].trigger_records)
    return records


def _bucket_distribution(records, key, buckets) -> Dict[str, int]:
    """Histogram of records[key] over right-open integer buckets."""
    out: Dict[str, int] = {}
    for low, high, label in buckets:
        count = sum(
            1
            for record in records
            if low <= record[key] and (high is None or record[key] <= high)
        )
        out[label] = count
    return out


def figure10(records) -> Dict[str, Dict[str, int]]:
    """Bug distribution by synthesis steps, per engine (paper Figure 10)."""
    steps_axis = sorted({record["n_steps"] for record in records})
    series: Dict[str, Dict[str, int]] = {}
    for engine in _ENGINE_ORDER:
        display = DIALECTS[engine].display_name
        counter = Counter(
            record["n_steps"] for record in records if record["engine"] == engine
        )
        series[display] = {str(steps): counter.get(steps, 0) for steps in steps_axis}
    return series


def figure10_throughput() -> Dict[str, Dict[int, float]]:
    """Queries/second by synthesis steps (Figure 10's second message).

    Derived from the engine cost model: the paper reports 9-step queries
    6.6x slower than 3-step ones, ~6 q/s on Memgraph and ~3 q/s on Neo4j at
    9 steps.
    """
    out: Dict[str, Dict[int, float]] = {}
    for engine in _ENGINE_ORDER:
        dialect = DIALECTS[engine]
        out[dialect.display_name] = {
            steps: round(1.0 / dialect.cost_of_steps(steps), 2)
            for steps in range(1, 10)
        }
    return out


def figure11(records) -> Dict[str, int]:
    """Aggregated clause occurrences in the bug-triggering queries."""
    counter: Counter = Counter()
    for record in records:
        counter.update(record["clause_names"])
    return dict(counter.most_common())


def figure12(records) -> Dict[str, int]:
    """Number of bugs whose triggering query involves each clause type."""
    counter: Counter = Counter()
    for record in records:
        for clause in set(record["clause_names"]):
            counter[clause] += 1
    return dict(counter.most_common())


def figure13(records) -> Dict[str, int]:
    """Bug distribution by number of cross-clause dependencies."""
    return _bucket_distribution(
        records,
        "dependencies",
        [
            (0, 10, "0-10"),
            (11, 20, "11-20"),
            (21, 40, "21-40"),
            (41, 60, "41-60"),
            (61, None, ">60"),
        ],
    )


def figure14(records) -> Dict[str, int]:
    """Bug distribution by number of patterns."""
    return _bucket_distribution(
        records,
        "patterns",
        [
            (0, 1, "0-1"),
            (2, 3, "2-3"),
            (4, 6, "4-6"),
            (7, 9, "7-9"),
            (10, None, ">=10"),
        ],
    )


def figure15(records) -> Dict[str, int]:
    """Bug distribution by depth of nested expressions."""
    return _bucket_distribution(
        records,
        "depth",
        [
            (0, 3, "0-3"),
            (4, 5, "4-5"),
            (6, 8, "6-8"),
            (9, 12, "9-12"),
            (13, None, ">12"),
        ],
    )


def figure18(
    campaigns: Dict[Tuple, CampaignResult],
    engines: Sequence[str] = ("neo4j", "falkordb"),
    n_points: int = 12,
) -> Dict[str, Dict[str, List[Tuple[float, int]]]]:
    """Cumulative bugs over the 24-hour-equivalent campaign (Figure 18).

    Takes the campaign results of Table 6 — keyed ``(tester, engine)`` or,
    straight from :func:`repro.experiments.run_campaign_grid`,
    ``(tester, engine, seed)`` — and returns, per engine and tool, a series
    of (time fraction of budget, cumulative distinct bugs).
    """
    out: Dict[str, Dict[str, List[Tuple[float, int]]]] = {}
    for engine in engines:
        engine_series: Dict[str, List[Tuple[float, int]]] = {}
        relevant = {
            key[0]: result
            for key, result in campaigns.items()
            if key[1] == engine
        }
        if not relevant:
            continue
        budget = max(result.sim_seconds for result in relevant.values())
        for tool, result in relevant.items():
            series: List[Tuple[float, int]] = []
            for index in range(n_points + 1):
                t = budget * index / n_points
                count = sum(1 for when, _fid in result.timeline if when <= t)
                series.append((round(t, 1), count))
            engine_series[tool] = series
        out[DIALECTS[engine].display_name] = engine_series
    return out
