"""Plain-text rendering of tables and figures, in the paper's row format."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_histogram", "render_series", "render_kv"]


def render_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def render_histogram(
    data: Mapping[str, int], title: str = "", width: int = 40
) -> str:
    """Render a {label: count} mapping as an ASCII bar chart."""
    lines = [title] if title else []
    if not data:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(data.values()) or 1
    label_width = max(len(str(label)) for label in data)
    for label, count in data.items():
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {count}")
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence], title: str = ""
) -> str:
    """Render named (x, y) series as aligned columns (for Figure 18)."""
    lines = [title] if title else []
    for name, points in series.items():
        rendered = ", ".join(f"{x:g}:{y}" for x, y in points)
        lines.append(f"{name:>10s}: {rendered}")
    return "\n".join(lines)


def render_kv(data: Mapping[str, object], title: str = "") -> str:
    """Render a flat mapping, one entry per line."""
    lines = [title] if title else []
    for key, value in data.items():
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
