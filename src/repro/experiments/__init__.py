"""Evaluation harness: regenerates every table and figure of the paper's §5."""

from repro.experiments.campaign import (
    DAY_EQUIVALENT_SECONDS,
    FULL_CAMPAIGN_GATE_SCALE,
    FULL_CAMPAIGN_MAX_QUERIES,
    TESTER_NAMES,
    campaign_grid_cells,
    make_tester,
    run_campaign_grid,
    run_tool_campaign,
    tester_supports,
)
from repro.experiments.figures import (
    collect_trigger_records,
    figure10,
    figure10_throughput,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure18,
)
from repro.experiments.report import (
    render_histogram,
    render_kv,
    render_series,
    render_table,
)
from repro.experiments.tables import (
    run_full_gqs_campaigns,
    table2,
    table3,
    table4,
    table5,
    table6,
)

__all__ = [
    "DAY_EQUIVALENT_SECONDS",
    "FULL_CAMPAIGN_GATE_SCALE",
    "FULL_CAMPAIGN_MAX_QUERIES",
    "TESTER_NAMES",
    "make_tester",
    "campaign_grid_cells",
    "run_campaign_grid",
    "run_tool_campaign",
    "tester_supports",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "run_full_gqs_campaigns",
    "collect_trigger_records",
    "figure10",
    "figure10_throughput",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "figure18",
    "render_table",
    "render_histogram",
    "render_series",
    "render_kv",
]
