"""Regeneration of the paper's evaluation tables (§5).

Every function returns plain data structures; :mod:`repro.experiments.report`
renders them in the same row format the paper uses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.baselines import GDBMeterTester, GDsmithTester, GRevTester
from repro.baselines.common import RandomQueryGenerator
from repro.core.runner import CampaignResult
from repro.cypher.analysis import analyze
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.experiments.campaign import (
    DAY_EQUIVALENT_SECONDS,
    FULL_CAMPAIGN_GATE_SCALE,
    FULL_CAMPAIGN_MAX_QUERIES,
    make_tester,
    run_campaign_grid,
    split_fault_counts,
    tester_supports,
)
from repro.core import QuerySynthesizer
from repro.gdb import DIALECTS, create_engine, faults_for
from repro.graph.generator import GraphGenerator
from repro.runtime import CampaignCell, ParallelCampaignRunner

__all__ = [
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "run_full_gqs_campaigns",
]

_PAPER_ENGINE_ORDER = ("neo4j", "memgraph", "kuzu", "falkordb")


# ---------------------------------------------------------------------------
# Table 2: summary of the tested GDBs
# ---------------------------------------------------------------------------

def table2() -> List[Dict[str, object]]:
    """Static engine metadata (paper Table 2)."""
    rows = []
    for name in _PAPER_ENGINE_ORDER:
        dialect = DIALECTS[name]
        rows.append(
            {
                "GDB": dialect.display_name,
                "GitHub stars": dialect.github_stars,
                "Initial release": dialect.initial_release,
                "Tested version": ", ".join(dialect.tested_versions),
                "LoC": dialect.loc,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3: bugs detected by GQS (full campaign)
# ---------------------------------------------------------------------------

def run_full_gqs_campaigns(
    seed: int = 0,
    max_queries: int = FULL_CAMPAIGN_MAX_QUERIES,
    gate_scale: float = FULL_CAMPAIGN_GATE_SCALE,
    jobs: int = 1,
) -> Dict[str, CampaignResult]:
    """The compressed analogue of the paper's months-long campaign.

    One GQS cell per engine, fanned out over *jobs* workers; each engine
    keeps its historical per-engine seed (``seed + engine_index``) so the
    detected-fault record is independent of the worker count.
    """
    cells = [
        CampaignCell(
            tester="GQS", engine=name, seed=seed + index,
            budget_seconds=float("inf"), gate_scale=gate_scale,
            max_queries=max_queries,
        )
        for index, name in enumerate(_PAPER_ENGINE_ORDER)
    ]
    grid = ParallelCampaignRunner(jobs=jobs).run(cells)
    return {
        name: grid[("GQS", name, seed + index)]
        for index, name in enumerate(_PAPER_ENGINE_ORDER)
    }


def table3(
    campaigns: Optional[Dict[str, CampaignResult]] = None, seed: int = 0
) -> List[Dict[str, object]]:
    """Bugs detected by GQS per engine (paper Table 3).

    ``#detected`` comes from the campaign; ``#confirmed``/``#fixed`` come
    from the fault metadata (they encode developer responses, which are
    facts about the bugs rather than about detection).
    """
    campaigns = campaigns or run_full_gqs_campaigns(seed=seed)
    rows = []
    totals = {"ld": 0, "lc": 0, "lf": 0, "od": 0, "oc": 0, "of": 0}
    for name in _PAPER_ENGINE_ORDER:
        detected = set(campaigns[name].detected_faults)
        scope = [f for f in faults_for(name) if not f.session_queries_required]
        logic = [f for f in scope if f.is_logic and f.fault_id in detected]
        other = [f for f in scope if not f.is_logic and f.fault_id in detected]
        row = {
            "GDB": DIALECTS[name].display_name,
            "logic detected": len(logic),
            "logic confirmed": sum(1 for f in logic if f.confirmed),
            "logic fixed": sum(1 for f in logic if f.fixed),
            "other detected": len(other),
            "other confirmed": sum(1 for f in other if f.confirmed),
            "other fixed": sum(1 for f in other if f.fixed),
        }
        rows.append(row)
        totals["ld"] += row["logic detected"]
        totals["lc"] += row["logic confirmed"]
        totals["lf"] += row["logic fixed"]
        totals["od"] += row["other detected"]
        totals["oc"] += row["other confirmed"]
        totals["of"] += row["other fixed"]
    rows.append(
        {
            "GDB": "Total",
            "logic detected": totals["ld"],
            "logic confirmed": totals["lc"],
            "logic fixed": totals["lf"],
            "other detected": totals["od"],
            "other confirmed": totals["oc"],
            "other fixed": totals["of"],
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Table 4: bugs missed by existing testers + latency
# ---------------------------------------------------------------------------

def table4(
    campaigns: Optional[Dict[str, CampaignResult]] = None, seed: int = 0
) -> Dict[str, object]:
    """Replay GQS's bug-triggering queries through each baseline oracle.

    The paper (Table 4 with §5.4.3) reports, per GDB, how many of GQS's bugs
    each tool misses, plus the average/maximum latency (years) of those
    missed bugs.  Kùzu is excluded (not supported by the existing tools);
    FalkorDB appears as "RedisGraph" since the tools tested its predecessor.
    """
    campaigns = campaigns or run_full_gqs_campaigns(seed=seed)
    rng = random.Random(seed + 999)
    engines_in_scope = ("neo4j", "memgraph", "falkordb")
    tool_names = ("GDsmith", "GDBMeter", "Gamera", "GQT", "GRev")

    missed: Dict[str, Dict[str, int]] = {
        tool: {engine: 0 for engine in engines_in_scope} for tool in tool_names
    }
    missed_faults: Dict[str, List[str]] = {e: [] for e in engines_in_scope}

    for engine_name in engines_in_scope:
        records = campaigns[engine_name].trigger_records
        for record in records:
            query = parse_query(record["query_text"])
            for tool in tool_names:
                if not tester_supports(tool, engine_name):
                    # Unsupported engine: the tool misses the bug trivially;
                    # the paper marks these cells "-" but still counts the
                    # bugs as missed in the total.
                    missed[tool][engine_name] += 1
                    continue
                tester = make_tester(tool, engine_name)
                engine = create_engine(engine_name)
                # Load the same graph state the bug was triggered on.
                generator_engine = create_engine(engine_name)
                flagged = _replay(tester, engine_name, query, rng, record)
                if not flagged:
                    missed[tool][engine_name] += 1
                    missed_faults[engine_name].append(record["fault_id"])

    # Latency analysis over the missed bugs (years since introduction).
    fault_years = {
        fault.fault_id: fault.introduced_year
        for name in engines_in_scope
        for fault in faults_for(name)
    }
    latency: Dict[str, Dict[str, float]] = {}
    for engine_name in engines_in_scope:
        years = [fault_years[fid] for fid in set(missed_faults[engine_name])]
        if not years:
            years = [0.0]
        latency[engine_name] = {
            "avg": sum(years) / len(years),
            "max": max(years),
        }

    table_rows = []
    for tool in tool_names:
        row: Dict[str, object] = {"Tester": tool}
        total = 0
        for engine_name in engines_in_scope:
            supported = tester_supports(tool, engine_name)
            count = missed[tool][engine_name]
            row[engine_name] = count if supported else "-"
            total += count
        row["Total"] = total
        table_rows.append(row)
    return {"missed": table_rows, "latency": latency}


def _replay(tester, engine_name: str, query, rng, record) -> bool:
    """Re-run one bug-triggering query through a baseline's oracle."""
    engine = create_engine(engine_name)
    # Replay needs *some* graph loaded; regenerate the graph used when the
    # bug fired is not recorded, so replay on a deterministic graph seeded
    # from the fault id — feature-based triggers fire independently of the
    # data, which is what the replay measures.
    generator = GraphGenerator(seed=len(record["query_text"]) % 1000)
    schema, graph = generator.generate_with_schema()
    engine.load_graph(graph, schema)
    try:
        return tester.replay_flags_bug(engine, query, rng)
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Table 5: test query complexity
# ---------------------------------------------------------------------------

def table5(n_queries: int = 400, seed: int = 0) -> List[Dict[str, object]]:
    """Average complexity metrics per tool over *n_queries* queries.

    The paper samples 10 000 queries per tool; the default here is smaller
    so the benchmark stays fast — pass ``n_queries=10_000`` to match.
    Queries are printed and re-parsed through :mod:`repro.cypher.parser`
    before measurement, mirroring the paper's use of libcypher-parser.
    """
    rows = []
    tool_rows = [
        ("GDsmith", GDsmithTester([])),
        ("GDBMeter", GDBMeterTester()),
        ("Gamera", make_tester("Gamera", "neo4j")),
        ("GQT", make_tester("GQT", "neo4j")),
        ("GRev", GRevTester()),
    ]
    for tool_name, tester in tool_rows:
        metrics = _average_metrics_for_generator(tester.profile, n_queries, seed)
        rows.append({"Tester": tool_name, **metrics})
    rows.append({"Tester": "GQS", **_average_metrics_for_gqs(n_queries, seed)})
    return rows


def _average_metrics_for_generator(profile, n_queries: int, seed: int):
    totals = {"Pattern": 0.0, "Expression": 0.0, "Clause": 0.0, "Dependency": 0.0}
    for index in range(n_queries):
        generator = GraphGenerator(seed=seed + index)
        schema, graph = generator.generate_with_schema()
        qgen = RandomQueryGenerator(graph, random.Random(seed + index), profile)
        query = parse_query(print_query(qgen.generate()))
        metrics = analyze(query)
        totals["Pattern"] += metrics.patterns
        totals["Expression"] += metrics.expression_depth
        totals["Clause"] += metrics.clauses
        totals["Dependency"] += metrics.dependencies
    return {key: round(value / n_queries, 2) for key, value in totals.items()}


def _average_metrics_for_gqs(n_queries: int, seed: int):
    totals = {"Pattern": 0.0, "Expression": 0.0, "Clause": 0.0, "Dependency": 0.0}
    for index in range(n_queries):
        generator = GraphGenerator(seed=seed + index)
        schema, graph = generator.generate_with_schema()
        synthesizer = QuerySynthesizer(graph, rng=random.Random(seed + index))
        result = synthesizer.synthesize()
        query = parse_query(print_query(result.query))
        metrics = analyze(query)
        totals["Pattern"] += metrics.patterns
        totals["Expression"] += metrics.expression_depth
        totals["Clause"] += metrics.clauses
        totals["Dependency"] += metrics.dependencies
    return {key: round(value / n_queries, 2) for key, value in totals.items()}


# ---------------------------------------------------------------------------
# Table 6: bugs detected over a 24-hour testing campaign
# ---------------------------------------------------------------------------

def table6(
    seed: int = 0,
    budget_seconds: float = DAY_EQUIVALENT_SECONDS,
    jobs: int = 1,
    events_path=None,
    resume_path=None,
) -> Tuple[List[Dict[str, object]], Dict[Tuple[str, str], CampaignResult]]:
    """24-hour-equivalent campaign for every tool on Neo4j/Memgraph/FalkorDB.

    The full (tester × engine) grid runs through
    :class:`repro.runtime.ParallelCampaignRunner` — *jobs* workers, with an
    optional JSONL event log (*events_path*) and checkpoint resume
    (*resume_path*).  Returns the table rows plus the raw campaign results
    (reused by Figure 18); the rows are identical for any *jobs* value.
    """
    engines_in_scope = ("neo4j", "memgraph", "falkordb")
    tool_order = ("GDsmith", "GDBMeter", "Gamera", "GQT", "GRev", "GQS")
    grid = run_campaign_grid(
        tool_order,
        engines_in_scope,
        seeds=(seed,),
        budget_seconds=budget_seconds,
        jobs=jobs,
        events_path=events_path,
        resume_path=resume_path,
    )
    campaigns: Dict[Tuple[str, str], CampaignResult] = {
        (tool, engine): result for (tool, engine, _seed), result in grid.items()
    }
    rows = []
    for tool in tool_order:
        row: Dict[str, object] = {"Tester": tool}
        total = total_logic = 0
        for engine_name in engines_in_scope:
            result = campaigns.get((tool, engine_name))
            if result is None:
                row[engine_name] = "-"
                continue
            logic, other = split_fault_counts(result.detected_faults)
            row[engine_name] = f"{logic + other} ({logic})"
            total += logic + other
            total_logic += logic
        row["Total"] = f"{total} ({total_logic})"
        rows.append(row)
    return rows, campaigns
