"""Shared campaign machinery for the evaluation harness (paper §5).

Time model
----------

The paper's campaigns ran for 24 wall-clock hours (Table 6, Figure 18) or
several months (Table 3).  Our engines carry a query-cost model calibrated
to the paper's reported throughput (≈3 queries/s on Neo4j and ≈6 on Memgraph
for 9-step queries, with a 6.6× cost ratio between 9- and 3-step queries),
and campaigns advance a *simulated clock* by that cost.

Running 24 simulated hours (≈10⁶ queries) is not benchmark-sized, so the
harness compresses time and documents it:

* ``DAY_EQUIVALENT_SECONDS`` (300 simulated seconds) stands in for the
  24-hour budget — fault gates were calibrated so the *absolute discovery
  counts at this budget* track the paper's Table 6.
* the months-long full campaign of Table 3 is emulated by scaling the fault
  gates down (``FULL_CAMPAIGN_GATE_SCALE``), which shortens mean time to
  discovery proportionally without changing which queries can trigger which
  faults.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.baselines import (
    GDBMeterTester,
    GDsmithTester,
    GameraTester,
    GQTTester,
    GRevTester,
)
from repro.core.runner import CampaignResult, GQSTester
from repro.gdb import ALL_ENGINE_NAMES, create_engine, faults_for
from repro.runtime import (
    CampaignCell,
    CampaignKernel,
    CellKey,
    EventLog,
    ParallelCampaignRunner,
    derive_cell_seed,
)

__all__ = [
    "DAY_EQUIVALENT_SECONDS",
    "FULL_CAMPAIGN_GATE_SCALE",
    "FULL_CAMPAIGN_MAX_QUERIES",
    "TESTER_NAMES",
    "tester_supports",
    "make_tester",
    "run_tool_campaign",
    "campaign_grid_cells",
    "run_campaign_grid",
    "split_fault_counts",
    "distinct_bug_summary",
]

# 24 paper-hours compressed into 300 simulated seconds (clock compression
# factor 288; see module docstring).
DAY_EQUIVALENT_SECONDS = 300.0

# Gate scale emulating the months-long full campaign of Table 3.
FULL_CAMPAIGN_GATE_SCALE = 0.01
FULL_CAMPAIGN_MAX_QUERIES = 3000

TESTER_NAMES = ("GQS", "GDsmith", "GDBMeter", "Gamera", "GQT", "GRev")

# Which engines each tool supports (paper Tables 4 and 6: GDBMeter, Gamera,
# and GQT did not support Memgraph).
_SUPPORTED = {
    "GQS": ("neo4j", "memgraph", "kuzu", "falkordb"),
    "GDsmith": ("neo4j", "memgraph", "falkordb"),
    "GDBMeter": ("neo4j", "falkordb", "kuzu"),
    "Gamera": ("neo4j", "falkordb", "kuzu"),
    "GQT": ("neo4j", "falkordb", "kuzu"),
    "GRev": ("neo4j", "memgraph", "falkordb"),
}


def tester_supports(tester_name: str, engine_name: str) -> bool:
    """Whether *tester_name* can test *engine_name* (paper §5.4)."""
    return engine_name in _SUPPORTED.get(tester_name, ())


def make_tester(
    name: str,
    target_engine_name: str,
    gate_scale: float = 1.0,
    stateful: Optional[float] = None,
):
    """Instantiate a tester by name.

    GDsmith needs comparison engines; it receives the other two engines it
    supports, each with the same gate scale as the target.  *stateful*
    (GQS only) selects the state-aware tester
    (:class:`repro.synth.state.StatefulGQSTester`) with that write ratio —
    the tester keeps the name ``GQS``, so grid keys and event streams stay
    shaped the same.
    """
    if name == "GQS":
        if stateful is not None:
            from repro.synth.state import StatefulGQSTester

            return StatefulGQSTester(stateful_ratio=stateful)
        return GQSTester()
    if name == "GDBMeter":
        return GDBMeterTester()
    if name == "Gamera":
        return GameraTester()
    if name == "GQT":
        return GQTTester()
    if name == "GRev":
        return GRevTester()
    if name == "GDsmith":
        others = [
            create_engine(engine_name, gate_scale=gate_scale)
            for engine_name in _SUPPORTED["GDsmith"]
            if engine_name != target_engine_name
        ]
        return GDsmithTester(others)
    raise ValueError(f"unknown tester {name!r}")


def run_tool_campaign(
    tester_name: str,
    engine_name: str,
    budget_seconds: float = DAY_EQUIVALENT_SECONDS,
    seed: int = 0,
    gate_scale: float = 1.0,
    max_queries: Optional[int] = None,
    events: Optional[EventLog] = None,
    record_coverage: bool = False,
    record_triage: bool = False,
    bundle_dir: Optional[Union[str, Path]] = None,
    reduce_bundles: bool = False,
    step_budget: Optional[int] = None,
    execution_mode: str = "interpreted",
    adaptive: Optional[str] = None,
    stateful: Optional[float] = None,
) -> Optional[CampaignResult]:
    """Run one tool against one engine through the shared campaign kernel;
    None when unsupported.

    ``adaptive`` swaps the tester's session policy for an
    :class:`repro.runtime.adapt.AdaptivePolicy` with that strategy
    (``"epsilon"`` or ``"ucb"``), closing the coverage-guided synthesis
    feedback loop; the campaign then emits an ``adaptation`` event.
    ``stateful`` (GQS only) switches on state-aware write-workload
    synthesis with that write ratio (:mod:`repro.synth.state`).

    ``record_coverage`` / ``record_triage`` switch on the second
    observability tier (``coverage`` / ``triage`` events in *events*);
    *bundle_dir* additionally writes one flight-recorder repro bundle per
    new bug signature, and ``reduce_bundles`` minimizes each bundle in
    place (``*.min.json``, :mod:`repro.reduce`).  None of these perturbs
    the campaign itself.  ``execution_mode`` selects the target engine's
    execution core (``interpreted`` / ``compiled`` / ``dual``,
    :mod:`repro.engine.plan`); campaign results are identical across
    modes by the dual-mode contract.
    """
    if not tester_supports(tester_name, engine_name):
        return None
    engine = create_engine(
        engine_name, gate_scale=gate_scale, execution_mode=execution_mode
    )
    tester = make_tester(
        tester_name, engine_name, gate_scale=gate_scale, stateful=stateful
    )
    if adaptive:
        from repro.runtime.adapt import attach_adaptive_policy

        attach_adaptive_policy(tester, adaptive)
    recorder = None
    if bundle_dir is not None:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(bundle_dir, auto_reduce=reduce_bundles)
    kernel = CampaignKernel(
        events=events,
        record_coverage=record_coverage,
        record_triage=record_triage,
        recorder=recorder,
        step_budget=step_budget,
    )
    return kernel.run(
        tester, engine, budget_seconds, seed=seed, max_queries=max_queries
    )


def campaign_grid_cells(
    testers: Sequence[str],
    engines: Sequence[str],
    seeds: Sequence[int] = (0,),
    budget_seconds: float = DAY_EQUIVALENT_SECONDS,
    gate_scale: float = 1.0,
    max_queries: Optional[int] = None,
    derive_seeds: bool = False,
    execution_mode: str = "interpreted",
    adaptive: Optional[str] = None,
    stateful: Optional[float] = None,
) -> list:
    """Build the (tester × engine × seed) cell list, skipping unsupported
    pairings (the "-" cells of Tables 4 and 6).

    With ``derive_seeds=True`` each cell's RNG seed is decorrelated from the
    base seed via :func:`repro.runtime.derive_cell_seed`; the default keeps
    the base seed verbatim, matching the paper harness's convention of one
    shared seed per grid.
    """
    cells = []
    for tester in testers:
        for engine in engines:
            if not tester_supports(tester, engine):
                continue
            for seed in seeds:
                cell_seed = (
                    derive_cell_seed(tester, engine, seed)
                    if derive_seeds
                    else seed
                )
                cells.append(
                    CampaignCell(
                        tester=tester,
                        engine=engine,
                        seed=cell_seed,
                        budget_seconds=budget_seconds,
                        gate_scale=gate_scale,
                        max_queries=max_queries,
                        execution_mode=execution_mode,
                        adaptive=adaptive,
                        stateful=(
                            stateful if tester == "GQS" else None
                        ),
                    )
                )
    return cells


def run_campaign_grid(
    testers: Sequence[str],
    engines: Sequence[str],
    seeds: Sequence[int] = (0,),
    budget_seconds: float = DAY_EQUIVALENT_SECONDS,
    gate_scale: float = 1.0,
    max_queries: Optional[int] = None,
    derive_seeds: bool = False,
    jobs: int = 1,
    events_path: Optional[Union[str, Path]] = None,
    resume_path: Optional[Union[str, Path]] = None,
    record_metrics: bool = False,
    record_coverage: bool = False,
    record_triage: bool = False,
    bundle_dir: Optional[Union[str, Path]] = None,
    reduce_bundles: bool = False,
    cell_timeout: Optional[float] = None,
    cell_retries: int = 0,
    retry_backoff: Optional[float] = None,
    quarantine: bool = True,
    chaos=None,
    step_budget: Optional[int] = None,
    execution_mode: str = "interpreted",
    adaptive: Optional[str] = None,
    stateful: Optional[float] = None,
) -> Dict[CellKey, CampaignResult]:
    """Run a full campaign grid, optionally parallel and resumable.

    Results are keyed ``(tester, engine, seed)`` in grid order and are
    identical for any ``jobs`` value; with ``resume_path`` cells already
    checkpointed in that event log are merged in without re-running.  With
    ``record_metrics`` each worker runs its cell under a fresh observability
    scope and the merged grid snapshot lands in the event log;
    ``record_coverage`` / ``record_triage`` / ``bundle_dir`` likewise switch
    on per-cell feature coverage, bug-signature triage, and the flight
    recorder, and ``reduce_bundles`` minimizes every recorded bundle in
    place (all RNG-stream invariant).

    Robustness (:mod:`repro.runtime.supervisor`): ``cell_timeout`` hard-
    terminates hung cells, ``cell_retries``/``retry_backoff`` retry failed
    cells deterministically, ``quarantine`` lets the grid complete with
    explicit holes after exhaustion, ``chaos`` injects deterministic
    harness faults, and ``step_budget`` caps evaluation steps per
    judgement (blown budgets surface as ``harness_error`` events).
    """
    cells = campaign_grid_cells(
        testers,
        engines,
        seeds=seeds,
        budget_seconds=budget_seconds,
        gate_scale=gate_scale,
        max_queries=max_queries,
        derive_seeds=derive_seeds,
        execution_mode=execution_mode,
        adaptive=adaptive,
        stateful=stateful,
    )
    runner = ParallelCampaignRunner(
        jobs=jobs, events_path=events_path, record_metrics=record_metrics,
        record_coverage=record_coverage, record_triage=record_triage,
        bundle_dir=bundle_dir, reduce_bundles=reduce_bundles,
        cell_timeout=cell_timeout, cell_retries=cell_retries,
        retry_backoff=retry_backoff, quarantine=quarantine, chaos=chaos,
        step_budget=step_budget,
    )
    return runner.run(cells, resume_path=resume_path)


def split_fault_counts(fault_ids: Sequence[str]) -> Tuple[int, int]:
    """(logic, other) counts for a set of detected fault ids."""
    by_id = {fault.fault_id: fault for name in ALL_ENGINE_NAMES
             for fault in faults_for(name)}
    logic = sum(1 for fid in fault_ids if by_id[fid].is_logic)
    return logic, len(fault_ids) - logic


def distinct_bug_summary(
    results: Dict[CellKey, CampaignResult],
) -> Dict[str, Dict[str, int]]:
    """Per-tester distinct-bug accounting over a grid's raw report streams.

    The campaign tables report raw discrepancy counts; this folds each
    tester's :attr:`~repro.runtime.results.CampaignResult.reports` through
    the triage signatures (:func:`repro.obs.triage.distinct_signatures`), so
    table-4-style outputs can show *distinct bugs* alongside occurrences —
    the mechanical analogue of the paper's manual deduplication (§7).
    """
    from repro.obs import distinct_signatures

    summary: Dict[str, Dict[str, int]] = {}
    for (tester, _engine, _seed), result in sorted(results.items()):
        reports = [r for r in result.reports if r is not None]
        sigs = distinct_signatures(reports)
        entry = summary.setdefault(
            tester, {"reports": 0, "distinct": 0, "signatures": {}}
        )
        entry["reports"] += len(reports)
        merged = entry["signatures"]
        for sig, count in sigs.items():
            merged[sig] = merged.get(sig, 0) + count
        entry["distinct"] = len(merged)
    return summary
