"""GQS — Testing Graph Databases with Synthesized Queries (SIGMOD 2025).

A complete Python reproduction: a labeled-property-graph substrate, a Cypher
language stack with a reference interpreter, four simulated GDBs with
calibrated fault injection, the GQS query synthesizer with its ground-truth
oracle, five baseline testers, and the harness regenerating every table and
figure of the paper's evaluation.

Typical entry points:

>>> from repro.graph import GraphGenerator
>>> from repro.core import QuerySynthesizer, check_result
>>> from repro.gdb import create_engine
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
