"""Graph schema description.

Two consumers need a schema:

* the random graph generator draws labels, relationship types and property
  names/types from a schema so that generated graphs are self-consistent and
  queries over them type-check;
* the Kùzu simulator (like the real Kùzu, §4 of the paper) requires the
  schema *before* a graph can be loaded, because Kùzu is a structured
  (table-backed) graph database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["PropertyType", "PropertySpec", "GraphSchema"]


# The property value types the paper's generator draws from.  ``LIST`` holds
# homogeneous lists of strings (used by the UNWIND machinery).
PropertyType = str
PROPERTY_TYPES: Sequence[PropertyType] = ("INTEGER", "FLOAT", "STRING", "BOOLEAN", "LIST")


@dataclass(frozen=True)
class PropertySpec:
    """A property slot: its name and value type."""

    name: str
    type: PropertyType

    def __post_init__(self) -> None:
        if self.type not in PROPERTY_TYPES:
            raise ValueError(f"unknown property type {self.type!r}")


@dataclass
class GraphSchema:
    """Labels, relationship types, and their property slots.

    ``node_properties`` / ``rel_properties`` are drawn for every element
    regardless of its label — the paper's generated graphs attach random
    properties from a shared pool (property names like ``k85`` appear on both
    nodes and relationships in its example queries).
    """

    labels: List[str] = field(default_factory=list)
    relationship_types: List[str] = field(default_factory=list)
    node_properties: List[PropertySpec] = field(default_factory=list)
    rel_properties: List[PropertySpec] = field(default_factory=list)

    def property_type(self, name: str) -> Optional[PropertyType]:
        """Look up the declared type of a property name, if any."""
        for spec in self.node_properties + self.rel_properties:
            if spec.name == name:
                return spec.type
        return None

    @classmethod
    def random(
        cls,
        rng: random.Random,
        n_labels: int = 12,
        n_rel_types: int = 4,
        n_node_properties: int = 8,
        n_rel_properties: int = 6,
    ) -> "GraphSchema":
        """Draw a random schema with the paper's naming style (L0.., T0.., k0..)."""
        labels = [f"L{i}" for i in range(n_labels)]
        rel_types = [f"T{i}" for i in range(n_rel_types)]
        counter = 0
        node_props: List[PropertySpec] = []
        for _ in range(n_node_properties):
            node_props.append(
                PropertySpec(f"k{counter}", rng.choice(PROPERTY_TYPES))
            )
            counter += 1
        rel_props: List[PropertySpec] = []
        for _ in range(n_rel_properties):
            rel_props.append(
                PropertySpec(f"k{counter}", rng.choice(PROPERTY_TYPES))
            )
            counter += 1
        return cls(labels, rel_types, node_props, rel_props)

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly snapshot (what KùzuSim consumes at load time)."""
        return {
            "labels": list(self.labels),
            "relationship_types": list(self.relationship_types),
            "node_properties": [(p.name, p.type) for p in self.node_properties],
            "rel_properties": [(p.name, p.type) for p in self.rel_properties],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GraphSchema":
        """Rebuild a schema from a :meth:`describe` snapshot (JSON round trip)."""
        return cls(
            labels=list(data.get("labels", ())),
            relationship_types=list(data.get("relationship_types", ())),
            node_properties=[
                PropertySpec(name, ptype)
                for name, ptype in data.get("node_properties", ())
            ],
            rel_properties=[
                PropertySpec(name, ptype)
                for name, ptype in data.get("rel_properties", ())
            ],
        )
