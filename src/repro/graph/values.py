"""Cypher value model.

Cypher (openCypher 9) distinguishes three related but different notions of
"sameness", all of which matter for a correct reference engine:

* **Equality** (the ``=`` operator): ternary.  ``null = x`` is ``null``;
  comparing values of incomparable types (e.g. a string and a number) yields
  ``false``; lists and maps compare structurally and propagate ``null``.
* **Equivalence** (used by ``DISTINCT``, grouping, and set operations):
  total.  ``null`` is equivalent to ``null`` and ``NaN`` to ``NaN``.
* **Orderability** (used by ``ORDER BY``): a total order over *all* values,
  including across types, with ``null`` ordered last in ascending order.

This module implements all three, plus comparability for the inequality
operators (``<`` etc.), which is again ternary: values of different type
families are *incomparable* and the comparison evaluates to ``null``.

Values are represented directly as Python objects: ``None`` (null), ``bool``,
``int``, ``float``, ``str``, ``list`` and ``dict``, plus the graph element
classes from :mod:`repro.graph.model`.  Keeping native representations makes
the evaluator short and keeps test fixtures readable.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional

__all__ = [
    "CypherTypeError",
    "is_null",
    "type_name",
    "ternary_equals",
    "ternary_compare",
    "ternary_and",
    "ternary_or",
    "ternary_xor",
    "ternary_not",
    "equivalent",
    "equivalence_key",
    "order_key",
    "coerce_to_boolean",
]


class CypherError(Exception):
    """Root of the Cypher error hierarchy (see :mod:`repro.engine.errors`)."""


class CypherTypeError(CypherError):
    """Raised when an operation receives a value of an unsupported type."""


def is_null(value: Any) -> bool:
    """Return True when *value* is the Cypher ``null``."""
    return value is None


def type_name(value: Any) -> str:
    """Return the Cypher type name of *value* (as reported by ``type()``... )."""
    # Import here to avoid a circular import with repro.graph.model.
    from repro.graph.model import Node, Relationship, Path

    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "FLOAT"
    if isinstance(value, str):
        return "STRING"
    if isinstance(value, list):
        return "LIST"
    if isinstance(value, dict):
        return "MAP"
    if isinstance(value, Node):
        return "NODE"
    if isinstance(value, Relationship):
        return "RELATIONSHIP"
    if isinstance(value, Path):
        return "PATH"
    raise CypherTypeError(f"unsupported value type: {type(value)!r}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ---------------------------------------------------------------------------
# Ternary equality (the `=` operator)
# ---------------------------------------------------------------------------

def ternary_equals(left: Any, right: Any) -> Optional[bool]:
    """Cypher ``=``: returns True, False, or None (null).

    ``null`` on either side yields ``null``.  Lists and maps are compared
    structurally, and a ``null`` anywhere inside propagates outwards unless a
    structural difference already decides the comparison.
    """
    if left is None or right is None:
        return None

    # Same-concrete-type fast path: only floats need the NaN treatment.
    if left.__class__ is right.__class__:
        cls = left.__class__
        if cls is int or cls is str or cls is bool:
            return left == right

    if _is_number(left) and _is_number(right):
        if isinstance(left, float) and math.isnan(left):
            return False
        if isinstance(right, float) and math.isnan(right):
            return False
        return left == right

    if isinstance(left, bool) and isinstance(right, bool):
        return left == right
    if isinstance(left, str) and isinstance(right, str):
        return left == right

    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return False
        saw_null = False
        for item_l, item_r in zip(left, right):
            verdict = ternary_equals(item_l, item_r)
            if verdict is False:
                return False
            if verdict is None:
                saw_null = True
        return None if saw_null else True

    if isinstance(left, dict) and isinstance(right, dict):
        if set(left) != set(right):
            return False
        saw_null = False
        for key in left:
            verdict = ternary_equals(left[key], right[key])
            if verdict is False:
                return False
            if verdict is None:
                saw_null = True
        return None if saw_null else True

    from repro.graph.model import Node, Relationship, Path

    if isinstance(left, Node) and isinstance(right, Node):
        return left.id == right.id
    if isinstance(left, Relationship) and isinstance(right, Relationship):
        return left.id == right.id
    if isinstance(left, Path) and isinstance(right, Path):
        return left == right

    # Differently typed values are never equal.
    return False


# ---------------------------------------------------------------------------
# Ternary comparison (the `<`, `<=`, `>`, `>=` operators)
# ---------------------------------------------------------------------------

def ternary_compare(left: Any, right: Any) -> Optional[int]:
    """Compare two values for the inequality operators.

    Returns -1, 0, or 1 when the values are comparable, and ``None`` when
    either side is ``null`` or the values belong to incomparable type
    families (numbers, strings, booleans, lists are each their own family).
    """
    if left is None or right is None:
        return None

    if _is_number(left) and _is_number(right):
        if (isinstance(left, float) and math.isnan(left)) or (
            isinstance(right, float) and math.isnan(right)
        ):
            return None
        if left < right:
            return -1
        if left > right:
            return 1
        return 0

    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)

    if isinstance(left, list) and isinstance(right, list):
        for item_l, item_r in zip(left, right):
            verdict = ternary_compare(item_l, item_r)
            if verdict is None:
                return None
            if verdict != 0:
                return verdict
        return (len(left) > len(right)) - (len(left) < len(right))

    return None


# ---------------------------------------------------------------------------
# Three-valued logic connectives
# ---------------------------------------------------------------------------

def ternary_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene AND over {True, False, None}."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def ternary_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene OR over {True, False, None}."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def ternary_xor(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene XOR over {True, False, None}."""
    if left is None or right is None:
        return None
    return left != right


def ternary_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene NOT over {True, False, None}."""
    if value is None:
        return None
    return not value


def coerce_to_boolean(value: Any) -> Optional[bool]:
    """Coerce *value* to a predicate verdict.

    Only booleans and null are valid predicate results in Cypher; anything
    else is a type error.
    """
    if value is None or isinstance(value, bool):
        return value
    raise CypherTypeError(
        f"expected a BOOLEAN predicate, got {type_name(value)}"
    )


# ---------------------------------------------------------------------------
# Equivalence (DISTINCT / grouping)
# ---------------------------------------------------------------------------

def equivalent(left: Any, right: Any) -> bool:
    """Total equivalence used by DISTINCT: null==null, NaN==NaN."""
    return equivalence_key(left) == equivalence_key(right)


def equivalence_key(value: Any):
    """Return a hashable key such that two values share a key iff they are
    equivalent in the DISTINCT sense."""
    from repro.graph.model import Node, Relationship, Path

    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if _is_number(value):
        if isinstance(value, float) and math.isnan(value):
            return ("nan",)
        # 1 and 1.0 are equivalent in Cypher.
        return ("num", float(value), value == int(value) if not math.isinf(value) else False)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, list):
        return ("list", tuple(equivalence_key(item) for item in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((key, equivalence_key(val)) for key, val in value.items())),
        )
    if isinstance(value, Node):
        return ("node", value.id)
    if isinstance(value, Relationship):
        return ("rel", value.id)
    if isinstance(value, Path):
        return ("path", tuple(value.element_ids()))
    raise CypherTypeError(f"unsupported value type: {type(value)!r}")


# ---------------------------------------------------------------------------
# Orderability (ORDER BY)
# ---------------------------------------------------------------------------

# Global sort order across type families, per openCypher orderability:
# MAP < NODE < RELATIONSHIP < LIST < PATH < STRING < BOOLEAN < NUMBER < null.
_TYPE_RANK = {
    "MAP": 0,
    "NODE": 1,
    "RELATIONSHIP": 2,
    "LIST": 3,
    "PATH": 4,
    "STRING": 5,
    "BOOLEAN": 6,
    "NUMBER": 7,
    "NULL": 8,
}


class _OrderKey:
    """Wrapper giving any Cypher value a total order (for ``sorted``)."""

    __slots__ = ("rank", "payload")

    def __init__(self, rank: int, payload: Any):
        self.rank = rank
        self.payload = payload

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self._payload_lt(self.payload, other.payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderKey):
            return NotImplemented
        return self.rank == other.rank and not (
            self._payload_lt(self.payload, other.payload)
            or self._payload_lt(other.payload, self.payload)
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.rank)

    @staticmethod
    def _payload_lt(left: Any, right: Any) -> bool:
        if isinstance(left, tuple) and isinstance(right, tuple):
            for item_l, item_r in zip(left, right):
                if _OrderKey._payload_lt(item_l, item_r):
                    return True
                if _OrderKey._payload_lt(item_r, item_l):
                    return False
            return len(left) < len(right)
        if isinstance(left, _OrderKey) and isinstance(right, _OrderKey):
            return left < right
        return left < right


def order_key(value: Any) -> _OrderKey:
    """Return a sort key implementing the Cypher global order.

    ``sorted(values, key=order_key)`` yields ascending Cypher order with
    nulls last; ``reverse=True`` yields descending order with nulls first,
    matching Neo4j's behaviour.
    """
    from repro.graph.model import Node, Relationship, Path

    if value is None:
        return _OrderKey(_TYPE_RANK["NULL"], ())
    if isinstance(value, bool):
        return _OrderKey(_TYPE_RANK["BOOLEAN"], (int(value),))
    if _is_number(value):
        num = float(value)
        if math.isnan(num):
            # NaN sorts after all other numbers, before null.
            return _OrderKey(_TYPE_RANK["NUMBER"], (1, 0.0))
        return _OrderKey(_TYPE_RANK["NUMBER"], (0, num))
    if isinstance(value, str):
        return _OrderKey(_TYPE_RANK["STRING"], (value,))
    if isinstance(value, list):
        return _OrderKey(
            _TYPE_RANK["LIST"], tuple(order_key(item) for item in value)
        )
    if isinstance(value, dict):
        payload = tuple(
            (key, order_key(val)) for key, val in sorted(value.items())
        )
        return _OrderKey(_TYPE_RANK["MAP"], payload)
    if isinstance(value, Node):
        return _OrderKey(_TYPE_RANK["NODE"], (value.id,))
    if isinstance(value, Relationship):
        return _OrderKey(_TYPE_RANK["RELATIONSHIP"], (value.id,))
    if isinstance(value, Path):
        return _OrderKey(_TYPE_RANK["PATH"], tuple(value.element_ids()))
    raise CypherTypeError(f"unsupported value type: {type(value)!r}")


def sort_values(values: Iterable[Any], descending: bool = False) -> list:
    """Sort *values* in the Cypher global order."""
    return sorted(values, key=order_key, reverse=descending)
