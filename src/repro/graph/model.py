"""Labeled property graph (LPG) model.

The paper (§2.1) defines the data model as a graph ``G = <N, R>`` of nodes
and relations, each carrying labels/types and properties (key-value pairs
where the key is ``<element, name>``).  This module provides immutable-ish
:class:`Node` and :class:`Relationship` records and a mutable
:class:`PropertyGraph` container with the adjacency indexes the pattern
matcher needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Node", "Relationship", "Path", "PropertyKey", "PropertyGraph"]


@dataclass(frozen=True)
class PropertyKey:
    """A property key ``<element, name>`` per the paper's Definition in §2.1.

    ``element_kind`` is ``"node"`` or ``"rel"``; together with ``element_id``
    it identifies the graph element, and ``name`` is the property name.
    """

    element_kind: str
    element_id: int
    name: str

    def __str__(self) -> str:
        prefix = "N" if self.element_kind == "node" else "E"
        return f"<{prefix}{self.element_id}.{self.name}>"


class Node:
    """A graph node with an id, a set of labels, and properties."""

    __slots__ = ("id", "labels", "properties")

    def __init__(
        self,
        node_id: int,
        labels: Iterable[str] = (),
        properties: Optional[Dict[str, Any]] = None,
    ):
        self.id = node_id
        self.labels: FrozenSet[str] = frozenset(labels)
        self.properties: Dict[str, Any] = dict(properties or {})

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        return f"Node({self.id}{':' + labels if labels else ''})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("node", self.id))


class Relationship:
    """A directed relationship with an id, a type, endpoints, and properties."""

    __slots__ = ("id", "type", "start", "end", "properties")

    def __init__(
        self,
        rel_id: int,
        rel_type: str,
        start: int,
        end: int,
        properties: Optional[Dict[str, Any]] = None,
    ):
        self.id = rel_id
        self.type = rel_type
        self.start = start
        self.end = end
        self.properties: Dict[str, Any] = dict(properties or {})

    def other_end(self, node_id: int) -> int:
        """Return the endpoint opposite to *node_id*."""
        return self.end if node_id == self.start else self.start

    def __repr__(self) -> str:
        return f"Rel({self.id}:{self.type} {self.start}->{self.end})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("rel", self.id))


@dataclass(frozen=True)
class Path:
    """An alternating node/relationship sequence produced by path patterns."""

    nodes: Tuple[Node, ...]
    relationships: Tuple[Relationship, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.relationships) + 1:
            raise ValueError(
                "a path must have exactly one more node than relationships"
            )

    def element_ids(self) -> Tuple[Tuple[str, int], ...]:
        """Interleaved (kind, id) pairs, usable as an equivalence key."""
        out: List[Tuple[str, int]] = []
        for index, node in enumerate(self.nodes):
            out.append(("node", node.id))
            if index < len(self.relationships):
                out.append(("rel", self.relationships[index].id))
        return tuple(out)

    def __len__(self) -> int:
        return len(self.relationships)


def _node_id(node: "Node") -> int:
    return node.id


def _rel_id(rel: "Relationship") -> int:
    return rel.id


class PropertyGraph:
    """A labeled property graph with adjacency and label indexes.

    The graph is the unit the paper's step 1 produces: nodes, relations,
    labels and properties, plus indexes over labels (the paper creates
    database indexes for the generated labels and properties; here the
    indexes serve the same role of accelerating lookups in the matcher).
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._relationships: Dict[int, Relationship] = {}
        self._outgoing: Dict[int, List[int]] = {}
        self._incoming: Dict[int, List[int]] = {}
        self._label_index: Dict[str, set] = {}
        self._type_index: Dict[str, set] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        # Lazily built sorted views used by the matcher's hot loops; any
        # structural mutation drops them (see _invalidate_sorted_views).
        self._sorted_out: Dict[int, List[Relationship]] = {}
        self._sorted_in: Dict[int, List[Relationship]] = {}
        self._sorted_label: Dict[str, List[Node]] = {}
        self._sorted_nodes: Optional[List[Node]] = None
        # Lazily built per-type adjacency and per-property-name value
        # indexes used by the compiled operator pipeline
        # (:mod:`repro.engine.plan`).  The property index additionally goes
        # stale when an element's properties mutate in place, so the
        # executor's write clauses call invalidate_property_index().
        self._sorted_out_by_type: Dict[Tuple[int, str], List[Relationship]] = {}
        self._sorted_in_by_type: Dict[Tuple[int, str], List[Relationship]] = {}
        self._property_index: Dict[str, Dict[tuple, List[Node]]] = {}
        # (node_id, direction, rel_type or None) -> [(rel, far node id)]
        # in the matcher's enumeration order; see expand_pairs().
        self._expand_pairs: Dict[tuple, List[tuple]] = {}

    def _invalidate_sorted_views(self) -> None:
        if self._sorted_out:
            self._sorted_out = {}
        if self._sorted_in:
            self._sorted_in = {}
        if self._sorted_label:
            self._sorted_label = {}
        self._sorted_nodes = None
        if self._sorted_out_by_type:
            self._sorted_out_by_type = {}
        if self._sorted_in_by_type:
            self._sorted_in_by_type = {}
        if self._property_index:
            self._property_index = {}
        if self._expand_pairs:
            self._expand_pairs = {}

    def invalidate_property_index(self) -> None:
        """Drop the lazily-built property-value index.

        Structural mutations invalidate every cached view automatically;
        this hook covers in-place property mutation (``SET`` / ``REMOVE``),
        which leaves the structural views valid but can move nodes between
        property-index buckets.
        """
        if self._property_index:
            self._property_index = {}

    # -- construction -------------------------------------------------

    def add_node(
        self,
        labels: Iterable[str] = (),
        properties: Optional[Dict[str, Any]] = None,
        node_id: Optional[int] = None,
    ) -> Node:
        """Create a node and register it in all indexes."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        node = Node(node_id, labels, properties)
        self._invalidate_sorted_views()
        self._nodes[node_id] = node
        self._outgoing.setdefault(node_id, [])
        self._incoming.setdefault(node_id, [])
        for label in node.labels:
            self._label_index.setdefault(label, set()).add(node_id)
        return node

    def add_relationship(
        self,
        start: int,
        end: int,
        rel_type: str,
        properties: Optional[Dict[str, Any]] = None,
        rel_id: Optional[int] = None,
    ) -> Relationship:
        """Create a directed relationship between two existing nodes."""
        if start not in self._nodes or end not in self._nodes:
            raise KeyError("both endpoints must exist before adding a relationship")
        if rel_id is None:
            rel_id = self._next_rel_id
        if rel_id in self._relationships:
            raise ValueError(f"duplicate relationship id {rel_id}")
        self._next_rel_id = max(self._next_rel_id, rel_id + 1)
        rel = Relationship(rel_id, rel_type, start, end, properties)
        self._invalidate_sorted_views()
        self._relationships[rel_id] = rel
        self._outgoing[start].append(rel_id)
        self._incoming[end].append(rel_id)
        self._type_index.setdefault(rel_type, set()).add(rel_id)
        return rel

    def set_node_labels(self, node_id: int, labels: Iterable[str]) -> None:
        """Replace a node's label set, keeping the label index in sync.

        ``REMOVE n:Label`` (and its fault-injected corruptions) must go
        through here: rebuilding ``node.labels`` in place would leave the
        node indexed under labels it no longer carries, which turns into a
        stale-entry KeyError once the node is deleted and a later label
        scan dereferences it.
        """
        node = self._nodes[node_id]
        new_labels = frozenset(labels)
        self._invalidate_sorted_views()
        for label in node.labels - new_labels:
            self._label_index.get(label, set()).discard(node_id)
        for label in new_labels - node.labels:
            self._label_index.setdefault(label, set()).add(node_id)
        node.labels = new_labels

    def remove_relationship(self, rel_id: int) -> None:
        """Delete a relationship (used by graph-update tests)."""
        rel = self._relationships.pop(rel_id)
        self._invalidate_sorted_views()
        self._outgoing[rel.start].remove(rel_id)
        self._incoming[rel.end].remove(rel_id)
        self._type_index[rel.type].discard(rel_id)

    def remove_node(self, node_id: int) -> None:
        """Delete a node; fails if relationships are still attached."""
        if self._outgoing.get(node_id) or self._incoming.get(node_id):
            raise ValueError(
                f"node {node_id} still has relationships (use detach_delete)"
            )
        node = self._nodes.pop(node_id)
        self._invalidate_sorted_views()
        for label in node.labels:
            self._label_index[label].discard(node_id)
        self._outgoing.pop(node_id, None)
        self._incoming.pop(node_id, None)

    def detach_delete_node(self, node_id: int) -> None:
        """Delete a node together with all attached relationships."""
        for rel_id in list(self._outgoing.get(node_id, ())):
            self.remove_relationship(rel_id)
        for rel_id in list(self._incoming.get(node_id, ())):
            self.remove_relationship(rel_id)
        self.remove_node(node_id)

    # -- lookup --------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def relationship(self, rel_id: int) -> Relationship:
        return self._relationships[rel_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def relationships(self) -> Iterator[Relationship]:
        return iter(self._relationships.values())

    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def relationship_ids(self) -> List[int]:
        return list(self._relationships)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        return len(self._relationships)

    def nodes_with_label(self, label: str) -> List[Node]:
        """Label-index lookup (the analogue of a database label index)."""
        return [self._nodes[nid] for nid in self._label_index.get(label, ())]

    def relationships_with_type(self, rel_type: str) -> List[Relationship]:
        return [
            self._relationships[rid] for rid in self._type_index.get(rel_type, ())
        ]

    def labels(self) -> List[str]:
        """All labels in use, sorted (mirrors ``CALL db.labels()``)."""
        return sorted(label for label, ids in self._label_index.items() if ids)

    def relationship_types(self) -> List[str]:
        return sorted(t for t, ids in self._type_index.items() if ids)

    # -- traversal -----------------------------------------------------

    def outgoing(self, node_id: int) -> List[Relationship]:
        return [self._relationships[rid] for rid in self._outgoing.get(node_id, ())]

    def incoming(self, node_id: int) -> List[Relationship]:
        return [self._relationships[rid] for rid in self._incoming.get(node_id, ())]

    def outgoing_sorted(self, node_id: int) -> List[Relationship]:
        """Outgoing relationships sorted by id (cached; see matcher)."""
        rels = self._sorted_out.get(node_id)
        if rels is None:
            rels = sorted(self.outgoing(node_id), key=_rel_id)
            self._sorted_out[node_id] = rels
        return rels

    def incoming_sorted(self, node_id: int) -> List[Relationship]:
        """Incoming relationships sorted by id (cached; see matcher)."""
        rels = self._sorted_in.get(node_id)
        if rels is None:
            rels = sorted(self.incoming(node_id), key=_rel_id)
            self._sorted_in[node_id] = rels
        return rels

    def nodes_with_label_sorted(self, label: str) -> List[Node]:
        """Label-index lookup sorted by node id (cached)."""
        nodes = self._sorted_label.get(label)
        if nodes is None:
            nodes = sorted(self.nodes_with_label(label), key=_node_id)
            self._sorted_label[label] = nodes
        return nodes

    def nodes_sorted(self) -> List[Node]:
        """All nodes sorted by id (cached)."""
        if self._sorted_nodes is None:
            self._sorted_nodes = sorted(self._nodes.values(), key=_node_id)
        return self._sorted_nodes

    def outgoing_sorted_by_type(self, node_id: int, rel_type: str) -> List[Relationship]:
        """Outgoing relationships of one type, sorted by id (cached).

        Typed adjacency lets the compiled expand operator skip candidates
        the matcher would reject on the (cheap, first) type check, while
        preserving the id-sorted enumeration order of
        :meth:`outgoing_sorted` restricted to that type.
        """
        key = (node_id, rel_type)
        rels = self._sorted_out_by_type.get(key)
        if rels is None:
            rels = [r for r in self.outgoing_sorted(node_id) if r.type == rel_type]
            self._sorted_out_by_type[key] = rels
        return rels

    def incoming_sorted_by_type(self, node_id: int, rel_type: str) -> List[Relationship]:
        """Incoming relationships of one type, sorted by id (cached)."""
        key = (node_id, rel_type)
        rels = self._sorted_in_by_type.get(key)
        if rels is None:
            rels = [r for r in self.incoming_sorted(node_id) if r.type == rel_type]
            self._sorted_in_by_type[key] = rels
        return rels

    def expand_pairs(
        self, node_id: int, direction: str, rel_type: Optional[str] = None
    ) -> List[tuple]:
        """``(relationship, far node id)`` pairs from one node (cached).

        Enumeration order is the matcher's: outgoing before incoming, each
        id-sorted, with self-loops suppressed on the incoming side of an
        undirected (``both``) step because the outgoing side already
        produced them.  The compiled expand operator iterates these lists
        directly, so a node visited many times while backtracking pays the
        pair construction once.
        """
        key = (node_id, direction, rel_type)
        pairs = self._expand_pairs.get(key)
        if pairs is None:
            if rel_type is None:
                out_rels = self.outgoing_sorted(node_id)
                in_rels = self.incoming_sorted(node_id)
            else:
                out_rels = self.outgoing_sorted_by_type(node_id, rel_type)
                in_rels = self.incoming_sorted_by_type(node_id, rel_type)
            if direction == "out":
                pairs = [(r, r.end) for r in out_rels]
            elif direction == "in":
                pairs = [(r, r.start) for r in in_rels]
            else:
                pairs = [(r, r.end) for r in out_rels] + [
                    (r, r.start) for r in in_rels if r.start != r.end
                ]
            self._expand_pairs[key] = pairs
        return pairs

    @staticmethod
    def property_index_key(value: Any) -> Optional[tuple]:
        """Bucket key for a scalar property value, or None if unindexable.

        Booleans, numbers and strings each get their own key family so that
        Cypher-distinguishable values (``true`` vs ``1``) never share a
        bucket, while Cypher-*equal* values always do: ints and floats are
        folded through ``float`` because Python's cross-type numeric ``==``
        is exact, so a ``("n", float(v))`` bucket can never miss a pair the
        engine considers equal.  Collisions are harmless — index scans
        re-check every candidate with the full node predicate.  Lists, maps
        and null are not indexed (literal pushdown is scalar-only).
        """
        if isinstance(value, bool):
            return ("b", value)
        if isinstance(value, (int, float)):
            return ("n", float(value))
        if isinstance(value, str):
            return ("s", value)
        return None

    def nodes_with_property_sorted(self, name: str, value: Any) -> List[Node]:
        """Property-index lookup: nodes where ``name`` equals *value*, id-sorted.

        The per-property-name index is built lazily on first lookup (the
        analogue of the database property indexes the paper creates in
        step 1) and dropped on any structural mutation or in-place property
        write.  *value* must have an indexable bucket key; callers gate on
        :meth:`property_index_key` before planning an index scan.
        """
        buckets = self._property_index.get(name)
        if buckets is None:
            buckets = {}
            for node in self.nodes_sorted():
                if name in node.properties:
                    key = self.property_index_key(node.properties[name])
                    if key is not None:
                        buckets.setdefault(key, []).append(node)
            self._property_index[name] = buckets
        key = self.property_index_key(value)
        if key is None:
            raise ValueError(f"value {value!r} is not indexable")
        return buckets.get(key, [])

    def touching(self, node_id: int) -> List[Relationship]:
        """All relationships attached to *node_id*, either direction."""
        return self.outgoing(node_id) + self.incoming(node_id)

    def degree(self, node_id: int) -> int:
        return len(self._outgoing.get(node_id, ())) + len(
            self._incoming.get(node_id, ())
        )

    def neighbours(self, node_id: int) -> List[int]:
        """Distinct neighbouring node ids (either direction)."""
        seen: Dict[int, None] = {}
        for rel in self.touching(node_id):
            seen.setdefault(rel.other_end(node_id), None)
        return list(seen)

    # -- properties ----------------------------------------------------

    def property_value(self, key: PropertyKey) -> Any:
        """Resolve a :class:`PropertyKey` to its current value."""
        if key.element_kind == "node":
            return self._nodes[key.element_id].properties.get(key.name)
        return self._relationships[key.element_id].properties.get(key.name)

    def all_property_keys(self) -> List[PropertyKey]:
        """Enumerate every property in the graph as a :class:`PropertyKey`."""
        keys: List[PropertyKey] = []
        for node in self._nodes.values():
            keys.extend(
                PropertyKey("node", node.id, name) for name in node.properties
            )
        for rel in self._relationships.values():
            keys.extend(PropertyKey("rel", rel.id, name) for name in rel.properties)
        return keys

    # -- misc ------------------------------------------------------------

    def copy(self) -> "PropertyGraph":
        """Deep-enough copy: new containers, shared immutable values."""
        clone = PropertyGraph()
        for node in self._nodes.values():
            clone.add_node(node.labels, dict(node.properties), node_id=node.id)
        for rel in self._relationships.values():
            clone.add_relationship(
                rel.start, rel.end, rel.type, dict(rel.properties), rel_id=rel.id
            )
        return clone

    # -- persistence (the flight-recorder bundle format) ----------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the graph, stable under insertion order.

        Property values are already JSON-safe (int/float/str/bool/None and
        homogeneous string lists — the generator's value universe), so the
        round trip through :meth:`from_dict` is lossless.
        """
        return {
            "nodes": [
                {
                    "id": node.id,
                    "labels": sorted(node.labels),
                    "properties": dict(node.properties),
                }
                for node in sorted(self._nodes.values(), key=_node_id)
            ],
            "relationships": [
                {
                    "id": rel.id,
                    "type": rel.type,
                    "start": rel.start,
                    "end": rel.end,
                    "properties": dict(rel.properties),
                }
                for rel in sorted(self._relationships.values(), key=_rel_id)
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PropertyGraph":
        """Rebuild a graph previously serialized by :meth:`to_dict`."""
        graph = cls()
        for item in data.get("nodes", ()):
            graph.add_node(
                item.get("labels", ()),
                item.get("properties"),
                node_id=item["id"],
            )
        for item in data.get("relationships", ()):
            graph.add_relationship(
                item["start"],
                item["end"],
                item["type"],
                item.get("properties"),
                rel_id=item["id"],
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(nodes={self.node_count}, "
            f"relationships={self.relationship_count})"
        )
