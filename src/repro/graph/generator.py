"""Random graph generation (paper §3.1, step 1).

The paper initializes the GDB under test with random graphs of varying sizes
("a maximum of 13 nodes and 500 relations"), assigning random labels and
properties and creating indexes for them.  :class:`GraphGenerator` mirrors
this: it draws a schema, then a graph whose elements carry random labels /
types and random properties from the schema, plus a unique integer ``id``
property — the paper's queries use ``n.id = ...`` predicates to pin nodes,
which requires identifiers to be unique (§3.4).
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any, Optional

from repro.graph.model import PropertyGraph
from repro.graph.schema import GraphSchema, PropertySpec

__all__ = ["GeneratorConfig", "GraphGenerator", "random_value_for"]


@dataclass
class GeneratorConfig:
    """Knobs of the random graph generator.

    Defaults follow the paper's experimental setup (§5.1): small graphs with
    up to 13 nodes; relationship counts are drawn up to ``max_relationships``
    but the effective count is also bounded by connectivity choices.
    """

    min_nodes: int = 4
    max_nodes: int = 13
    min_relationships: int = 4
    max_relationships: int = 40
    max_labels_per_node: int = 3
    property_fill: float = 0.8  # probability each schema property is present
    list_max_len: int = 3
    string_max_len: int = 9

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError("invalid node count bounds")
        if self.min_relationships < 0 or self.max_relationships < self.min_relationships:
            raise ValueError("invalid relationship count bounds")


_ALPHABET = string.ascii_letters + string.digits


def random_value_for(spec: PropertySpec, rng: random.Random, config: Optional[GeneratorConfig] = None) -> Any:
    """Draw a random value of the declared property type."""
    config = config or GeneratorConfig()
    if spec.type == "INTEGER":
        # Mix small ints (likely to collide, good for grouping) with large
        # magnitudes like the paper's example literals (-1982025281).
        if rng.random() < 0.5:
            return rng.randint(-20, 20)
        return rng.randint(-(2**31), 2**31 - 1)
    if spec.type == "FLOAT":
        return round(rng.uniform(-1000.0, 1000.0), 3)
    if spec.type == "BOOLEAN":
        return rng.random() < 0.5
    if spec.type == "STRING":
        length = rng.randint(1, config.string_max_len)
        return "".join(rng.choice(_ALPHABET) for _ in range(length))
    if spec.type == "LIST":
        length = rng.randint(1, config.list_max_len)
        return [
            "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(1, 6)))
            for _ in range(length)
        ]
    raise ValueError(f"unknown property type {spec.type!r}")


class GraphGenerator:
    """Seeded random generator for schemas and graphs."""

    def __init__(self, seed: Optional[int] = None, config: Optional[GeneratorConfig] = None):
        self._rng = random.Random(seed)
        self.config = config or GeneratorConfig()

    @property
    def rng(self) -> random.Random:
        return self._rng

    def generate_schema(self) -> GraphSchema:
        return GraphSchema.random(self._rng)

    def generate(self, schema: Optional[GraphSchema] = None) -> PropertyGraph:
        """Generate a random LPG conforming to *schema*.

        Every node gets 1..``max_labels_per_node`` labels, a unique integer
        ``id`` property, and a random subset of the schema's node properties;
        relationships likewise.  The relationship structure is drawn with a
        bias towards connectedness: the first ``n_nodes - 1`` relationships
        form a random spanning tree so that path-based pattern synthesis has
        material to work with, and the remainder are uniform random pairs
        (self-loops allowed, multi-edges allowed — production GDBs allow both
        and the paper's graphs with 13 nodes / 500 relations imply them).
        """
        cfg = self.config
        rng = self._rng
        schema = schema or self.generate_schema()
        graph = PropertyGraph()

        n_nodes = rng.randint(cfg.min_nodes, cfg.max_nodes)
        max_rels = min(cfg.max_relationships, max(cfg.min_relationships, n_nodes * 4))
        n_rels = rng.randint(cfg.min_relationships, max_rels)

        for index in range(n_nodes):
            n_labels = rng.randint(1, cfg.max_labels_per_node)
            labels = rng.sample(schema.labels, min(n_labels, len(schema.labels)))
            properties = {"id": index}
            for spec in schema.node_properties:
                if rng.random() < cfg.property_fill:
                    properties[spec.name] = random_value_for(spec, rng, cfg)
            graph.add_node(labels, properties)

        node_ids = graph.node_ids()
        rel_counter = 0

        def add_random_rel(start: int, end: int) -> None:
            nonlocal rel_counter
            rel_type = rng.choice(schema.relationship_types)
            properties = {"id": rel_counter}
            for spec in schema.rel_properties:
                if rng.random() < cfg.property_fill:
                    properties[spec.name] = random_value_for(spec, rng, cfg)
            graph.add_relationship(start, end, rel_type, properties)
            rel_counter += 1

        # Spanning-tree backbone for connectedness.
        shuffled = list(node_ids)
        rng.shuffle(shuffled)
        for index in range(1, len(shuffled)):
            if rel_counter >= n_rels:
                break
            anchor = rng.choice(shuffled[:index])
            if rng.random() < 0.5:
                add_random_rel(anchor, shuffled[index])
            else:
                add_random_rel(shuffled[index], anchor)

        while rel_counter < n_rels:
            add_random_rel(rng.choice(node_ids), rng.choice(node_ids))

        return graph

    def generate_with_schema(self) -> tuple:
        """Convenience: draw a fresh (schema, graph) pair."""
        schema = self.generate_schema()
        return schema, self.generate(schema)
