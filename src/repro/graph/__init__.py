"""Labeled property graph substrate: value model, graph model, generation."""

from repro.graph.model import Node, Path, PropertyGraph, PropertyKey, Relationship
from repro.graph.schema import GraphSchema, PropertySpec
from repro.graph.generator import GeneratorConfig, GraphGenerator

__all__ = [
    "Node",
    "Relationship",
    "Path",
    "PropertyKey",
    "PropertyGraph",
    "GraphSchema",
    "PropertySpec",
    "GraphGenerator",
    "GeneratorConfig",
]
