"""Bundle-level reduction: cooperating passes, ``*.min.json``, fan-out.

:func:`reduce_bundle` drives the cooperating passes over one
flight-recorder bundle — statement-sequence reduction
(:mod:`repro.reduce.sequence`, v2 bundles only), graph shrink
(:mod:`repro.reduce.graph`), query reduction (:mod:`repro.reduce.query`)
— iterating until a full round makes no progress.  The result is a
**minimized bundle**: the same-format document with the reduced graph,
query (and, for sequence bundles, statement list) and freshly recomputed
expected/actual sides, so ``repro replay foo.min.json`` works on it
unchanged, plus a ``reduction`` section recording original vs. reduced
sizes and the oracle-replay count.

Reduction is a pure function of the bundle: no randomness, no dependence
on worker count or scheduling — the same bundle always minimizes to the
byte-identical ``*.min.json``.  :class:`ReductionRunner` exploits that to
fan a directory of bundles over a process pool, one independent bundle per
task, with the same fork/spawn discipline as the campaign grid runner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.recorder import load_bundle
from repro.reduce.graph import graph_sizes, shrink_graph
from repro.reduce.oracle import ReductionOracle
from repro.reduce.query import reduce_query
from repro.reduce.sequence import reduce_sequence
from repro.runtime.supervisor import (
    WORKER_RECURSION_LIMIT,
    _init_worker,
    mp_context,
)

__all__ = [
    "ReductionOutcome",
    "reduce_bundle",
    "min_path_for",
    "iter_bundle_paths",
    "ReductionRunner",
]

# Graph and query passes re-enable each other (a smaller query may free
# graph elements and vice versa); in practice two rounds reach the fixpoint
# and this cap only bounds pathological ping-pong.
MAX_ROUNDS = 4


def min_path_for(path: Union[str, Path]) -> Path:
    """The ``*.min.json`` sibling of a bundle path."""
    path = Path(path)
    return path.with_name(path.stem + ".min.json")


def bundle_sizes(bundle: Dict[str, Any]) -> Dict[str, int]:
    """Nodes / relationships / properties / query bytes of one bundle."""
    sizes = graph_sizes(bundle.get("graph", {}))
    sizes["query_bytes"] = len(bundle.get("query", "").encode("utf-8"))
    if bundle.get("statements"):
        sizes["statements"] = len(bundle["statements"])
    return sizes


@dataclass
class ReductionOutcome:
    """What one bundle reduced to (or why it could not be reduced)."""

    source: str
    signature: Optional[str]
    reproduced: bool
    original: Dict[str, int] = field(default_factory=dict)
    reduced: Dict[str, int] = field(default_factory=dict)
    oracle_replays: int = 0
    rounds: int = 0
    min_path: Optional[str] = None

    @property
    def graph_shrink_ratio(self) -> float:
        """Fraction of graph elements (nodes + relationships) removed."""
        before = self.original.get("nodes", 0) + self.original.get(
            "relationships", 0
        )
        after = self.reduced.get("nodes", 0) + self.reduced.get(
            "relationships", 0
        )
        if before <= 0:
            return 0.0
        return 1.0 - after / before

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "signature": self.signature,
            "reproduced": self.reproduced,
            "original": dict(self.original),
            "reduced": dict(self.reduced),
            "oracle_replays": self.oracle_replays,
            "rounds": self.rounds,
            "graph_shrink_ratio": round(self.graph_shrink_ratio, 4),
            "min_path": self.min_path,
        }


def reduce_bundle(
    source: Union[str, Path, Dict[str, Any]],
    *,
    write: bool = True,
    min_path: Optional[Union[str, Path]] = None,
    replay_budget: Optional[int] = None,
    step_budget: Optional[int] = None,
) -> ReductionOutcome:
    """Minimize one repro bundle; optionally write the ``*.min.json``.

    The bundle must replay to its own recorded signature first (the
    baseline check) — a bundle that no longer reproduces is returned with
    ``reproduced=False`` and nothing is written.  *min_path* overrides the
    default ``<bundle>.min.json`` sibling; passing a dict as *source*
    requires an explicit *min_path* to write.  *replay_budget* caps replica
    executions (see :class:`ReductionOracle`) — reduction degrades to
    best-so-far, never to an unreproducible output.  *step_budget* bounds
    evaluation steps per replay through the shared resource envelope, so a
    pathological candidate costs one rejected check, not a hung reduction.
    """
    if isinstance(source, dict):
        bundle, source_name = source, "<memory>"
    else:
        bundle = load_bundle(source)
        source_name = str(source)
        if min_path is None and write:
            min_path = min_path_for(source)

    oracle = ReductionOracle(bundle, replay_budget=replay_budget,
                             step_budget=step_budget)
    outcome = ReductionOutcome(
        source=source_name,
        signature=oracle.signature,
        reproduced=oracle.baseline(),
        original=bundle_sizes(bundle),
    )
    outcome.oracle_replays = oracle.replays
    if not outcome.reproduced:
        return outcome

    graph = bundle["graph"]
    query = bundle["query"]
    schema = bundle.get("schema")
    statements = (
        list(bundle["statements"]) if bundle.get("statements") else None
    )
    for round_number in range(1, MAX_ROUNDS + 1):
        outcome.rounds = round_number
        sequence_changed = False
        if statements is not None:
            # Sequence pass first: dropping prefix statements usually frees
            # far more graph/query material than the other passes can, and
            # the oracle replays every later candidate through the pinned
            # (reduced) sequence.
            smaller = reduce_sequence(statements, oracle, graph=graph)
            sequence_changed = smaller != statements
            statements = smaller
            oracle.pin_statements(tuple(statements))
            query = statements[-1]
        shrunk = shrink_graph(graph, oracle, query=query, schema=schema)
        graph_changed = shrunk != graph
        graph = shrunk
        reduced = reduce_query(query, oracle, graph=graph)
        query_changed = reduced != query
        query = reduced
        if statements is not None and query_changed:
            # The query pass minimized the final — discrepant — statement;
            # fold it back into the sequence the bundle will carry.
            statements = statements[:-1] + [query]
            oracle.pin_statements(tuple(statements))
        if not (sequence_changed or graph_changed or query_changed):
            break

    minimized = dict(bundle)
    minimized["graph"] = graph
    minimized["query"] = query
    if statements is not None:
        minimized["statements"] = list(statements)
    # Recompute both sides through the replay procedure itself (under the
    # same step budget as the oracle's checks), so the minimized bundle is
    # — like the original — reproducible by construction
    # (`repro replay foo.min.json`).
    minimized["expected"] = oracle._side(minimized, faults_enabled=False)
    minimized["actual"] = oracle._side(minimized, faults_enabled=True)
    minimized["discrepant"] = minimized["expected"] != minimized["actual"]
    oracle.replays += 2

    outcome.reduced = bundle_sizes(minimized)
    outcome.oracle_replays = oracle.replays
    stats = outcome.to_dict()
    # The embedded stats must be a pure function of the bundle *contents*
    # (the determinism contract: byte-identical ``*.min.json`` wherever the
    # source file lives), so the filesystem-dependent fields stay out.
    stats.pop("min_path")
    stats.pop("source")
    minimized["reduction"] = stats

    if write and min_path is not None:
        path = Path(min_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(minimized, indent=2, sort_keys=True), encoding="utf-8"
        )
        outcome.min_path = str(path)
    return outcome


def iter_bundle_paths(sources: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand bundle files / directories into a sorted list of bundle paths.

    Directories contribute every ``*.json`` inside them except minimized
    outputs (``*.min.json``) — re-reducing a minimum is a no-op by
    construction but would clutter the directory with ``*.min.min.json``.
    """
    paths: List[Path] = []
    for source in sources:
        source = Path(source)
        if source.is_dir():
            paths.extend(
                p
                for p in sorted(source.glob("*.json"))
                if not p.name.endswith(".min.json")
            )
        else:
            paths.append(source)
    return sorted(set(paths))


def _reduce_path(
    task: Tuple[str, Optional[int], Optional[int]]
) -> Dict[str, Any]:
    """Worker entry point: reduce one bundle file, return the stats dict."""
    import sys

    path, replay_budget, step_budget = task
    # Candidate queries parse recursively and the printer's canonical
    # parenthesization nests deeply; forked workers can start with most of
    # the default limit already consumed by the parent's stack.  Pool
    # workers get the same raise from the shared ``_init_worker``; this
    # inline raise covers the jobs=1 path.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, WORKER_RECURSION_LIMIT))
    try:
        return reduce_bundle(
            path, replay_budget=replay_budget, step_budget=step_budget
        ).to_dict()
    finally:
        sys.setrecursionlimit(limit)


class ReductionRunner:
    """Reduce many bundles, optionally across a process pool.

    Bundles are independent (each writes its own ``*.min.json``), so the
    fan-out needs no merge step; results come back in sorted-path order
    regardless of completion order, and the written files are identical
    for any ``jobs`` value because each reduction is deterministic.
    """

    def __init__(
        self,
        jobs: int = 1,
        replay_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.replay_budget = replay_budget
        self.step_budget = step_budget

    def run(
        self, sources: Iterable[Union[str, Path]]
    ) -> List[ReductionOutcome]:
        tasks = [
            (str(p), self.replay_budget, self.step_budget)
            for p in iter_bundle_paths(sources)
        ]
        if self.jobs == 1 or len(tasks) <= 1:
            results = [_reduce_path(task) for task in tasks]
        else:
            context = mp_context()
            with context.Pool(
                processes=min(self.jobs, len(tasks)),
                initializer=_init_worker,
            ) as pool:
                results = list(pool.map(_reduce_path, tasks))
        return [
            ReductionOutcome(
                source=item["source"],
                signature=item["signature"],
                reproduced=item["reproduced"],
                original=item["original"],
                reduced=item["reduced"],
                oracle_replays=item["oracle_replays"],
                rounds=item["rounds"],
                min_path=item["min_path"],
            )
            for item in results
        ]
