"""Query reduction: hierarchical delta debugging over the Cypher AST.

The synthesized queries that trigger faults carry far more structure than
the fault needs — WITH hops, pages of pairwise-inequality WHERE conjuncts,
ORDER BY keys, redundant patterns.  This pass minimizes the query text in
three cooperating phases, coarse to fine (the HDD discipline: remove whole
subtrees before touching their leaves):

1. **structural** — drop clauses (WITH hops, OPTIONAL MATCH, UNWIND,
   CALL), UNION branches, WHERE/ORDER BY/SKIP/LIMIT/DISTINCT refinements,
   individual patterns/projection items/order keys, pattern chain
   suffixes/prefixes, and per-element labels/types/property maps;
2. **conjunct ddmin** — each WHERE is flattened into its top-level AND
   chain and delta-debugged as a list (the dominant text mass of GQS
   queries is exactly such a chain);
3. **expression hoisting** — any remaining subexpression may be replaced
   by one of its own children (``(a AND b)`` → ``a``, ``abs(x)`` → ``x``),
   the "replace subtree by identity" move of expression-level HDD.

Every candidate AST is printed and must round-trip through the parser to
the identical text (the printer→parser idempotence invariant the property
suite asserts) before the reduction oracle replays it; a candidate is
committed only when it is strictly shorter *and* reproduces the original
triage signature.  Enumeration order is a fixed function of the AST, so
reduction is deterministic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.cypher import ast
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.reduce.ddmin import ddmin
from repro.reduce.oracle import ReductionOracle

__all__ = ["reduce_query", "roundtrips"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def roundtrips(text: str) -> Optional[AnyQuery]:
    """Parse *text* and confirm it reprints identically; None otherwise."""
    try:
        query = parse_query(text)
    except Exception:
        return None
    return query if print_query(query) == text else None


# ---------------------------------------------------------------------------
# Structural (clause-level) variants
# ---------------------------------------------------------------------------


def _node_variants(node: ast.NodePattern) -> Iterator[ast.NodePattern]:
    if node.labels:
        yield replace(node, labels=())
    if node.properties is not None:
        yield replace(node, properties=None)


def _rel_variants(rel: ast.RelationshipPattern) -> Iterator[ast.RelationshipPattern]:
    if rel.types:
        yield replace(rel, types=())
    if rel.properties is not None:
        yield replace(rel, properties=None)


def _pattern_variants(pattern: ast.PathPattern) -> Iterator[ast.PathPattern]:
    if pattern.path_variable:
        yield replace(pattern, path_variable=None)
    # Chain truncation: keep a prefix or a suffix of the path.
    for keep in range(len(pattern.relationships), 0, -1):
        yield replace(
            pattern,
            nodes=pattern.nodes[: keep + 1],
            relationships=pattern.relationships[:keep],
        )
        yield replace(
            pattern,
            nodes=pattern.nodes[-(keep + 1):],
            relationships=pattern.relationships[-keep:],
        )
    if pattern.relationships:
        yield ast.PathPattern(nodes=(pattern.nodes[0],))
        yield ast.PathPattern(nodes=(pattern.nodes[-1],))
    for index, node in enumerate(pattern.nodes):
        for variant in _node_variants(node):
            nodes = list(pattern.nodes)
            nodes[index] = variant
            yield replace(pattern, nodes=tuple(nodes))
    for index, rel in enumerate(pattern.relationships):
        for variant in _rel_variants(rel):
            rels = list(pattern.relationships)
            rels[index] = variant
            yield replace(pattern, relationships=tuple(rels))


def _drop_each(items: tuple) -> Iterator[tuple]:
    if len(items) > 1:
        for index in range(len(items)):
            yield items[:index] + items[index + 1:]


def _clause_variants(clause: ast.Clause) -> Iterator[ast.Clause]:
    if isinstance(clause, ast.Match):
        if clause.where is not None:
            yield replace(clause, where=None)
        for patterns in _drop_each(clause.patterns):
            yield replace(clause, patterns=patterns)
        for index, pattern in enumerate(clause.patterns):
            for variant in _pattern_variants(pattern):
                out = list(clause.patterns)
                out[index] = variant
                yield replace(clause, patterns=tuple(out))
    elif isinstance(clause, (ast.With, ast.Return)):
        if clause.order_by:
            yield replace(clause, order_by=())
            for order_by in _drop_each(clause.order_by):
                yield replace(clause, order_by=order_by)
        if clause.skip is not None:
            yield replace(clause, skip=None)
        if clause.limit is not None:
            yield replace(clause, limit=None)
        if clause.distinct:
            yield replace(clause, distinct=False)
        if isinstance(clause, ast.With) and clause.where is not None:
            yield replace(clause, where=None)
        for items in _drop_each(clause.items):
            yield replace(clause, items=items)
        for index, item in enumerate(clause.items):
            if item.alias and isinstance(item.expression, ast.Variable):
                out = list(clause.items)
                out[index] = replace(item, alias=None)
                yield replace(clause, items=tuple(out))


def _structural_variants(query: AnyQuery) -> Iterator[AnyQuery]:
    if isinstance(query, ast.UnionQuery):
        yield query.left
        yield query.right
        for variant in _structural_variants(query.left):
            yield ast.UnionQuery(variant, query.right, query.all)
        for variant in _structural_variants(query.right):
            yield ast.UnionQuery(query.left, variant, query.all)
        return
    # Whole-clause drops first (coarsest granularity).
    for clauses in _drop_each(query.clauses):
        yield ast.Query(clauses)
    for index, clause in enumerate(query.clauses):
        for variant in _clause_variants(clause):
            out = list(query.clauses)
            out[index] = variant
            yield ast.Query(tuple(out))


# ---------------------------------------------------------------------------
# Expression variants (subtree → child hoisting)
# ---------------------------------------------------------------------------

# Rebuilders keyed by node type: (expr, children list) → expr, with the
# child list in exactly the order Expression.children() yields.


def _rebuild_slice(expr: ast.ListSlice, kids: List[ast.Expression]) -> ast.ListSlice:
    index = 1
    start = end = None
    if expr.start is not None:
        start = kids[index]
        index += 1
    if expr.end is not None:
        end = kids[index]
    return replace(expr, subject=kids[0], start=start, end=end)


def _rebuild_case(
    expr: ast.CaseExpression, kids: List[ast.Expression]
) -> ast.CaseExpression:
    index = 0
    subject = None
    if expr.subject is not None:
        subject = kids[index]
        index += 1
    alternatives = []
    for _alt in expr.alternatives:
        alternatives.append(ast.CaseAlternative(kids[index], kids[index + 1]))
        index += 2
    default = kids[index] if expr.default is not None else None
    return replace(
        expr,
        subject=subject,
        alternatives=tuple(alternatives),
        default=default,
    )


def _rebuild_comprehension(
    expr: ast.ListComprehension, kids: List[ast.Expression]
) -> ast.ListComprehension:
    index = 1
    where = projection = None
    if expr.where is not None:
        where = kids[index]
        index += 1
    if expr.projection is not None:
        projection = kids[index]
    return replace(expr, source=kids[0], where=where, projection=projection)


_REBUILDERS: Dict[type, Callable[..., ast.Expression]] = {
    ast.PropertyAccess: lambda e, k: replace(e, subject=k[0]),
    ast.Unary: lambda e, k: replace(e, operand=k[0]),
    ast.Binary: lambda e, k: replace(e, left=k[0], right=k[1]),
    ast.IsNull: lambda e, k: replace(e, operand=k[0]),
    ast.FunctionCall: lambda e, k: replace(e, args=tuple(k)),
    ast.ListLiteral: lambda e, k: replace(e, items=tuple(k)),
    ast.MapLiteral: lambda e, k: replace(
        e, items=tuple((key, kid) for (key, _old), kid in zip(e.items, k))
    ),
    ast.ListIndex: lambda e, k: replace(e, subject=k[0], index=k[1]),
    ast.ListSlice: _rebuild_slice,
    ast.CaseExpression: _rebuild_case,
    ast.ListComprehension: _rebuild_comprehension,
    ast.LabelsPredicate: lambda e, k: replace(e, subject=k[0]),
}


def _expression_variants(expr: ast.Expression) -> Iterator[ast.Expression]:
    """One-edit smaller variants: hoist any subtree's child over the subtree."""
    kids = list(expr.children())
    for child in kids:
        yield child
    rebuild = _REBUILDERS.get(type(expr))
    if rebuild is None:
        return
    for index, child in enumerate(kids):
        for variant in _expression_variants(child):
            out = list(kids)
            out[index] = variant
            yield rebuild(expr, out)


def _clause_expression_variants(clause: ast.Clause) -> Iterator[ast.Clause]:
    if isinstance(clause, ast.Match) and clause.where is not None:
        for variant in _expression_variants(clause.where):
            yield replace(clause, where=variant)
    elif isinstance(clause, ast.Unwind):
        for variant in _expression_variants(clause.expression):
            yield replace(clause, expression=variant)
    elif isinstance(clause, (ast.With, ast.Return)):
        for index, item in enumerate(clause.items):
            for variant in _expression_variants(item.expression):
                out = list(clause.items)
                out[index] = replace(item, expression=variant)
                yield replace(clause, items=tuple(out))
        for index, order in enumerate(clause.order_by):
            for variant in _expression_variants(order.expression):
                out = list(clause.order_by)
                out[index] = replace(order, expression=variant)
                yield replace(clause, order_by=tuple(out))
        if isinstance(clause, ast.With) and clause.where is not None:
            for variant in _expression_variants(clause.where):
                yield replace(clause, where=variant)


def _expression_level_variants(query: AnyQuery) -> Iterator[AnyQuery]:
    if isinstance(query, ast.UnionQuery):
        for variant in _expression_level_variants(query.left):
            yield ast.UnionQuery(variant, query.right, query.all)
        for variant in _expression_level_variants(query.right):
            yield ast.UnionQuery(query.left, variant, query.all)
        return
    for index, clause in enumerate(query.clauses):
        for variant in _clause_expression_variants(clause):
            out = list(query.clauses)
            out[index] = variant
            yield ast.Query(tuple(out))


# ---------------------------------------------------------------------------
# WHERE conjunct ddmin
# ---------------------------------------------------------------------------


def _conjuncts(expr: ast.Expression) -> List[ast.Expression]:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(parts: List[ast.Expression]) -> Optional[ast.Expression]:
    if not parts:
        return None
    out = parts[0]
    for part in parts[1:]:
        out = ast.Binary("AND", out, part)
    return out


class _Reducer:
    """Greedy fixpoint driver holding the current best (AST, text)."""

    def __init__(
        self,
        query: AnyQuery,
        text: str,
        oracle: ReductionOracle,
        graph: Optional[Dict[str, Any]],
    ):
        self.query = query
        self.text = text
        self.oracle = oracle
        self.graph = graph

    def _commit(self, candidate: AnyQuery) -> bool:
        """Accept *candidate* if shorter, well-formed, and signature-preserving."""
        if self.oracle.exhausted:
            return False  # skip the print/parse round-trip too
        try:
            text = print_query(candidate)
        except Exception:
            return False
        if len(text) >= len(self.text):
            return False
        parsed = roundtrips(text)
        if parsed is None:
            return False
        if not self.oracle.accepts(graph=self.graph, query=text):
            return False
        self.query, self.text = parsed, text
        return True

    def greedy(self, variants: Callable[[AnyQuery], Iterator[AnyQuery]]) -> bool:
        """First-improvement loop over *variants* with positional advancement.

        After a commit the variant stream is re-enumerated from the new
        best, but the scan resumes at the commit position instead of index
        zero (C-Reduce's pass-state advancement): candidates before it were
        already rejected against a superset query and re-testing them every
        commit turns the pass quadratic.  Anything a stale skip misses is
        recovered by the caller's outer fixpoint loop, which re-runs the
        pass from position zero until nothing changes.
        """
        improved = False
        index = 0
        while True:
            committed = False
            for position, candidate in enumerate(variants(self.query)):
                if position < index:
                    continue
                if self._commit(candidate):
                    index = position
                    improved = committed = True
                    break
            if not committed:
                return improved

    def where_ddmin(self) -> bool:
        """Delta-debug every WHERE's top-level AND chain as an item list."""
        improved = False
        for subquery_index, subquery in enumerate(_flatten(self.query)):
            for clause_index, clause in enumerate(subquery.clauses):
                if (
                    not isinstance(clause, (ast.Match, ast.With))
                    or clause.where is None
                ):
                    continue
                parts = _conjuncts(clause.where)
                if len(parts) < 2:
                    continue

                def rebuilt(keep: List[ast.Expression]) -> AnyQuery:
                    new_clause = replace(clause, where=_conjoin(keep))
                    return _replace_clause(
                        self.query, subquery_index, clause_index, new_clause
                    )

                def check(keep: List[ast.Expression]) -> bool:
                    if self.oracle.exhausted:
                        return False
                    candidate = rebuilt(keep)
                    text = print_query(candidate)
                    if len(text) >= len(self.text):
                        return False
                    return roundtrips(text) is not None and self.oracle.accepts(
                        graph=self.graph, query=text
                    )

                kept = ddmin(parts, check)
                if len(kept) < len(parts):
                    candidate = rebuilt(kept)
                    if self._commit(candidate):
                        improved = True
        return improved


def _flatten(query: AnyQuery) -> List[ast.Query]:
    if isinstance(query, ast.UnionQuery):
        return _flatten(query.left) + [query.right]
    return [query]


def _replace_clause(
    query: AnyQuery, subquery_index: int, clause_index: int, clause: ast.Clause
) -> AnyQuery:
    """Rebuild a union tree with one clause of one branch substituted."""
    if isinstance(query, ast.UnionQuery):
        left_count = len(_flatten(query.left))
        if subquery_index < left_count:
            return ast.UnionQuery(
                _replace_clause(query.left, subquery_index, clause_index, clause),
                query.right,
                query.all,
            )
        right = _replace_clause(query.right, 0, clause_index, clause)
        return ast.UnionQuery(query.left, right, query.all)
    clauses = list(query.clauses)
    clauses[clause_index] = clause
    return ast.Query(tuple(clauses))


def reduce_query(
    text: str,
    oracle: ReductionOracle,
    graph: Optional[Dict[str, Any]] = None,
) -> str:
    """Minimize a query's text while preserving its triage signature.

    *graph* fixes the graph snapshot candidates replay against (the graph
    shrinker's current best under the cooperating-pass protocol).  Returns
    the reduced text — the input itself when nothing smaller reproduces.
    """
    query = roundtrips(text)
    if query is None:
        # The recorded text is outside the round-trip fragment (it should
        # never be — the synthesizer prints through the same printer); play
        # safe and leave it untouched.
        return text
    reducer = _Reducer(query, text, oracle, graph)
    changed = True
    while changed:
        # Cheapest-first ordering: WHERE-conjunct ddmin and expression
        # hoisting shed most of the text at a few ms per candidate, which
        # makes the (per-candidate much pricier) structural scan run over a
        # far smaller query.  Structural-first costs ~5x more replays for
        # the same fixpoint.
        changed = reducer.where_ddmin()
        changed |= reducer.greedy(_expression_level_variants)
        changed |= reducer.greedy(_structural_variants)
    return reducer.text
