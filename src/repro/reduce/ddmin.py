"""Minimizing delta debugging (ddmin) over ordered item lists.

The classic Zeller/Hildebrandt algorithm, phrased for *shrinking*: given a
list of items for which ``test(items)`` holds (here: "this subset of graph
elements still reproduces the bug signature"), find a small sublist for
which it still holds.  The search tries each chunk alone ("reduce to
subset"), then each chunk's complement ("reduce to complement"), doubling
granularity when neither helps — O(n²) tests worst case, near-linear when
most items are irrelevant, which is exactly the repro-bundle situation.

Determinism: chunk boundaries and scan order are fixed functions of the
input order, and the algorithm draws no randomness, so the same input list
and test function always minimize to the same sublist.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

__all__ = ["ddmin"]

T = TypeVar("T")


def _chunks(items: List[T], n: int) -> List[List[T]]:
    """Split *items* into *n* contiguous chunks of near-equal length."""
    size, extra = divmod(len(items), n)
    out: List[List[T]] = []
    start = 0
    for index in range(n):
        end = start + size + (1 if index < extra else 0)
        if end > start:
            out.append(items[start:end])
        start = end
    return out


def ddmin(
    items: Sequence[T],
    test: Callable[[List[T]], bool],
    *,
    min_size: int = 0,
) -> List[T]:
    """Shrink *items* to a 1-minimal-per-chunk sublist where *test* holds.

    ``test(list(items))`` is assumed to hold (callers verify the baseline
    before invoking).  ``min_size`` short-circuits once the list is already
    at or below that many items.  The relative order of surviving items is
    preserved, which keeps downstream serialization stable.
    """
    items = list(items)
    n = 2
    while len(items) > max(1, min_size):
        chunks = _chunks(items, min(n, len(items)))
        # Reduce to subset: a single chunk that already reproduces is the
        # biggest possible win at this granularity.
        for chunk in chunks:
            if len(chunk) < len(items) and test(chunk):
                items, n = chunk, 2
                break
        else:
            # Reduce to complement: drop one chunk at a time.
            for index in range(len(chunks)):
                complement = [
                    item
                    for j, chunk in enumerate(chunks)
                    if j != index
                    for item in chunk
                ]
                if len(complement) < len(items) and test(complement):
                    items, n = complement, max(n - 1, 2)
                    break
            else:
                if n >= len(items):
                    break
                n = min(len(items), n * 2)
    return items
