"""Signature-preserving test-case reduction over repro bundles.

The flight recorder (:mod:`repro.obs.recorder`) snapshots *everything* a
discrepancy needs to replay — the entire random graph and the entire
synthesized query — which is far more than the fault needs and exactly the
triage bottleneck the GDB-testing literature calls out: complex generated
states make reported bugs expensive to diagnose.  This package turns every
``gqs-bundle/1`` into a minimal, human-readable repro automatically:

* :mod:`repro.reduce.ddmin` — the minimizing-delta-debugging core;
* :mod:`repro.reduce.graph` — graph shrinking (nodes → relationships →
  property entries, schema-validated);
* :mod:`repro.reduce.query` — hierarchical delta debugging over the
  Cypher AST, every candidate printer→parser round-tripped;
* :mod:`repro.reduce.oracle` — the signature-preservation gate: a step is
  accepted only if the candidate replays to the *same* triage signature
  (:mod:`repro.obs.triage`), so reduction never wanders onto a different
  bug;
* :mod:`repro.reduce.runner` — per-bundle orchestration, ``*.min.json``
  output, and the process-pool fan-out behind ``repro reduce --jobs``.

Reduction draws no randomness and replays candidates through the same
parked-probe procedure as ``repro replay``; it is deterministic (the same
bundle always minimizes to the byte-identical ``*.min.json``, for any job
count) and RNG-stream invariant for the campaign that triggers it.
"""

from repro.reduce.ddmin import ddmin
from repro.reduce.graph import graph_sizes, shrink_graph, validate_against_schema
from repro.reduce.oracle import ReductionOracle, failure_shape
from repro.reduce.query import reduce_query, roundtrips
from repro.reduce.runner import (
    ReductionOutcome,
    ReductionRunner,
    bundle_sizes,
    iter_bundle_paths,
    min_path_for,
    reduce_bundle,
)

__all__ = [
    "ReductionOracle",
    "ReductionOutcome",
    "ReductionRunner",
    "bundle_sizes",
    "ddmin",
    "failure_shape",
    "graph_sizes",
    "iter_bundle_paths",
    "min_path_for",
    "reduce_bundle",
    "reduce_query",
    "roundtrips",
    "shrink_graph",
    "validate_against_schema",
]
