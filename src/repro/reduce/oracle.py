"""The reduction oracle: does a candidate still reproduce the same bug?

Every reduction step — dropping graph nodes, relationships, property
entries, query clauses, or expression subtrees — is validated by replaying
the candidate through the *exact* procedure ``repro replay`` uses
(:func:`repro.obs.recorder._execute_side`: expected side with faults off,
actual side with the recorded fault configuration and session counter).  A
step is accepted only when the replay still shows a discrepancy **with the
same triage signature** (:mod:`repro.obs.triage`), so reduction can never
wander from the recorded bug onto a different one.

The signature-preservation contract, concretely:

* **white-box** (the bundle records a ``fault_id``): the candidate's actual
  side must fire the *same* fault — ``engine:fault_id`` signatures match
  exactly.  Candidates that stop triggering the fault, or trip a different
  one, are rejected.
* **black-box** (no ``fault_id`` — organic discrepancies): the candidate
  must preserve the *normalized failure shape* of both sides — an error
  outcome keeps the same exception type (``normalize_detail``), a row
  outcome stays a row outcome.  The query-feature component of the
  black-box fingerprint is deliberately *not* pinned: reduction exists to
  strip query features, so pinning them would forbid all query reduction.

Replays park the observability probe (inherited from ``_execute_side``),
draw no randomness, and build fresh replica engines per call — reduction is
a pure function of the bundle, byte-identical across runs and job counts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.obs.recorder import BUNDLE_FORMAT, BUNDLE_FORMAT_V2, _execute_side
from repro.obs.triage import normalize_detail

__all__ = ["ReductionOracle", "failure_shape"]


def failure_shape(side: Dict[str, Any]) -> Optional[str]:
    """The normalized shape of one replay side: exception type, or None.

    Row outcomes all share the ``None`` shape — their *contents* are free
    to change under reduction; what must not change is row-outcome vs.
    error-outcome and, for errors, the exception type.
    """
    if "error" in side:
        return normalize_detail("error", side["error"])
    return None


class ReductionOracle:
    """Signature-preserving accept/reject test for reduction candidates."""

    def __init__(
        self,
        bundle: Dict[str, Any],
        replay_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
    ):
        if bundle.get("format") not in (BUNDLE_FORMAT, BUNDLE_FORMAT_V2):
            raise ValueError(
                f"not a flight-recorder bundle (format={bundle.get('format')!r})"
            )
        self.bundle = bundle
        # v2 sequence bundles: the sequence pass narrows this current-best
        # statement list in place (pin_statements), and every candidate —
        # including graph/query candidates from the v1 passes — replays
        # against it.
        self._statements: Optional[Tuple[str, ...]] = (
            tuple(bundle["statements"]) if bundle.get("statements") else None
        )
        #: Optional hard cap on replica executions.  Once exhausted, every
        #: uncached candidate is rejected, so reduction winds down with its
        #: current best — still signature-preserving, still deterministic
        #: (the cap cuts the same candidate in every run).
        self.replay_budget = replay_budget
        #: Optional evaluation step budget per replay side — the same
        #: resource envelope the campaign kernel uses.  A candidate whose
        #: replay blows the budget yields an ``EvaluationBudgetExceeded``
        #: error outcome, which cannot match the recorded signature, so
        #: pathological candidates are rejected instead of hanging the
        #: reduction (deterministically: the envelope draws no randomness).
        self.step_budget = step_budget
        self.signature = bundle.get("signature")
        self.fault_id = bundle.get("fault_id")
        self._expected_shape = failure_shape(bundle.get("expected", {}))
        self._actual_shape = failure_shape(bundle.get("actual", {}))
        #: Replica executions performed so far (two per candidate check);
        #: the unit the reduction throughput benchmark reports.
        self.replays = 0
        # Verdict memo: reduction passes re-enumerate candidates after
        # every improvement, so the same (graph, query) pair is often
        # checked many times.  Replays are deterministic, so caching the
        # verdict changes nothing observable except wall-clock time.
        self._verdicts: Dict[Tuple[Any, ...], bool] = {}

    @property
    def exhausted(self) -> bool:
        """Whether the replay budget (if any) has been spent.

        Reduction passes short-circuit on this — once the oracle can only
        say "no", enumerating and round-tripping further candidates is
        wasted work.
        """
        return (
            self.replay_budget is not None
            and self.replays >= self.replay_budget
        )

    # -- candidate evaluation -------------------------------------------

    def outcome(
        self,
        graph: Optional[Dict[str, Any]] = None,
        query: Optional[str] = None,
        statements: Optional[Tuple[str, ...]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Replay a candidate; returns ``{"expected": ..., "actual": ...}``.

        *graph* / *query* override the bundle's recorded graph snapshot and
        query text; everything else (engine spec, schema, session counter)
        replays as recorded.  On v2 sequence bundles *statements* overrides
        the replayed sequence (defaulting to the current pinned best), and
        a *query* override rewrites the sequence's final — discrepant —
        statement, so the v1 query-reduction passes carry over unchanged.
        """
        candidate = dict(self.bundle)
        if graph is not None:
            candidate["graph"] = graph
        effective = statements if statements is not None else self._statements
        if effective is not None:
            sequence = list(effective)
            if query is not None and sequence:
                sequence[-1] = query
            candidate["statements"] = sequence
            candidate["query"] = sequence[-1] if sequence else query
        elif query is not None:
            candidate["query"] = query
        expected = self._side(candidate, faults_enabled=False)
        actual = self._side(candidate, faults_enabled=True)
        self.replays += 2
        return {"expected": expected, "actual": actual}

    def _side(
        self, candidate: Dict[str, Any], *, faults_enabled: bool
    ) -> Dict[str, Any]:
        """One replay side under the evaluation resource envelope."""
        from repro.engine.envelope import evaluation_budget
        from repro.engine.errors import EvaluationBudgetExceeded

        try:
            with evaluation_budget(self.step_budget):
                return _execute_side(candidate,
                                     faults_enabled=faults_enabled)
        except EvaluationBudgetExceeded as exc:
            # A blown budget is an error outcome with no fired fault —
            # guaranteed to miss the recorded signature, so the candidate
            # is rejected without special-casing in the contract.
            return {
                "error": f"EvaluationBudgetExceeded: {exc}",
                "fault_id": None,
            }

    def accepts(
        self,
        graph: Optional[Dict[str, Any]] = None,
        query: Optional[str] = None,
        statements: Optional[Tuple[str, ...]] = None,
    ) -> bool:
        """Whether the candidate reproduces the bundle's triage signature.

        Verdicts are memoized per candidate (graphs keyed by their sorted
        JSON form; sequences by the *effective* statement tuple, so pinning
        a new best never resurrects stale verdicts).
        """
        effective = statements if statements is not None else self._statements
        key = (
            None if graph is None else json.dumps(graph, sort_keys=True),
            query,
            effective,
        )
        cached = self._verdicts.get(key)
        if cached is not None:
            return cached
        if self.exhausted:
            return False  # budget exhausted — uncached candidates rejected
        sides = self.outcome(graph=graph, query=query, statements=statements)
        verdict = self.preserves_signature(sides["expected"], sides["actual"])
        self._verdicts[key] = verdict
        return verdict

    # -- sequence pinning (v2 bundles) ----------------------------------

    @property
    def statements(self) -> Optional[Tuple[str, ...]]:
        """The current-best statement sequence (None on v1 bundles)."""
        return self._statements

    def pin_statements(self, statements: Tuple[str, ...]) -> None:
        """Adopt a reduced sequence as the baseline for later passes.

        The graph and query passes replay every candidate through the
        pinned sequence, so sequence reduction composes with them without
        threading extra arguments through the pass implementations.
        """
        self._statements = tuple(statements)

    def preserves_signature(
        self, expected: Dict[str, Any], actual: Dict[str, Any]
    ) -> bool:
        """The contract itself, applied to one replayed (expected, actual)."""
        if expected == actual:
            return False  # discrepancy gone — nothing left to reproduce
        if actual.get("fault_id") != self.fault_id:
            return False  # different (or no) fault — different signature
        return (
            failure_shape(expected) == self._expected_shape
            and failure_shape(actual) == self._actual_shape
        )

    def baseline(self) -> bool:
        """Whether the *unmodified* bundle reproduces its own signature.

        Reduction refuses to start from a bundle that no longer replays —
        minimizing toward an unreproducible target would be meaningless.
        """
        return self.accepts()
