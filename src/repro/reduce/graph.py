"""Graph shrinking: ddmin over nodes, relationships, then property entries.

The bundle records the *entire* random graph the campaign generated, but a
fault usually needs only a handful of elements — the triggering pattern
match plus whatever rows make the corruption visible.  This pass minimizes
the serialized graph (the bundle's ``graph`` dict, the exact form the
replay procedure consumes) in three ddmin sweeps:

1. **nodes** — candidates are induced subgraphs: dropping a node drops
   every relationship touching it, so chunk removals can never dangle an
   endpoint;
2. **relationships** — over the survivors, with all remaining nodes kept;
3. **property entries** — one item per ``(element kind, id, name)`` triple,
   mirroring the paper's ``<element, name>`` property keys.

Every candidate is validated against the recorded schema *before* it is
replayed (labels, relationship types and property names must stay declared
— the contract the Kùzu-style structured engines enforce at load time) and
then accepted only if the reduction oracle confirms the original triage
signature.  Items are processed in sorted-id order, so the shrink is
deterministic for any chunking trajectory.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.reduce.ddmin import ddmin
from repro.reduce.oracle import ReductionOracle

__all__ = ["graph_sizes", "validate_against_schema", "shrink_graph"]

GraphDict = Dict[str, Any]
PropertyItem = Tuple[str, int, str]  # (element kind, element id, name)


def graph_sizes(graph: GraphDict) -> Dict[str, int]:
    """Node / relationship / property-entry counts of a serialized graph."""
    nodes = graph.get("nodes", ())
    rels = graph.get("relationships", ())
    properties = sum(len(item.get("properties", {})) for item in nodes)
    properties += sum(len(item.get("properties", {})) for item in rels)
    return {
        "nodes": len(nodes),
        "relationships": len(rels),
        "properties": properties,
    }


def validate_against_schema(
    graph: GraphDict, schema: Optional[Dict[str, Any]]
) -> bool:
    """Whether every label/type/property the graph uses is schema-declared.

    With no recorded schema the check passes vacuously (schema-free
    engines accept any graph).  Shrinking only ever *removes* usage, so a
    valid original stays valid — the check guards the invariant rather
    than steering the search.
    """
    if schema is None:
        return True
    labels = set(schema.get("labels", ()))
    rel_types = set(schema.get("relationship_types", ()))
    # The generator stamps an implicit ``id`` property on every element
    # (mirroring the element id); it is always legal even though the
    # declared schema lists only the synthesized ``k*`` keys.
    node_props = {name for name, _t in schema.get("node_properties", ())}
    node_props.add("id")
    rel_props = {name for name, _t in schema.get("rel_properties", ())}
    rel_props.add("id")
    for node in graph.get("nodes", ()):
        if not set(node.get("labels", ())) <= labels:
            return False
        if not set(node.get("properties", {})) <= node_props:
            return False
    for rel in graph.get("relationships", ()):
        if rel.get("type") not in rel_types:
            return False
        if not set(rel.get("properties", {})) <= rel_props:
            return False
    return True


def _induced(graph: GraphDict, node_ids: Set[int]) -> GraphDict:
    """The subgraph induced by *node_ids* (dangling relationships dropped)."""
    return {
        "nodes": [n for n in graph["nodes"] if n["id"] in node_ids],
        "relationships": [
            r
            for r in graph["relationships"]
            if r["start"] in node_ids and r["end"] in node_ids
        ],
    }


def _keep_relationships(graph: GraphDict, rel_ids: Set[int]) -> GraphDict:
    return {
        "nodes": graph["nodes"],
        "relationships": [
            r for r in graph["relationships"] if r["id"] in rel_ids
        ],
    }


def _property_items(graph: GraphDict) -> List[PropertyItem]:
    """Every property entry as a (kind, element id, name) item, sorted."""
    items: List[PropertyItem] = []
    for node in graph["nodes"]:
        items.extend(("node", node["id"], name) for name in node["properties"])
    for rel in graph["relationships"]:
        items.extend(("rel", rel["id"], name) for name in rel["properties"])
    return sorted(items)


def _keep_properties(graph: GraphDict, kept: Set[PropertyItem]) -> GraphDict:
    def strip(kind: str, item: Dict[str, Any]) -> Dict[str, Any]:
        out = dict(item)
        out["properties"] = {
            name: value
            for name, value in item["properties"].items()
            if (kind, item["id"], name) in kept
        }
        return out

    return {
        "nodes": [strip("node", n) for n in graph["nodes"]],
        "relationships": [strip("rel", r) for r in graph["relationships"]],
    }


def shrink_graph(
    graph: GraphDict,
    oracle: ReductionOracle,
    query: Optional[str] = None,
    schema: Optional[Dict[str, Any]] = None,
) -> GraphDict:
    """Minimize a serialized graph while the oracle keeps accepting it.

    *query* fixes the query text the oracle replays candidates under (the
    cooperating-pass protocol: the query reducer's current best, not
    necessarily the bundle's original).  Returns a new graph dict; the
    input is never mutated.
    """

    def check(candidate: GraphDict) -> bool:
        if not validate_against_schema(candidate, schema):
            return False
        return oracle.accepts(graph=candidate, query=query)

    # Pass 1: nodes (induced subgraphs keep relationships consistent).
    node_ids = sorted(n["id"] for n in graph["nodes"])
    kept_nodes = ddmin(
        node_ids, lambda ids: check(_induced(graph, set(ids))), min_size=1
    )
    graph = _induced(graph, set(kept_nodes))

    # Pass 2: relationships over the survivors.
    rel_ids = sorted(r["id"] for r in graph["relationships"])
    if rel_ids:
        kept_rels = ddmin(
            rel_ids, lambda ids: check(_keep_relationships(graph, set(ids)))
        )
        graph = _keep_relationships(graph, set(kept_rels))

    # Pass 3: property entries (the paper's <element, name> keys).
    items = _property_items(graph)
    if items:
        kept_items = ddmin(
            items, lambda keep: check(_keep_properties(graph, set(keep)))
        )
        graph = _keep_properties(graph, set(kept_items))
    return graph
