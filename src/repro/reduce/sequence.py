"""Statement-sequence reduction for v2 (stateful) repro bundles.

A sequence bundle replays ``statements`` in order over the initial graph;
the final statement is the discrepant one.  This pass shrinks the *prefix*
— every statement before the last — with ddmin, then tries a lightweight
merge of adjacent single-clause CREATE statements (two standalone CREATEs
collapse into one two-pattern CREATE), both under the standard
signature-preservation oracle.  The discrepant statement itself is never
dropped here; the query passes (:mod:`repro.reduce.query`) minimize it
afterwards through the oracle's final-statement override.

Determinism: ddmin draws no randomness and the merge scan is a fixed
left-to-right sweep, so the same bundle always reduces to the same
sequence.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cypher import ast
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine.errors import CypherError
from repro.reduce.ddmin import ddmin
from repro.reduce.oracle import ReductionOracle

__all__ = ["reduce_sequence"]


def _try_merge(left: str, right: str) -> Optional[str]:
    """Merge two adjacent standalone CREATE statements into one, if legal."""
    try:
        left_tree = parse_query(left)
        right_tree = parse_query(right)
    except CypherError:
        return None
    if not isinstance(left_tree, ast.Query) or not isinstance(
        right_tree, ast.Query
    ):
        return None
    if len(left_tree.clauses) != 1 or len(right_tree.clauses) != 1:
        return None
    first, second = left_tree.clauses[0], right_tree.clauses[0]
    if not isinstance(first, ast.Create) or not isinstance(second, ast.Create):
        return None
    merged = ast.Query(
        clauses=(ast.Create(patterns=first.patterns + second.patterns),)
    )
    return print_query(merged)


def reduce_sequence(
    statements: List[str],
    oracle: ReductionOracle,
    graph: Optional[dict] = None,
) -> List[str]:
    """Minimize a statement sequence, preserving the triage signature.

    Returns the reduced sequence (ending in the original discrepant
    statement); the caller is responsible for pinning it on the oracle.
    *graph* optionally fixes the candidate graph the oracle replays
    against (the current best from an earlier graph pass).
    """
    if len(statements) < 1:
        return list(statements)
    *prefix, last = statements

    def holds(candidate_prefix: List[str]) -> bool:
        return oracle.accepts(
            graph=graph, statements=tuple(candidate_prefix) + (last,)
        )

    if prefix and not oracle.exhausted:
        prefix = ddmin(prefix, holds, min_size=0)

    # Merge pass: collapse adjacent single-clause CREATEs pairwise.  Each
    # accepted merge shortens the sequence by one, so re-scan from the
    # merge point until a full sweep makes no progress.
    sequence = prefix + [last]
    index = 0
    while index + 1 < len(sequence) - 1 and not oracle.exhausted:
        merged = _try_merge(sequence[index], sequence[index + 1])
        if merged is not None:
            candidate = (
                sequence[:index] + [merged] + sequence[index + 2:]
            )
            if oracle.accepts(graph=graph, statements=tuple(candidate)):
                sequence = candidate
                continue
        index += 1
    return sequence
