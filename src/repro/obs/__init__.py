"""Observability for the campaign runtime: metrics, span tracing, probes.

The paper's evaluation is, at heart, an accounting exercise — where does
campaign time go, which stage finds bugs, how many queries does each tester
push through each engine (§5.4, Tables 3–6).  This package gives the
runtime that accounting as a first-class subsystem:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with **fixed
  bucket edges** (so per-worker merges are deterministic) and a snapshot
  algebra (:func:`merge_snapshots`, :func:`deterministic_view`);
* :mod:`repro.obs.trace` — ``with tracer.span("synthesize")`` spans over
  both the real (``perf_counter``) and simulated campaign clocks;
* :mod:`repro.obs.probe` — the process-wide :data:`PROBE` switch the hot
  paths guard on; **no-op by default**, scoped enable via
  :func:`observed`;
* :mod:`repro.obs.render` — ``repro stats`` / ``repro trace`` renderers
  that turn any recorded event log into a profile.

The contract with the runtime: instrumentation never draws randomness and
never changes control flow, so campaign results are byte-identical with
observability on or off; the deterministic snapshot sections are identical
for any worker count.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_EDGES,
    DEFAULT_TIME_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    deterministic_view,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.obs.probe import PROBE, Probe, disable, enable, observed
from repro.obs.render import (
    merged_snapshot_from_events,
    render_stats,
    render_trace,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "DEFAULT_COUNT_EDGES",
    "DEFAULT_TIME_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullTracer",
    "PROBE",
    "Probe",
    "Tracer",
    "deterministic_view",
    "disable",
    "enable",
    "merge_snapshots",
    "merged_snapshot_from_events",
    "metric_key",
    "observed",
    "render_stats",
    "render_trace",
    "split_metric_key",
]
