"""Observability for the campaign runtime: metrics, span tracing, probes.

The paper's evaluation is, at heart, an accounting exercise — where does
campaign time go, which stage finds bugs, how many queries does each tester
push through each engine (§5.4, Tables 3–6).  This package gives the
runtime that accounting as a first-class subsystem:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with **fixed
  bucket edges** (so per-worker merges are deterministic) and a snapshot
  algebra (:func:`merge_snapshots`, :func:`deterministic_view`);
* :mod:`repro.obs.trace` — ``with tracer.span("synthesize")`` spans over
  both the real (``perf_counter``) and simulated campaign clocks;
* :mod:`repro.obs.probe` — the process-wide :data:`PROBE` switch the hot
  paths guard on; **no-op by default**, scoped enable via
  :func:`observed`;
* :mod:`repro.obs.render` — ``repro stats`` / ``repro trace`` renderers
  that turn any recorded event log into a profile.

A second tier answers the paper's *evaluation* questions — what did the
synthesized queries exercise, and which discrepancies are the same bug:

* :mod:`repro.obs.coverage` — per-query feature vectors (clauses,
  functions, operators, pattern shapes, nesting depth) accumulated into
  per-cell coverage sets and coverage-over-time curves (§5.3 lens);
* :mod:`repro.obs.triage` — bug signatures (``engine:fault_id`` with
  injection on, normalized failure fingerprints with it off) that
  deduplicate the discrepancy stream into distinct bugs;
* :mod:`repro.obs.recorder` — the flight recorder: one self-contained,
  replayable repro bundle per newly-seen signature (``repro replay``).

A third tier makes the telemetry *live* and *portable*:

* :mod:`repro.obs.follow` — :class:`EventFollower`, an incremental
  torn-line-tolerant tailer over the JSONL event stream, plus the
  ``repro watch`` rolling view (the read side of the event-stream wire
  protocol);
* :mod:`repro.obs.profile` — the PROBE-gated per-operator profile of the
  compiled execution core (wall time, invocations, evaluation steps),
  rendered as the ``repro stats`` ``== profile ==`` table;
* :mod:`repro.obs.export` — portable exports: Chrome trace-event JSON
  (``repro trace --export chrome``), machine-readable stats/bugs/compare
  JSON (``--format json``), and the self-contained static HTML report
  (``repro report``).

The contract with the runtime: instrumentation never draws randomness and
never changes control flow, so campaign results are byte-identical with
observability on or off; the deterministic snapshot sections are identical
for any worker count.
"""

from repro.obs.coverage import (
    COVERAGE_SCHEMA_VERSION,
    CellCoverage,
    CoverageSchemaError,
    coverage_curve,
    merge_coverage_snapshots,
    query_feature_tags,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_EDGES,
    DEFAULT_TIME_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    deterministic_view,
    merge_snapshots,
    metric_key,
    split_metric_key,
)
from repro.obs.probe import PROBE, Probe, disable, enable, observed

# export/follow (below) transitively import repro.obs.render → triage →
# runtime → engine, and the engine reads PROBE back out of this package —
# so they must load after the probe import above.
from repro.obs.export import (
    EXPORT_SCHEMA_VERSION,
    bugs_json,
    chrome_trace,
    compare_json,
    html_report,
    stats_json,
)
from repro.obs.follow import EventFollower, render_watch
from repro.obs.profile import (
    PROFILE_STEP_CEILING,
    OperatorProfile,
    profile_rows,
    render_profile,
)
from repro.obs.recorder import (
    BUNDLE_FORMAT,
    FlightRecorder,
    ReplayOutcome,
    load_bundle,
    replay_bundle,
)
from repro.obs.render import (
    adaptation_snapshots_in,
    merged_snapshot_from_events,
    render_bugs,
    render_coverage,
    render_stats,
    render_trace,
    supervisor_counts,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.obs.triage import (
    CellTriage,
    distinct_signatures,
    merge_triage_snapshots,
    normalize_detail,
    signature_for,
)

__all__ = [
    "BUNDLE_FORMAT",
    "COVERAGE_SCHEMA_VERSION",
    "CellCoverage",
    "CellTriage",
    "CoverageSchemaError",
    "EXPORT_SCHEMA_VERSION",
    "EventFollower",
    "OperatorProfile",
    "PROFILE_STEP_CEILING",
    "adaptation_snapshots_in",
    "bugs_json",
    "chrome_trace",
    "compare_json",
    "html_report",
    "profile_rows",
    "render_profile",
    "render_watch",
    "stats_json",
    "supervisor_counts",
    "FlightRecorder",
    "ReplayOutcome",
    "coverage_curve",
    "distinct_signatures",
    "load_bundle",
    "merge_coverage_snapshots",
    "merge_triage_snapshots",
    "normalize_detail",
    "query_feature_tags",
    "render_bugs",
    "render_coverage",
    "replay_bundle",
    "signature_for",
    "DEFAULT_COUNT_EDGES",
    "DEFAULT_TIME_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullTracer",
    "PROBE",
    "Probe",
    "Tracer",
    "deterministic_view",
    "disable",
    "enable",
    "merge_snapshots",
    "merged_snapshot_from_events",
    "metric_key",
    "observed",
    "render_stats",
    "render_trace",
    "split_metric_key",
]
