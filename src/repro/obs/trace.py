"""Lightweight span tracing for campaign runs.

A span covers one stage of the campaign pipeline — ``campaign`` → ``graph``
→ ``propose``/``judge``, with ``synthesize`` nested inside ``propose`` —
and records two clocks at once:

* the **real** clock (``time.perf_counter``), which is what profiling
  cares about, and
* the **simulated** campaign clock (the engines' cost model, the clock the
  paper's 24-hour budgets run on), sampled through a pluggable
  ``sim_clock`` callable so spans can attribute simulated time to stages.

Spans are plain dicts (``id``/``parent``/``name``/``perf``/``sim``/attrs),
cheap to collect and trivially serializable into the campaign's JSONL event
stream as ``span`` events.  :class:`NullTracer` is the default: its
``span()`` returns a shared re-entrant no-op context manager, so traced
code needs no conditionals.

When constructed with a :class:`~repro.obs.metrics.MetricsRegistry`, the
tracer also feeds every finished span's real duration into the
``stage.seconds`` timing histogram labelled by span name — which is what
``repro stats`` renders as the per-stage time histograms.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]

Span = Dict[str, Any]


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "_span", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = perf_counter()
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._finish(self._span, perf_counter() - self._start)


class _NullSpan:
    """Shared no-op span context manager (re-entrant, stateless)."""

    __slots__ = ()

    def __enter__(self) -> Dict[str, Any]:
        return {}

    def __exit__(self, *exc_info: Any) -> None:
        pass


class Tracer:
    """Collects a tree of timed spans over the real and simulated clocks."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sim_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry
        self.sim_clock = sim_clock
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 0

    # -- span lifecycle ---------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("synthesize"): ...``."""
        span_id = self._next_id
        self._next_id += 1
        span: Span = {
            "id": span_id,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
        }
        if attrs:
            span.update(attrs)
        if self.sim_clock is not None:
            span["sim0"] = self.sim_clock()
        self._stack.append(span_id)
        return _SpanHandle(self, span)

    def _finish(self, span: Span, perf_seconds: float) -> None:
        self._stack.pop()
        span["perf"] = perf_seconds
        if self.sim_clock is not None:
            span["sim1"] = self.sim_clock()
        self.spans.append(span)
        if self.registry is not None:
            self.registry.histogram(
                "stage.seconds", timing=True, stage=span["name"]
            ).observe(perf_seconds)

    # -- access -----------------------------------------------------------

    def drain(self) -> List[Span]:
        """Return and clear the finished spans (e.g. to emit as events)."""
        spans, self.spans = self.spans, []
        return spans


class NullTracer(Tracer):
    """The default tracer: collects nothing, costs (almost) nothing."""

    _SPAN = _NullSpan()

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return self._SPAN

    def drain(self) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
