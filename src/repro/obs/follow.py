"""Follow a growing JSONL event log: live campaign telemetry.

The post-hoc renderers (:mod:`repro.obs.render`) read a *finished* log;
this module is the live half.  :class:`EventFollower` incrementally tails
the JSONL event stream every campaign/grid run can append to, tolerating
the same torn lines the loader does, and folds each event into rolling
per-cell state — ``repro watch LOG`` renders it as a refresh-in-place
terminal view (or once, for scripting, with ``--once``).

Design constraints:

* **Incremental.**  Each :meth:`EventFollower.poll` reads only the bytes
  appended since the previous poll.  A trailing line without a newline is
  a write in progress: it is buffered and re-examined next poll, never
  half-parsed.  A *terminated* line that fails to decode (a torn record
  from a crash or chaos truncation) is counted in ``skipped`` — the same
  tolerance contract as
  :func:`repro.core.reporting.load_event_stream`.
* **Parity with post-hoc rendering.**  The follower accumulates the full
  parsed event list (``follower.events``); at every poll it equals what
  ``load_event_stream`` would return for the file's current contents, so
  ``render_stats(follower.events)`` is *definitionally* byte-identical to
  re-reading the log.  The rolling per-cell state is derived purely from
  folded events and carries no wall-clock of its own.
* **Wire-protocol read side.**  The ROADMAP's distributed campaign
  service streams this very JSONL format; the follower is its client-side
  decoder, usable against a file today and a socket-backed spool later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["EventFollower", "render_watch", "watch_json"]

Event = Dict[str, Any]


class EventFollower:
    """Incrementally tail a JSONL event stream, tolerating torn lines.

    The file may not exist yet (a campaign about to start); polls are
    no-ops until it appears.  A file that *shrinks* (rotated or truncated
    underneath us) resets the follower and is re-read from the start.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.events: List[Event] = []
        self.skipped = 0
        #: Byte-accurate account of every torn line:
        #: ``[{"offset": byte_offset, "length": bytes}, ...]``.
        self.skipped_lines: List[Dict[str, int]] = []
        self.counts: Dict[str, int] = {}
        #: ``"tester/engine/seed" -> {"status", "queries", "sim", "faults"}``
        self.cells: Dict[str, Dict[str, Any]] = {}
        self.finished = False
        self._offset = 0
        self._partial = b""
        self._current: Optional[str] = None
        self._open_grids = 0
        self._open_campaigns = 0
        self._service = False
        self._service_open = False

    # -- polling -----------------------------------------------------------

    def poll(self) -> List[Event]:
        """Parse newly appended events, fold them, and return them."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:
            self._reset()
        if size == self._offset:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        position = self._offset - len(self._partial)
        self._offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        # Empty when the data ended in a newline; otherwise the in-progress
        # tail of the next record.
        self._partial = lines.pop()
        fresh: List[Event] = []
        for raw in lines:
            line = raw.strip()
            if line:
                try:
                    event = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.skipped += 1
                    self.skipped_lines.append(
                        {"offset": position, "length": len(raw)}
                    )
                else:
                    self.events.append(event)
                    self._fold(event)
                    fresh.append(event)
            position += len(raw) + 1
        return fresh

    def _reset(self) -> None:
        self.events = []
        self.skipped = 0
        self.skipped_lines = []
        self.counts = {}
        self.cells = {}
        self.finished = False
        self._offset = 0
        self._partial = b""
        self._current = None
        self._open_grids = 0
        self._open_campaigns = 0
        self._service = False
        self._service_open = False

    # -- rolling state -----------------------------------------------------

    @property
    def total_queries(self) -> int:
        return sum(cell.get("queries", 0) for cell in self.cells.values())

    @property
    def total_sim_seconds(self) -> float:
        return sum(cell.get("sim", 0.0) for cell in self.cells.values())

    def _cell(self, label: str) -> Dict[str, Any]:
        cell = self.cells.get(label)
        if cell is None:
            cell = self.cells[label] = {
                "status": "pending", "queries": 0, "sim": 0.0, "faults": 0,
            }
        return cell

    def _fold(self, event: Event) -> None:
        kind = event.get("event", "?")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == "grid_start":
            self._open_grids += 1
            # Newer logs carry the full cell list, letting the view show
            # pending cells before any of them report.
            for key in event.get("grid") or ():
                self._cell("/".join(str(part) for part in key))
        elif kind == "grid_end":
            self._open_grids -= 1
        elif kind == "campaign_start":
            self._open_campaigns += 1
            label = (f"{event.get('tester', '?')}/{event.get('engine', '?')}"
                     f"/{event.get('seed', '?')}")
            self._current = label
            cell = self._cell(label)
            cell.update(status="running", queries=0, sim=0.0, faults=0)
        elif kind in ("graph", "query") and self._current is not None:
            cell = self.cells[self._current]
            cell["sim"] = float(event.get("sim_time", cell["sim"]))
            if kind == "graph":
                cell["queries"] = int(event.get("queries", cell["queries"]))
            else:
                cell["queries"] = int(event.get("n", cell["queries"]))
        elif kind == "fault" and self._current is not None:
            self.cells[self._current]["faults"] += 1
        elif kind == "campaign_end":
            self._open_campaigns -= 1
            if self._current is not None:
                cell = self.cells[self._current]
                cell.update(
                    status="done",
                    queries=int(event.get("queries_run", cell["queries"])),
                    sim=float(event.get("sim_seconds", cell["sim"])),
                    faults=len(event.get("detected_faults") or ())
                    or cell["faults"],
                )
                self._current = None
        elif kind == "cell_complete":
            label = (f"{event.get('tester', '?')}/{event.get('engine', '?')}"
                     f"/{event.get('seed', '?')}")
            campaign = event.get("campaign") or {}
            cell = self._cell(label)
            cell.update(
                status="done",
                queries=int(campaign.get("queries_run", cell["queries"])),
                sim=float(campaign.get("sim_seconds", cell["sim"])),
                faults=len(campaign.get("timeline") or ()) or cell["faults"],
            )
        elif kind in ("cell_failed", "cell_retry", "cell_quarantined"):
            label = (f"{event.get('tester', '?')}/{event.get('engine', '?')}"
                     f"/{event.get('seed', '?')}")
            cell = self._cell(label)
            if kind == "cell_failed":
                cell["status"] = f"failed ({event.get('kind', '?')})"
            elif kind == "cell_retry":
                cell["status"] = "retrying"
            else:
                cell["status"] = "quarantined"
        elif kind == "service_start":
            # A (re)started campaign service owns this log: completion is
            # now governed by service_stop, not campaign balance.
            self._service = True
            self._service_open = True
        elif kind == "service_stop":
            self._service_open = False
        elif kind == "job_submitted":
            for key in event.get("cells") or ():
                self._cell("/".join(str(part) for part in key))
        elif kind == "lease":
            label = (f"{event.get('tester', '?')}/{event.get('engine', '?')}"
                     f"/{event.get('seed', '?')}")
            self._cell(label)["status"] = "leased"
        elif kind == "lease_revoked":
            label = (f"{event.get('tester', '?')}/{event.get('engine', '?')}"
                     f"/{event.get('seed', '?')}")
            self._cell(label)["status"] = (
                f"revoked ({event.get('reason', '?')})"
            )
        # Completion: every opened grid and campaign has closed.  Between a
        # grid's cells the grid itself is still open, so a live grid never
        # reads as finished early; a bare single-campaign log closes on its
        # campaign_end.  A service log instead finishes on service_stop —
        # between a service's cells nothing is "open" in the grid sense.
        if self._service:
            self.finished = not self._service_open
        else:
            self.finished = (
                bool(self.counts.get("grid_end")
                     or self.counts.get("campaign_end"))
                and self._open_grids <= 0
                and self._open_campaigns <= 0
            )

    def distinct_signatures(self) -> List[str]:
        """Distinct bug signatures seen so far.

        Prefers triage snapshots (the deduplicated signature stream); a log
        recorded without ``--triage`` falls back to the union of detected
        fault ids from campaign summaries.
        """
        from repro.obs.render import triage_snapshots_in
        from repro.obs.triage import merge_triage_snapshots

        snaps = triage_snapshots_in(self.events)
        if snaps:
            merged = merge_triage_snapshots(
                [event["snapshot"] for event in snaps]
            )
            return sorted(merged["bugs"])
        faults: Dict[str, None] = {}
        for event in self.events:
            if event.get("event") == "campaign_end":
                for fault_id in event.get("detected_faults") or ():
                    faults[str(fault_id)] = None
            elif event.get("event") == "cell_complete":
                campaign = event.get("campaign") or {}
                for _when, fault_id in campaign.get("timeline") or ():
                    faults[str(fault_id)] = None
        return sorted(faults)


def render_watch(
    follower: EventFollower, *, rate: Optional[float] = None
) -> str:
    """One frame of the ``repro watch`` view, built from rolling state.

    Pure text over the follower's folded state — the caller owns screen
    refresh and pacing.  *rate* is the caller-measured live queries/sec
    (wall clock between polls); ``None`` renders as ``-`` so scripted
    ``--once`` output stays deterministic.
    """
    lines = ["== live campaign telemetry =="]
    lines.append(
        f"log: {follower.path}   events: {len(follower.events)}"
        + (f"   torn lines skipped: {follower.skipped}"
           if follower.skipped else "")
    )
    done = sum(1 for cell in follower.cells.values()
               if cell["status"] == "done")
    status = "complete" if follower.finished else (
        "waiting for events" if not follower.events else "running"
    )
    lines.append(
        f"status: {status}   cells: {done}/{len(follower.cells)} done"
    )
    rate_text = "-" if rate is None else f"{rate:.1f}"
    lines.append(
        f"queries: {follower.total_queries}   "
        f"sim time: {follower.total_sim_seconds:.1f}s   "
        f"queries/sec: {rate_text}"
    )
    if follower.cells:
        lines.append("")
        lines.append("== cells ==")
        width = max(max(len(label) for label in follower.cells),
                    len("cell")) + 2
        lines.append(
            f"  {'cell':<{width}s} {'status':<16s} {'queries':>8s} "
            f"{'sim(s)':>9s} {'faults':>7s}"
        )
        for label in sorted(follower.cells):
            cell = follower.cells[label]
            lines.append(
                f"  {label:<{width}s} {cell['status']:<16s} "
                f"{cell['queries']:>8d} {cell['sim']:>9.1f} "
                f"{cell['faults']:>7d}"
            )
    signatures = follower.distinct_signatures()
    if signatures:
        lines.append("")
        lines.append(f"== distinct signatures ({len(signatures)}) ==")
        shown = signatures[:12]
        for signature in shown:
            lines.append(f"  {signature}")
        if len(signatures) > len(shown):
            lines.append(f"  ... and {len(signatures) - len(shown)} more")
    from repro.obs.render import _render_adaptation

    adaptation = _render_adaptation(follower.events)
    if adaptation:
        lines.append("")
        lines.append("== adaptation ==")
        lines.extend(adaptation)
    supervisor = _supervisor_line(follower.counts)
    service = _service_line(follower.counts)
    if supervisor or service:
        lines.append("")
        if service:
            lines.append(service)
        if supervisor:
            lines.append(supervisor)
    return "\n".join(lines)


def watch_json(
    follower: EventFollower, *, rate: Optional[float] = None
) -> Dict[str, Any]:
    """One machine-readable frame of the watch view.

    The payload *is* :func:`repro.obs.export.stats_json` over the events
    folded so far — same schema version, same counter matrices — so
    scripted consumers can share one decoder between ``repro stats
    --format json`` and ``repro watch --once --format json``.  The live
    rolling state rides along under the ``"watch"`` key.
    """
    from repro.obs.export import stats_json

    data = stats_json(
        follower.events,
        skipped=follower.skipped,
        torn=follower.skipped_lines,
    )
    done = sum(1 for cell in follower.cells.values()
               if cell["status"] == "done")
    data["watch"] = {
        "status": "complete" if follower.finished else (
            "waiting for events" if not follower.events else "running"
        ),
        "finished": follower.finished,
        "cells": {label: dict(cell)
                  for label, cell in sorted(follower.cells.items())},
        "cells_done": done,
        "counts": dict(sorted(follower.counts.items())),
        "queries": follower.total_queries,
        "sim_seconds": follower.total_sim_seconds,
        "rate": rate,
        "distinct_signatures": follower.distinct_signatures(),
    }
    return data


def _service_line(counts: Dict[str, int]) -> Optional[str]:
    if not counts.get("service_start"):
        return None
    parts = [f"leases {counts.get('lease', 0)}"]
    if counts.get("lease_revoked"):
        parts.append(f"revoked {counts['lease_revoked']}")
    if counts.get("heartbeat"):
        parts.append(f"heartbeats {counts['heartbeat']}")
    if counts.get("job_submitted"):
        parts.append(
            f"jobs {counts.get('job_complete', 0)}"
            f"/{counts['job_submitted']} complete"
        )
    if counts.get("job_cancelled"):
        parts.append(f"cancelled {counts['job_cancelled']}")
    if counts.get("service_start", 0) > 1:
        parts.append(f"restarts {counts['service_start'] - 1}")
    return "service: " + ", ".join(parts)


def _supervisor_line(counts: Dict[str, int]) -> Optional[str]:
    parts = []
    for kind, label in (("cell_failed", "failed"), ("cell_retry", "retried"),
                        ("cell_quarantined", "quarantined"),
                        ("harness_error", "harness errors"),
                        ("chaos", "chaos truncations")):
        if counts.get(kind):
            parts.append(f"{label} {counts[kind]}")
    if not parts:
        return None
    return "supervisor: " + ", ".join(parts)
