"""Query-feature coverage: what the synthesized queries actually exercise.

The paper's effectiveness argument rests on the *surface* its queries cover
— which clauses, functions, and operators appear, how deeply expressions
nest, what pattern shapes occur (§5.3, Figures 11–15) — yet a campaign log
alone only says how many queries ran.  This module maps every test query to
a discrete **feature vector** and accumulates, per (tester, engine, seed)
cell, the set of features covered so far plus a coverage-over-time curve
(distinct features vs. queries issued), the lens GDsmith and similar tools
report as a first-class evaluation metric.

Design rules mirror :mod:`repro.obs.metrics`:

* extraction reuses the AST analyses of :mod:`repro.cypher.analysis` and
  draws no randomness — coverage on or off leaves campaign results
  byte-identical;
* per-cell snapshots are plain JSON dicts with sorted keys, and
  :func:`merge_coverage_snapshots` folds any number of them in **sorted
  cell order**, so the merged grid coverage is independent of worker count
  and completion order (the same barrier-merge discipline as
  :func:`repro.obs.metrics.merge_snapshots`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.cypher import ast
from repro.cypher.analysis import analyze, clause_types_in, functions_in

__all__ = [
    "query_feature_tags",
    "feature_kind",
    "CellCoverage",
    "CoverageSchemaError",
    "COVERAGE_SCHEMA_VERSION",
    "merge_coverage_snapshots",
    "coverage_curve",
]

AnyQuery = Any  # ast.Query | ast.UnionQuery

#: Version stamp written into every coverage snapshot.  Bump when the
#: snapshot layout changes incompatibly; the mergers refuse mixed versions
#: instead of silently mis-merging them.
COVERAGE_SCHEMA_VERSION = 1


class CoverageSchemaError(ValueError):
    """A coverage snapshot carries an incompatible schema version.

    Raised by :func:`merge_coverage_snapshots` and :func:`coverage_curve`
    instead of silently merging mismatched layouts; names the offending
    cell so a bad resume log is traceable to its source.
    """

    def __init__(self, cell: str, found: Any, expected: int):
        self.cell = cell
        self.found = found
        self.expected = expected
        super().__init__(
            f"coverage snapshot for cell {cell} has schema version "
            f"{found!r}; this build reads version {expected}"
        )


def _check_schema(snapshot: Dict[str, Any], cell: str) -> None:
    # Snapshots from builds predating the stamp carry no ``schema`` key;
    # they are layout-compatible with version 1 and accepted as-is.
    version = snapshot.get("schema", COVERAGE_SCHEMA_VERSION)
    if version != COVERAGE_SCHEMA_VERSION:
        raise CoverageSchemaError(cell, version, COVERAGE_SCHEMA_VERSION)

# Expression nesting deeper than this is tagged ``depth:5+`` — the paper's
# complexity histograms (Figure 12) flatten the tail the same way.
_DEPTH_CAP = 5
# Path patterns longer than this are tagged ``shape:path-3+``.
_PATH_CAP = 3


def feature_kind(tag: str) -> str:
    """The feature family of a coverage tag (``clause:MATCH`` → ``clause``)."""
    return tag.split(":", 1)[0]


def _operators_in(query: AnyQuery) -> List[str]:
    """Every operator occurrence in *query* (with repeats)."""
    names: List[str] = []

    def visit(expr: ast.Expression) -> None:
        if isinstance(expr, ast.Binary):
            names.append(expr.op)
        elif isinstance(expr, ast.Unary):
            names.append(expr.op)
        elif isinstance(expr, ast.IsNull):
            names.append("IS NOT NULL" if expr.negated else "IS NULL")
        elif isinstance(expr, ast.CaseExpression):
            names.append("CASE")
        elif isinstance(expr, ast.ListIndex):
            names.append("[]")
        elif isinstance(expr, ast.ListSlice):
            names.append("[..]")
        elif isinstance(expr, ast.ListComprehension):
            names.append("list-comprehension")
        elif isinstance(expr, ast.PatternPredicate):
            names.append("pattern-predicate")
        elif isinstance(expr, ast.CountStar):
            names.append("count(*)")
        for child in expr.children():
            visit(child)

    for sub in _flatten(query):
        for clause in sub.clauses:
            for expr in ast.walk_expressions(clause):
                visit(expr)
    return names


def _flatten(query: AnyQuery) -> List[ast.Query]:
    if isinstance(query, ast.UnionQuery):
        return _flatten(query.left) + [query.right]
    return [query]


def _pattern_shapes_in(query: AnyQuery) -> List[str]:
    """Discrete pattern-shape tags: path lengths, direction, label arity."""
    shapes: List[str] = []

    def scan_pattern(pattern: ast.PathPattern) -> None:
        length = len(pattern.relationships)
        if length >= _PATH_CAP:
            shapes.append(f"path-{_PATH_CAP}+")
        else:
            shapes.append(f"path-{length}")
        if pattern.path_variable:
            shapes.append("named-path")
        for rel in pattern.relationships:
            if rel.direction == ast.BOTH:
                shapes.append("undirected-rel")
            if rel.types:
                shapes.append("typed-rel")
        for node in pattern.nodes:
            if len(node.labels) >= 2:
                shapes.append("multi-label-node")
            elif node.labels:
                shapes.append("labeled-node")

    for sub in _flatten(query):
        for clause in sub.clauses:
            if isinstance(clause, (ast.Match, ast.Create)):
                for pattern in clause.patterns:
                    scan_pattern(pattern)
            elif isinstance(clause, ast.Merge):
                scan_pattern(clause.pattern)
    return shapes


# Write clause name → lowercase family tag (repro.synth.state statement
# kinds); DETACH DELETE and DELETE share the ``delete`` family.
_WRITE_FAMILIES = {
    "CREATE": "create",
    "MERGE": "merge",
    "SET": "set",
    "DELETE": "delete",
    "DETACH DELETE": "delete",
    "REMOVE": "remove",
}


def query_feature_tags(query: AnyQuery) -> List[str]:
    """The feature vector of one query, as ``kind:value`` tags (with repeats).

    Families: ``clause`` (clauses and subclauses, Figure 11 accounting),
    ``function`` (lower-cased names), ``operator`` (binary/unary/special
    operators), ``shape`` (pattern shapes), and ``depth`` (max expression
    nesting, capped).  Repeats are preserved so the accumulator can report
    per-feature occurrence counts alongside the covered set.
    """
    clause_names = clause_types_in(query)
    tags = [f"clause:{name}" for name in clause_names]
    # Write-clause *family* tags (lowercase, so they cannot collide with
    # the verbatim clause names above): one per write family occurrence,
    # with DETACH DELETE folding into the ``delete`` family.  These are
    # what the stateful adaptive arms steer on.
    tags.extend(
        f"clause:{_WRITE_FAMILIES[name]}"
        for name in clause_names
        if name in _WRITE_FAMILIES
    )
    tags.extend(f"function:{name}" for name in functions_in(query))
    tags.extend(f"operator:{name}" for name in _operators_in(query))
    tags.extend(f"shape:{name}" for name in _pattern_shapes_in(query))
    depth = analyze(query).expression_depth
    if depth >= _DEPTH_CAP:
        tags.append(f"depth:{_DEPTH_CAP}+")
    else:
        tags.append(f"depth:{depth}")
    return tags


def query_of(proposal: Any) -> Optional[AnyQuery]:
    """The query AST behind a tester proposal (GQS wraps it in a synthesis)."""
    query = getattr(proposal, "query", proposal)
    if isinstance(query, (ast.Query, ast.UnionQuery)):
        return query
    return None


class CellCoverage:
    """Feature coverage accumulated over one (tester, engine, seed) cell.

    ``observe`` is called once per test query; the accumulator tracks
    per-feature occurrence counts, the query index at which each feature was
    first covered, and the coverage-over-time curve — one ``[queries,
    distinct_features]`` point appended whenever a query introduces at least
    one new feature.
    """

    def __init__(self, tester: str, engine: str, seed: int):
        self.tester = tester
        self.engine = engine
        self.seed = seed
        self.queries = 0
        self._counts: Dict[str, int] = {}
        self._first_seen: Dict[str, int] = {}
        self._curve: List[Tuple[int, int]] = []

    def observe(self, proposal: Any) -> None:
        """Fold one proposal's query into the coverage sets."""
        query = query_of(proposal)
        if query is None:
            return
        self.queries += 1
        grew = False
        for tag in query_feature_tags(query):
            if tag not in self._counts:
                self._counts[tag] = 0
                self._first_seen[tag] = self.queries
                grew = True
            self._counts[tag] += 1
        if grew:
            self._curve.append((self.queries, len(self._counts)))

    @property
    def features(self) -> List[str]:
        """The covered feature set, sorted."""
        return sorted(self._counts)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready per-cell coverage snapshot with stable key order."""
        return {
            "schema": COVERAGE_SCHEMA_VERSION,
            "tester": self.tester,
            "engine": self.engine,
            "seed": self.seed,
            "queries": self.queries,
            "features": {
                tag: [self._counts[tag], self._first_seen[tag]]
                for tag in sorted(self._counts)
            },
            "curve": [[q, n] for q, n in self._curve],
        }


def _cell_key(snapshot: Dict[str, Any]) -> Tuple[str, str, int]:
    return (
        str(snapshot.get("tester", "?")),
        str(snapshot.get("engine", "?")),
        int(snapshot.get("seed", 0)),
    )


def merge_coverage_snapshots(
    snapshots: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Barrier-merge per-cell coverage snapshots into one grid snapshot.

    Cells are folded in sorted (tester, engine, seed) order, so the merged
    feature counts, the grid-level first-seen indices (computed over the
    concatenated query sequence), and the grid coverage curve are identical
    for any worker count and any completion order.

    Every input snapshot's schema version is validated first;
    :class:`CoverageSchemaError` names the offending cell.
    """
    ordered = sorted(snapshots, key=_cell_key)
    for snap in ordered:
        _check_schema(snap, "/".join(str(p) for p in _cell_key(snap)))
    counts: Dict[str, int] = {}
    first_seen: Dict[str, int] = {}
    curve: List[List[int]] = []
    cells: Dict[str, Dict[str, Any]] = {}
    offset = 0
    covered: set = set()
    for snap in ordered:
        key = "/".join(str(part) for part in _cell_key(snap))
        cells[key] = {
            "queries": snap.get("queries", 0),
            "features": len(snap.get("features", {})),
            "curve": [list(point) for point in snap.get("curve", ())],
        }
        for tag, (count, first) in snap.get("features", {}).items():
            counts[tag] = counts.get(tag, 0) + count
            if tag not in first_seen:
                first_seen[tag] = offset + first
        # Extend the grid curve: within this cell, features new to the
        # *grid* move the cumulative count; replay the cell's first-seen
        # events in query order.
        events = sorted(
            (first, tag)
            for tag, (_count, first) in snap.get("features", {}).items()
            if tag not in covered
        )
        for first, tag in events:
            covered.add(tag)
            point = [offset + first, len(covered)]
            if curve and curve[-1][0] == point[0]:
                curve[-1][1] = point[1]
            else:
                curve.append(point)
        offset += snap.get("queries", 0)
    return {
        "schema": COVERAGE_SCHEMA_VERSION,
        "queries": offset,
        "features": {
            tag: [counts[tag], first_seen[tag]] for tag in sorted(counts)
        },
        "curve": curve,
        "cells": cells,
    }


def coverage_curve(snapshot: Dict[str, Any]) -> List[Tuple[int, int]]:
    """The ``(queries, distinct features)`` curve of a coverage snapshot.

    Raises :class:`CoverageSchemaError` on a snapshot written by an
    incompatible build rather than decoding its curve as garbage.
    """
    _check_schema(snapshot, "/".join(str(p) for p in _cell_key(snapshot)))
    return [(int(q), int(n)) for q, n in snapshot.get("curve", ())]
