"""Campaign metrics: counters, gauges, and fixed-bucket histograms.

The observability layer serves the paper's own evaluation questions —
where does campaign time go (§5.4 fault-detection timelines), how many
queries does each tester push through each engine (Table 6), and which
stage of the pipeline pays for a detected bug.  Three design rules keep it
compatible with the runtime's determinism guarantees:

* **Fixed bucket edges.**  Histograms never rebucket; every worker uses the
  same edges, so merging per-worker snapshots is a plain element-wise sum —
  associative, commutative, and therefore independent of worker count and
  completion order.
* **Deterministic vs. timing sections.**  A snapshot separates values that
  are functions of the (seeded) campaign alone (``counters``, ``gauges``,
  ``histograms``) from wall-clock profiling data (``timings``).  The former
  are byte-identical for ``jobs=1`` and ``jobs=8``; the latter are real
  ``perf_counter`` measurements and are explicitly excluded from the
  determinism contract (:func:`deterministic_view` strips them).
* **Zero cost when off.**  The default registry is :class:`NullRegistry`,
  whose instruments are shared no-op singletons; hot paths additionally
  guard on :data:`repro.obs.PROBE`'s ``on`` flag so the disabled path costs
  one attribute load and a branch.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_TIME_EDGES",
    "DEFAULT_COUNT_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "metric_key",
    "merge_snapshots",
    "deterministic_view",
]

# Log-spaced seconds buckets: 1µs .. 100s.  Fixed so that per-worker merges
# are deterministic (see module docstring); wide enough for both per-query
# engine calls and whole-campaign stages.
DEFAULT_TIME_EDGES: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

# Buckets for discrete sizes (rows, calls, clauses).
DEFAULT_COUNT_EDGES: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000,
)


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical string key for a (name, labels) pair.

    Labels are sorted, so the key — and with it every snapshot dict — has a
    stable shape regardless of call order.
    """
    if not labels:
        return name
    tail = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}|{tail}"


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if "|" not in key:
        return key, {}
    name, tail = key.split("|", 1)
    labels: Dict[str, str] = {}
    for part in tail.split(","):
        if "=" in part:
            k, v = part.split("=", 1)
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value (merged by max across workers)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-edge histogram with running sum/count/min/max.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot counts
    overflow observations beyond the last edge.
    """

    __slots__ = ("edges", "counts", "sum", "count", "min", "max")

    def __init__(self, edges: Sequence[float] = DEFAULT_TIME_EDGES) -> None:
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        edges = self.edges
        while index < len(edges) and value > edges[index]:
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # pragma: no cover - trivial
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # pragma: no cover - trivial
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # pragma: no cover - trivial
        pass


class MetricsRegistry:
    """Creates and holds instruments; produces JSON-ready snapshots.

    Instruments live in per-kind dicts keyed by :func:`metric_key`; asking
    for the same (name, labels) twice returns the same instrument.  Timing
    histograms (``timing=True``) are kept in a separate section because
    their observations are wall-clock measurements (see module docstring).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timings: Dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        edges: Sequence[float] = DEFAULT_TIME_EDGES,
        timing: bool = False,
        **labels: Any,
    ) -> Histogram:
        store = self._timings if timing else self._histograms
        key = metric_key(name, labels)
        instrument = store.get(key)
        if instrument is None:
            instrument = store[key] = Histogram(edges)
        return instrument

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready state of every instrument, with sorted, stable keys."""
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
            "timings": {k: self._timings[k].to_dict()
                        for k in sorted(self._timings)},
        }


class NullRegistry(MetricsRegistry):
    """The default, no-op registry: every instrument is a shared no-op."""

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_TIME_EDGES,
                  timing: bool = False, **labels: Any) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timings": {}}


NULL_REGISTRY = NullRegistry()


# ---------------------------------------------------------------------------
# Snapshot algebra
# ---------------------------------------------------------------------------


def _merge_histogram(
    into: Dict[str, Any], item: Dict[str, Any]
) -> Dict[str, Any]:
    if tuple(into["edges"]) != tuple(item["edges"]):
        raise ValueError(
            "cannot merge histograms with different bucket edges"
        )
    merged = {
        "edges": list(into["edges"]),
        "counts": [a + b for a, b in zip(into["counts"], item["counts"])],
        "sum": into["sum"] + item["sum"],
        "count": into["count"] + item["count"],
    }
    mins = [v for v in (into["min"], item["min"]) if v is not None]
    maxs = [v for v in (into["max"], item["max"]) if v is not None]
    merged["min"] = min(mins) if mins else None
    merged["max"] = max(maxs) if maxs else None
    return merged


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker snapshots into one.

    Counters and histogram buckets sum; gauges take the max.  The operation
    is associative and commutative, so any merge tree over any worker
    partition produces the same result — the property the parallel runner's
    barrier merge relies on.
    """
    counters: Dict[str, Any] = {}
    gauges: Dict[str, Any] = {}
    histograms: Dict[str, Any] = {}
    timings: Dict[str, Any] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, value), value)
        for section, store in (("histograms", histograms),
                               ("timings", timings)):
            for key, item in snap.get(section, {}).items():
                if key in store:
                    store[key] = _merge_histogram(store[key], item)
                else:
                    store[key] = {
                        "edges": list(item["edges"]),
                        "counts": list(item["counts"]),
                        "sum": item["sum"],
                        "count": item["count"],
                        "min": item["min"],
                        "max": item["max"],
                    }
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
        "timings": {k: timings[k] for k in sorted(timings)},
    }


def deterministic_view(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The seed-determined part of a snapshot (drops wall-clock timings).

    This is the slice covered by the runtime's determinism guarantee:
    identical for metrics on/off replays of the same seeds and for any
    ``jobs`` value.
    """
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            key: {k: (list(v) if isinstance(v, list) else v)
                  for k, v in item.items()}
            for key, item in snapshot.get("histograms", {}).items()
        },
    }
