"""Bug triage: deduplicating the discrepancy stream into distinct bugs.

A 10k-query campaign can emit thousands of :class:`~repro.runtime.results.
BugReport` records that all stem from a handful of root causes.  The paper
reports *deduplicated* bug counts (Tables 3–6) after manual root-cause
analysis; this module plays that role mechanically through **bug
signatures**:

* with fault injection on (the usual simulated-engine setup), a signature is
  ``engine:fault_id`` — the white-box ground truth for "same underlying
  bug";
* with faults off (``fault_id is None`` — black-box discrepancies and the
  organic false positives of §5.4.3), the signature is a **failure
  fingerprint**: the engine, the report kind, the *normalized* discrepancy
  shape (digits and quoted values stripped, exception message reduced to
  its type), and a hash of the minimal feature set of the triggering query
  (its clause/function surface).  Queries differing only in literals or row
  counts collapse into one bug; structurally different failures stay apart.

:class:`CellTriage` accumulates signatures per (tester, engine, seed) cell
— occurrence counts plus the first-seen query/seed/sim-time — and
:func:`merge_triage_snapshots` folds cells in sorted order so grid-level
bug tables are identical for any worker count, the same barrier-merge
discipline as the metrics and coverage snapshots.

Nothing here draws randomness or changes control flow: campaign results are
byte-identical with triage on or off.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any, Dict, Iterable, List, Tuple

from repro.runtime.results import BugReport

__all__ = [
    "signature_for",
    "normalize_detail",
    "CellTriage",
    "merge_triage_snapshots",
    "distinct_signatures",
]

_NUMBER = re.compile(r"\d+(?:\.\d+)?")
_QUOTED = re.compile(r"'[^']*'|\"[^\"]*\"|`[^`]*`")


def normalize_detail(kind: str, detail: str) -> str:
    """The discrepancy *shape*: the report detail with volatile parts removed.

    Error reports reduce to the exception type (the message often embeds
    engine names or values); logic reports keep the oracle's sentence with
    digits and quoted fragments replaced, so "expected 7, got 4" and
    "expected 12, got 9" share one shape.
    """
    if kind == "error" and ":" in detail:
        return detail.split(":", 1)[0]
    shape = _QUOTED.sub("_", detail)
    shape = _NUMBER.sub("N", shape)
    # Column lists render as ['c0', 'c1']; after substitution collapse the
    # leftover brackets/commas noise.
    shape = re.sub(r"\[[^\]]*\]", "[_]", shape)
    return shape.strip()


def _minimal_feature_set(query_text: str) -> Tuple[str, ...]:
    """The clause/function surface of the triggering query, from its text.

    Parsing the (rare) discrepancy queries is cheap and keeps fingerprints
    purely structural — two queries differing only in literals fingerprint
    identically.
    """
    from repro.cypher.analysis import clause_types_in, functions_in
    from repro.cypher.parser import parse_query

    try:
        query = parse_query(query_text)
    except Exception:
        return ()
    return tuple(
        sorted(set(clause_types_in(query)) | set(functions_in(query)))
    )


def signature_for(report: BugReport) -> str:
    """The deduplication signature of one discrepancy report."""
    if report.fault_id:
        return f"{report.engine}:{report.fault_id}"
    shape = normalize_detail(report.kind, report.detail)
    features = _minimal_feature_set(report.query_text)
    # SHA-256, not the per-process-salted hash(): fingerprints must agree
    # across workers for the barrier merge (same rule as derive_cell_seed).
    digest = hashlib.sha256(
        f"{shape}#{','.join(features)}".encode("utf-8")
    ).hexdigest()[:8]
    return f"{report.engine}:{report.kind}:{digest}"


class CellTriage:
    """Signature accumulator for one (tester, engine, seed) campaign cell."""

    def __init__(self, tester: str, engine: str, seed: int):
        self.tester = tester
        self.engine = engine
        self.seed = seed
        self._bugs: Dict[str, Dict[str, Any]] = {}

    def add(self, report: BugReport, query_index: int) -> Tuple[str, bool]:
        """Fold one report in; returns ``(signature, is_new_in_this_cell)``."""
        signature = signature_for(report)
        entry = self._bugs.get(signature)
        if entry is None:
            self._bugs[signature] = {
                "count": 1,
                "kind": report.kind,
                "engine": report.engine,
                "fault_id": report.fault_id,
                "detail": normalize_detail(report.kind, report.detail),
                "first_seen": {
                    "seed": self.seed,
                    "query": query_index,
                    "sim_time": report.sim_time,
                    "query_text": report.query_text,
                },
            }
            return signature, True
        entry["count"] += 1
        return signature, False

    @property
    def signatures(self) -> List[str]:
        return sorted(self._bugs)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready per-cell triage snapshot with stable key order."""
        return {
            "tester": self.tester,
            "engine": self.engine,
            "seed": self.seed,
            "bugs": {sig: dict(self._bugs[sig]) for sig in sorted(self._bugs)},
        }


def _cell_key(snapshot: Dict[str, Any]) -> Tuple[str, str, int]:
    return (
        str(snapshot.get("tester", "?")),
        str(snapshot.get("engine", "?")),
        int(snapshot.get("seed", 0)),
    )


def merge_triage_snapshots(
    snapshots: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Barrier-merge per-cell triage snapshots into one distinct-bug table.

    Cells fold in sorted (tester, engine, seed) order: counts sum, the
    first-seen record comes from the first cell (in that order) holding the
    signature, and each signature lists the testers that hit it — all
    independent of worker count and completion order.
    """
    ordered = sorted(snapshots, key=_cell_key)
    bugs: Dict[str, Dict[str, Any]] = {}
    for snap in ordered:
        tester = snap.get("tester", "?")
        for signature, entry in snap.get("bugs", {}).items():
            merged = bugs.get(signature)
            if merged is None:
                merged = bugs[signature] = {
                    "count": 0,
                    "kind": entry.get("kind"),
                    "engine": entry.get("engine"),
                    "fault_id": entry.get("fault_id"),
                    "detail": entry.get("detail"),
                    "first_seen": dict(entry.get("first_seen", {})),
                    "testers": [],
                }
            merged["count"] += entry.get("count", 0)
            if tester not in merged["testers"]:
                merged["testers"].append(tester)
                merged["testers"].sort()
    return {
        "distinct": len(bugs),
        "occurrences": sum(entry["count"] for entry in bugs.values()),
        "bugs": {sig: bugs[sig] for sig in sorted(bugs)},
    }


def distinct_signatures(reports: Iterable[BugReport]) -> Dict[str, int]:
    """Signature → occurrence count over a flat report stream.

    The post-hoc analogue of :class:`CellTriage` for already-collected
    campaign results (e.g. deduplicating ``CampaignResult.reports`` in the
    experiment summaries without re-running anything).
    """
    counts: Dict[str, int] = {}
    for report in reports:
        signature = signature_for(report)
        counts[signature] = counts.get(signature, 0) + 1
    return {sig: counts[sig] for sig in sorted(counts)}
