"""Portable exports of a recorded event log: trace, JSON, HTML.

Everything ``repro stats``/``trace``/``bugs``/``compare`` can render as
text, this module serializes for machines and browsers:

* :func:`chrome_trace` — the span samples as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto).  Spans deliberately carry no absolute
  wall-clock timestamps (the determinism contract strips them), so the
  trace is laid out on the **simulated campaign clock** in microseconds —
  one thread per grid cell, the measured ``perf_counter`` duration
  attached in ``args``.  Events are emitted sorted per thread, so ``ts``
  is monotone within each ``tid``.
* :func:`stats_json` / :func:`bugs_json` / :func:`compare_json` — the
  machine-readable twins of the text renderers, all plain
  ``json.dumps``-able dicts with a ``schema`` version.
* :func:`html_report` — a self-contained static HTML report (inline CSS,
  inline SVG coverage curve, zero external requests) covering stats,
  coverage, triage, adaptation, and the operator profile.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.coverage import merge_coverage_snapshots
from repro.obs.metrics import split_metric_key
from repro.obs.profile import profile_rows
from repro.obs.render import (
    coverage_snapshots_in,
    merged_snapshot_from_events,
    render_bugs,
    render_stats,
    render_trace,
    supervisor_counts,
    triage_snapshots_in,
)
from repro.obs.triage import merge_triage_snapshots

__all__ = [
    "EXPORT_SCHEMA_VERSION",
    "chrome_trace",
    "stats_json",
    "bugs_json",
    "compare_json",
    "html_report",
]

Event = Dict[str, Any]

EXPORT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def chrome_trace(events: Iterable[Event]) -> Dict[str, Any]:
    """Span events as a Chrome trace-event JSON object.

    One ``pid`` (the campaign), one ``tid`` per grid cell, complete
    (``ph="X"``) events on the simulated clock in µs.  A log without span
    events yields an empty (but valid) trace.
    """
    spans = [e for e in events if e.get("event") == "span"]
    cells = sorted({str(span.get("cell", "?")) for span in spans})
    tid_for = {cell: index + 1 for index, cell in enumerate(cells)}
    trace_events: List[Dict[str, Any]] = []
    if spans:
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
            "args": {"name": "repro campaign (simulated clock)"},
        })
    for cell in cells:
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": 1,
            "tid": tid_for[cell], "args": {"name": cell},
        })

    def timeline_key(span: Event) -> Any:
        return (
            tid_for[str(span.get("cell", "?"))],
            float(span.get("sim0") or 0.0),
            int(span.get("id", 0)),
        )

    for span in sorted(spans, key=timeline_key):
        sim0 = float(span.get("sim0") or 0.0)
        sim1 = span.get("sim1")
        duration = max(float(sim1) - sim0, 0.0) if sim1 is not None else 0.0
        trace_events.append({
            "ph": "X",
            "name": str(span.get("name", "?")),
            "cat": "campaign",
            "pid": 1,
            "tid": tid_for[str(span.get("cell", "?"))],
            "ts": round(sim0 * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "args": {
                "perf_seconds": span.get("perf"),
                "span_id": span.get("id"),
                "parent": span.get("parent"),
            },
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated campaign seconds (×1e6 = ts µs)",
            "generator": "repro trace --export chrome",
            "schema": EXPORT_SCHEMA_VERSION,
        },
    }


# ---------------------------------------------------------------------------
# JSON twins of the text renderers
# ---------------------------------------------------------------------------


def _counter_matrix(
    counters: Dict[str, Any], name: str, row_label: str, col_label: str
) -> Dict[str, Dict[str, int]]:
    """``name|row,col`` counters as nested dicts (rows sorted by key)."""
    matrix: Dict[str, Dict[str, int]] = {}
    for key, value in counters.items():
        base, labels = split_metric_key(key)
        if base != name or row_label not in labels or col_label not in labels:
            continue
        matrix.setdefault(labels[row_label], {})[labels[col_label]] = value
    return {row: dict(sorted(cols.items()))
            for row, cols in sorted(matrix.items())}


def stats_json(
    events: Iterable[Event],
    *,
    skipped: int = 0,
    torn: Optional[List[Dict[str, int]]] = None,
) -> Dict[str, Any]:
    """The machine-readable twin of ``repro stats``.

    *torn* optionally carries the byte-accurate skipped-line account from
    :func:`repro.core.reporting.load_event_stream` (``.skipped_lines``) —
    each entry pins one undecodable journal line to its byte ``offset``
    and ``length`` so consumers can audit exactly where a log lost data.
    """
    events = list(events)
    snapshot = merged_snapshot_from_events(events)
    counters = snapshot.get("counters", {})
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "events": len(events),
        "skipped_lines": skipped,
        "torn_lines": list(torn or ()),
        "queries": _counter_matrix(
            counters, "campaign.queries", "tester", "engine"
        ),
        "faults": _counter_matrix(
            counters, "campaign.faults", "tester", "engine"
        ),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(snapshot.get("gauges", {}).items())),
        "histograms": dict(sorted(snapshot.get("histograms", {}).items())),
        "timings": dict(sorted(snapshot.get("timings", {}).items())),
        "profile": profile_rows(snapshot),
        "supervisor": supervisor_counts(events),
    }


def bugs_json(events: Iterable[Event]) -> Dict[str, Any]:
    """The machine-readable twin of ``repro bugs``."""
    events = list(events)
    snapshots = triage_snapshots_in(events)
    merged = (
        merge_triage_snapshots([event["snapshot"] for event in snapshots])
        if snapshots else {"distinct": 0, "occurrences": 0, "bugs": {}}
    )
    bundles = [
        {"path": event.get("path"), "signature": event.get("signature")}
        for event in sorted(
            (e for e in events if e.get("event") == "bundle"),
            key=lambda e: str(e.get("path", "")),
        )
    ]
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "distinct": merged["distinct"],
        "occurrences": merged["occurrences"],
        "bugs": {sig: merged["bugs"][sig] for sig in sorted(merged["bugs"])},
        "bundles": bundles,
    }


def compare_json(
    engine: str, rows: List[Dict[str, Any]], *, seed: int = 0
) -> Dict[str, Any]:
    """``repro compare`` rows as JSON (one dict per tester, table order)."""
    return {
        "schema": EXPORT_SCHEMA_VERSION,
        "engine": engine,
        "seed": seed,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Static HTML report
# ---------------------------------------------------------------------------

_REPORT_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       color: #1b1f24; max-width: 72rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
border-bottom: 1px solid #d0d7de; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #d0d7de; padding: .25rem .6rem;
         font-size: .85rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
pre { background: #f6f8fa; padding: .8rem; overflow-x: auto;
      font-size: .8rem; line-height: 1.35; }
.summary span { display: inline-block; margin-right: 1.6rem;
                font-size: .95rem; }
.summary b { font-size: 1.2rem; }
svg { background: #f6f8fa; }
.warn { color: #9a6700; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value))


def _curve_svg(curve: List[Any], width: int = 640, height: int = 180) -> str:
    """The coverage-vs-queries curve as an inline SVG polyline."""
    points = [(int(q), int(n)) for q, n in curve]
    if len(points) < 2:
        return ""
    max_q = max(q for q, _n in points) or 1
    max_n = max(n for _q, n in points) or 1
    pad = 36
    plot_w, plot_h = width - 2 * pad, height - 2 * pad
    coords = " ".join(
        f"{pad + plot_w * q / max_q:.1f},{height - pad - plot_h * n / max_n:.1f}"
        for q, n in points
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="coverage curve">'
        f'<polyline points="{coords}" fill="none" stroke="#0969da" '
        f'stroke-width="2"/>'
        f'<text x="{pad}" y="{height - 8}" font-size="11">0</text>'
        f'<text x="{width - pad}" y="{height - 8}" font-size="11" '
        f'text-anchor="end">{max_q} queries</text>'
        f'<text x="4" y="{pad}" font-size="11">{max_n} features</text>'
        "</svg>"
    )


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def html_report(
    events: Iterable[Event],
    *,
    title: str = "repro campaign report",
    skipped: int = 0,
) -> str:
    """A self-contained static HTML report for one event log.

    Works on any log — sections without data are simply omitted.  The
    output references no external resources, so the file can be archived
    or attached to a bug report as-is.
    """
    events = list(events)
    snapshot = merged_snapshot_from_events(events)
    counters = snapshot.get("counters", {})
    total_queries = sum(
        value for key, value in counters.items()
        if split_metric_key(key)[0] == "campaign.queries"
    )
    bugs = bugs_json(events)
    cells = sum(1 for e in events if e.get("event") == "cell_complete") or sum(
        1 for e in events if e.get("event") == "campaign_end"
    )

    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_REPORT_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<div class="summary">'
        f"<span><b>{len(events)}</b> events</span>"
        f"<span><b>{cells}</b> campaign(s)</span>"
        f"<span><b>{total_queries}</b> queries</span>"
        f"<span><b>{bugs['distinct']}</b> distinct bug(s)</span>"
        "</div>",
    ]
    if skipped:
        parts.append(
            f'<p class="warn">warning: {skipped} torn/undecodable line(s) '
            "skipped while reading the log</p>"
        )

    queries = _counter_matrix(counters, "campaign.queries", "tester", "engine")
    if queries:
        engines = sorted({e for row in queries.values() for e in row})
        parts.append("<h2>Queries per tester × engine</h2>")
        parts.append(_table(
            ["tester", *engines],
            [[tester, *[queries[tester].get(e, "-") for e in engines]]
             for tester in queries],
        ))

    coverage_snaps = coverage_snapshots_in(events)
    if coverage_snaps:
        merged = merge_coverage_snapshots(
            [event["snapshot"] for event in coverage_snaps]
        )
        parts.append("<h2>Coverage</h2>")
        parts.append(
            f"<p>{len(merged['features'])} distinct features over "
            f"{merged['queries']} queries</p>"
        )
        svg = _curve_svg(merged.get("curve", []))
        if svg:
            parts.append(svg)

    if bugs["bugs"]:
        parts.append("<h2>Distinct bugs</h2>")
        parts.append(_table(
            ["signature", "count", "kind", "first seed", "first query",
             "testers"],
            [
                [
                    sig, entry.get("count", 0), entry.get("kind", "?"),
                    entry.get("first_seen", {}).get("seed", "-"),
                    entry.get("first_seen", {}).get("query", "-"),
                    ",".join(entry.get("testers", [])),
                ]
                for sig, entry in bugs["bugs"].items()
            ],
        ))
        if bugs["bundles"]:
            parts.append("<h2>Repro bundles</h2>")
            parts.append(_table(
                ["path", "signature"],
                [[b["path"], b["signature"]] for b in bugs["bundles"]],
            ))

    profile = [r for r in profile_rows(snapshot)
               if r["invocations"] or r["steps"] or r["seconds"] is not None]
    if profile:
        parts.append("<h2>Operator profile (compiled engine)</h2>")
        parts.append(_table(
            ["operator", "calls", "rows", "steps", "seconds"],
            [
                [
                    r["operator"], r["invocations"], r["rows"], r["steps"],
                    "-" if r["seconds"] is None else f"{r['seconds']:.4f}",
                ]
                for r in profile
            ],
        ))

    stats_text = render_stats(events)
    if "no metrics events" not in stats_text:
        parts.append("<h2>Full stats</h2>")
        parts.append(f"<pre>{_esc(stats_text)}</pre>")
    trace_text = render_trace(events)
    if "no span events" not in trace_text:
        parts.append("<h2>Span tree</h2>")
        parts.append(f"<pre>{_esc(trace_text)}</pre>")
    bugs_text = render_bugs(events)
    if "no triage events" not in bugs_text:
        parts.append("<h2>Triage</h2>")
        parts.append(f"<pre>{_esc(bugs_text)}</pre>")

    parts.append("</body></html>")
    return "\n".join(parts)
