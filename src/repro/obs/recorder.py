"""The flight recorder: self-contained repro bundles for found bugs.

The paper's unit of communication with GDB developers is a reproducible bug
report — the query, the graph it ran on, and the expected vs. actual
results (§5, Figures 1/7/8).  The flight recorder produces exactly that
artifact mechanically: the first time a campaign cell sees a *new* bug
signature (:mod:`repro.obs.triage`), it writes a JSON **bundle** holding
everything needed to replay the discrepancy from a cold start:

* the engine spec (name, fault switch, gate scale — the picklable recipe
  the parallel runner already uses),
* the schema and the full serialized property graph,
* the query text and the session-query counter at fault-fire time (session
  accumulation bugs need it, §5.4.4),
* the **expected** rows (same engine, faults disabled) and the **actual**
  rows (faults as configured), both computed by the deterministic replay
  procedure itself at record time — so ``repro replay BUNDLE`` re-executing
  the same procedure must reproduce them byte-for-byte,
* the per-cell SHA-256-derived seed and the campaign report metadata.

Bundles are per-cell (the filename embeds tester/engine/seed plus a digest
of the signature), so parallel workers never contend for a file and the
bundle set is identical for any worker count.

Recording draws no randomness — replica engines execute the recorded query
deterministically — so campaign results stay byte-identical with the
recorder on or off.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.runtime.results import BugReport

__all__ = [
    "FlightRecorder",
    "ReplayOutcome",
    "load_bundle",
    "replay_bundle",
    "BUNDLE_FORMAT",
    "BUNDLE_FORMAT_V2",
]

BUNDLE_FORMAT = "gqs-bundle/1"

#: Sequence bundles (stateful sessions, :mod:`repro.synth.state`): the
#: graph is the round's *initial* state and ``statements`` holds the full
#: executed sequence, the last statement being the discrepant one.  v1
#: single-query bundles keep loading and replaying unchanged.
BUNDLE_FORMAT_V2 = "gqs-bundle/2"

_KNOWN_FORMATS = (BUNDLE_FORMAT, BUNDLE_FORMAT_V2)


def _execute_side(
    bundle: Dict[str, Any], *, faults_enabled: bool
) -> Dict[str, Any]:
    """Run the bundle's query on a fresh replica engine; JSON-ready outcome.

    The *expected* side disables faults (reference semantics on the same
    dialect); the *actual* side replays the recorded fault configuration and
    session state.  Both are pure functions of the bundle contents.
    """
    from repro.obs.metrics import NULL_REGISTRY
    from repro.obs.probe import PROBE
    from repro.obs.trace import NULL_TRACER

    # Replica executions must not leak into the campaign's own metrics
    # stream, so the probe is parked while the replay runs.
    previous = (PROBE.metrics, PROBE.tracer, PROBE.on)
    PROBE.metrics, PROBE.tracer, PROBE.on = NULL_REGISTRY, NULL_TRACER, False
    try:
        return _execute_side_unprobed(bundle, faults_enabled=faults_enabled)
    finally:
        PROBE.metrics, PROBE.tracer, PROBE.on = previous


def _execute_side_unprobed(
    bundle: Dict[str, Any], *, faults_enabled: bool
) -> Dict[str, Any]:
    from repro.engine.errors import CypherError, DatabaseCrash, ResourceExhausted
    from repro.gdb.engines import EngineSpec
    from repro.graph.model import PropertyGraph
    from repro.graph.schema import GraphSchema

    spec = bundle["engine_spec"]
    engine = EngineSpec(
        spec["name"],
        faults_enabled=faults_enabled and spec.get("faults_enabled", True),
        gate_scale=spec.get("gate_scale", 1.0),
        execution_mode=spec.get("execution_mode", "interpreted"),
    ).create()
    graph = PropertyGraph.from_dict(bundle["graph"])
    schema = (
        GraphSchema.from_dict(bundle["schema"])
        if bundle.get("schema") is not None
        else None
    )
    engine.load_graph(graph, schema, restart=True)

    statements = bundle.get("statements")
    if statements:
        # v2 sequence replay: the round restarted the engine, so session
        # counters re-accumulate naturally as the sequence re-executes —
        # no counter restore is needed (or correct).
        from repro.synth.state.oracle import state_summary

        last_result = None
        for index, statement in enumerate(statements):
            try:
                last_result = engine.execute(statement)
            except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
                return {
                    "error": f"{type(exc).__name__}: {exc}",
                    "fault_id": (
                        engine.last_fired_fault.fault_id
                        if engine.last_fired_fault
                        else None
                    ),
                    "statement_index": index,
                    "state": state_summary(engine.graph),
                }
        return {
            "columns": list(last_result.columns),
            "rows": last_result.to_table(engine.dialect),
            "fault_id": (
                engine.last_fired_fault.fault_id
                if engine.last_fired_fault
                else None
            ),
            "statement_index": len(statements) - 1,
            "state": state_summary(engine.graph),
        }

    if faults_enabled and bundle.get("session_queries"):
        # Restore the session-accumulation counter to just before the
        # recorded query, so session-gated faults (§5.4.4) refire.
        engine.queries_since_restart = int(bundle["session_queries"]) - 1
    try:
        result = engine.execute(bundle["query"])
    except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "fault_id": (
                engine.last_fired_fault.fault_id
                if engine.last_fired_fault
                else None
            ),
        }
    return {
        "columns": list(result.columns),
        "rows": result.to_table(engine.dialect),
        "fault_id": (
            engine.last_fired_fault.fault_id
            if engine.last_fired_fault
            else None
        ),
    }


class FlightRecorder:
    """Writes one repro bundle per new bug signature into a directory.

    With ``auto_reduce=True`` every bundle is additionally minimized in
    place (``<bundle>.min.json`` sibling) through the delta-debugging
    subsystem (:mod:`repro.reduce`), with the shrink stats collected in
    :attr:`reductions`.  ``reduce_replay_budget`` caps the replica
    executions each minimization may spend; ``None`` means reduce to the
    true fixpoint.
    """

    #: Default per-bundle replay cap for campaign-inline reduction: enough
    #: to finish the graph passes and make a solid dent in the query, while
    #: bounding the inline cost to a few seconds per bundle.
    DEFAULT_REDUCE_BUDGET = 400

    #: Sentinel distinguishing "use the class default" from an explicit
    #: ``None`` (= reduce to the unbudgeted fixpoint).
    _USE_DEFAULT_BUDGET = object()

    def __init__(
        self,
        directory: Union[str, Path],
        auto_reduce: bool = False,
        reduce_replay_budget: Any = _USE_DEFAULT_BUDGET,
    ):
        self.directory = Path(directory)
        self.bundles_written: List[Path] = []
        self.auto_reduce = auto_reduce
        if reduce_replay_budget is self._USE_DEFAULT_BUDGET:
            # Resolved at call time so the class attribute stays the single
            # tunable knob (tests dial it down for speed).
            reduce_replay_budget = type(self).DEFAULT_REDUCE_BUDGET
        self.reduce_replay_budget: Optional[int] = reduce_replay_budget
        #: Shrink-stat dicts (one per auto-reduced bundle, in record order).
        self.reductions: List[Dict[str, Any]] = []

    def bundle_path(
        self, tester: str, engine: str, seed: int, signature: str
    ) -> Path:
        digest = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:12]
        return self.directory / f"{tester}-{engine}-{seed}-{digest}.json"

    def record(
        self,
        *,
        signature: str,
        tester: str,
        seed: int,
        report: BugReport,
        graph,
        schema,
        engine_spec: Dict[str, Any],
        session_queries: Optional[int],
        query_index: int,
        statements: Optional[List[str]] = None,
    ) -> Path:
        """Write the repro bundle for one newly-seen signature.

        ``engine_spec`` describes the engine the report is attributed to;
        ``session_queries`` is its query counter at fault-fire time (None
        when no fault fired or the counter was not observed).  When
        ``statements`` is given the bundle is a v2 *sequence* bundle:
        ``graph`` must then be the round's pristine initial graph and the
        last statement is the discrepant one (``query`` mirrors it for
        uniform display).
        """
        bundle: Dict[str, Any] = {
            "format": BUNDLE_FORMAT_V2 if statements else BUNDLE_FORMAT,
            "signature": signature,
            "tester": tester,
            "engine": report.engine,
            "cell_seed": seed,
            "engine_spec": dict(engine_spec),
            "schema": schema.describe() if schema is not None else None,
            "graph": graph.to_dict(),
            "query": report.query_text,
            "kind": report.kind,
            "detail": report.detail,
            "fault_id": report.fault_id,
            "session_queries": session_queries,
            "sim_time": report.sim_time,
            "query_index": query_index,
        }
        if statements:
            bundle["statements"] = list(statements)
        # Record-time self-replay: the stored expected/actual are produced
        # by the exact procedure `repro replay` re-runs, so a bundle is
        # reproducible by construction.
        bundle["expected"] = _execute_side(bundle, faults_enabled=False)
        bundle["actual"] = _execute_side(bundle, faults_enabled=True)
        bundle["discrepant"] = bundle["expected"] != bundle["actual"]

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.bundle_path(tester, report.engine, seed, signature)
        path.write_text(
            json.dumps(bundle, indent=2, sort_keys=True), encoding="utf-8"
        )
        self.bundles_written.append(path)
        if self.auto_reduce:
            # Imported lazily: repro.reduce replays through this module, so
            # a top-level import would be circular.
            from repro.reduce.runner import reduce_bundle

            outcome = reduce_bundle(
                path, replay_budget=self.reduce_replay_budget
            )
            self.reductions.append(outcome.to_dict())
        return path


def load_bundle(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one flight-recorder bundle, validating the format marker.

    A malformed or truncated file raises :class:`ValueError` with a
    one-line diagnostic naming the file and the parse position, so CLI
    callers can report it and exit instead of dumping a traceback.
    """
    try:
        bundle = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: malformed bundle JSON: {exc.msg} at "
            f"line {exc.lineno} column {exc.colno} (char {exc.pos})"
        ) from None
    if not isinstance(bundle, dict) or bundle.get("format") not in _KNOWN_FORMATS:
        kind = (bundle.get("format") if isinstance(bundle, dict)
                else type(bundle).__name__)
        raise ValueError(
            f"{path}: not a flight-recorder bundle (format={kind!r})"
        )
    return bundle


class ReplayOutcome:
    """Result of replaying a bundle against the recorded outcomes."""

    def __init__(
        self,
        bundle: Dict[str, Any],
        expected: Dict[str, Any],
        actual: Dict[str, Any],
    ):
        self.bundle = bundle
        self.expected = expected
        self.actual = actual

    @property
    def expected_matches(self) -> bool:
        return self.expected == self.bundle.get("expected")

    @property
    def actual_matches(self) -> bool:
        return self.actual == self.bundle.get("actual")

    @property
    def reproduced(self) -> bool:
        """Whether the replay reproduced the recorded discrepancy exactly."""
        return self.expected_matches and self.actual_matches

    @property
    def discrepant(self) -> bool:
        return self.expected != self.actual

    def describe(self) -> str:
        bundle = self.bundle
        lines = [
            f"bundle    {bundle.get('signature')}",
            f"tester    {bundle.get('tester')}  engine {bundle.get('engine')}"
            f"  cell-seed {bundle.get('cell_seed')}",
            f"kind      {bundle.get('kind')}  fault {bundle.get('fault_id')}",
            f"query     {bundle.get('query')}",
        ]
        if bundle.get("statements"):
            lines.insert(
                4,
                f"sequence  {len(bundle['statements'])} statement(s) "
                f"(v2 sequence bundle; query above is the last)",
            )
        for side, payload, match in (
            ("expected", self.expected, self.expected_matches),
            ("actual", self.actual, self.actual_matches),
        ):
            if "error" in payload:
                shown = payload["error"]
            else:
                rows = payload.get("rows", [])
                shown = f"{len(rows)} row(s)"
            if "state" in payload:
                shown += f"  state {payload['state'].get('digest')}"
            verdict = "matches recording" if match else "DIVERGED from recording"
            lines.append(f"{side:<9s} {shown}  [{verdict}]")
        lines.append(
            "discrepancy "
            + ("reproduced" if self.discrepant else "not present on replay")
        )
        return "\n".join(lines)


def replay_bundle(source: Union[str, Path, Dict[str, Any]]) -> ReplayOutcome:
    """Re-execute a bundle's query on replica engines and compare.

    Returns a :class:`ReplayOutcome`; ``outcome.reproduced`` asserts that
    both the expected and the actual side came out byte-identical to what
    the recorder stored — the flight recorder's determinism contract.
    """
    bundle = (
        source if isinstance(source, dict) else load_bundle(source)
    )
    expected = _execute_side(bundle, faults_enabled=False)
    actual = _execute_side(bundle, faults_enabled=True)
    return ReplayOutcome(bundle, expected, actual)
