"""The process-wide observability switch.

Hot paths (the reference executor's clause loops, the matcher, the engine's
``execute``) cannot afford per-call indirection when observability is off,
and must not need plumbing changes every time an instrumentation point is
added.  They therefore share one module-level :class:`Probe` — a stable
holder object whose *fields* are swapped when observability is enabled:

    from repro.obs import PROBE

    if PROBE.on:
        PROBE.metrics.counter("matcher.calls").inc()

``PROBE`` itself is never rebound, so ``from ... import PROBE`` bindings
taken at import time stay valid.  The disabled path is one attribute load
plus a branch; nothing is allocated.

Enabling is scoped (:func:`observed` is a context manager) and per-process:
each parallel campaign worker enables its own registry and the parent
merges the resulting snapshots at the barrier (see
:mod:`repro.runtime.parallel`).

Instrumentation MUST NOT perturb the campaign RNG streams: nothing in this
package draws randomness, and probes only ever read campaign state.
Results are byte-identical with observability on or off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["Probe", "PROBE", "enable", "disable", "observed"]


class Probe:
    """Holder for the active metrics registry and tracer."""

    __slots__ = ("metrics", "tracer", "on")

    def __init__(self) -> None:
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.tracer: Tracer = NULL_TRACER
        self.on: bool = False


PROBE = Probe()


def enable(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Tuple[MetricsRegistry, Tracer]:
    """Switch observability on; returns the active (registry, tracer).

    A fresh registry is created when none is given; a fresh tracer feeding
    that registry's timing histograms is created when none is given.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    active_tracer = tracer if tracer is not None else Tracer(registry)
    PROBE.metrics = registry
    PROBE.tracer = active_tracer
    PROBE.on = not isinstance(active_tracer, NullTracer) or registry is not NULL_REGISTRY
    return registry, active_tracer


def disable() -> None:
    """Switch observability off (back to the shared no-op instruments)."""
    PROBE.metrics = NULL_REGISTRY
    PROBE.tracer = NULL_TRACER
    PROBE.on = False


@contextmanager
def observed(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """Enable observability for a ``with`` block, restoring the prior state.

    Nesting restores whatever was active before, so a scoped enable inside
    an already-observed region hands control back correctly.
    """
    previous = (PROBE.metrics, PROBE.tracer, PROBE.on)
    try:
        yield enable(metrics, tracer)
    finally:
        PROBE.metrics, PROBE.tracer, PROBE.on = previous
