"""Per-operator profiling of the compiled execution core.

The compiled engine (:mod:`repro.engine.plan`) already tallies rows per
operator (``plan.rows|operator=*``); this module adds the *where does the
time go* half: per-operator wall time, invocation counts, and evaluation
steps, collected at the operator boundary of :class:`CompiledPlan.execute`
and flushed into the metrics registry once per query.

The contract is the same as the rest of :mod:`repro.obs`:

* **Zero cost when off.**  The engine only hands an :class:`OperatorProfile`
  to the execution context when :data:`repro.obs.PROBE` is on *and* the
  engine runs in pure ``compiled`` mode; the hot loop guards on one
  ``is not None`` check.  Dual mode never profiles — its observable stream
  must stay byte-identical to an interpreted run's.
* **RNG-stream invariant.**  Profiling draws no randomness and never
  changes control flow, so campaign results are byte-identical with the
  profiler on or off, for any worker count.
* **Determinism split.**  Invocation and step counts are deterministic and
  flush as counters (``plan.invocations|operator=*``,
  ``plan.steps|operator=*``); wall time is not, and flushes as a *timing*
  histogram (``plan.seconds|operator=*``) which
  :func:`repro.obs.metrics.deterministic_view` strips.

Step counts ride the evaluation resource envelope
(:data:`repro.engine.envelope.ENVELOPE`): its charge sites only tick while
a budget is active, so profiled compiled execution runs under an
unreachable ceiling budget (:data:`PROFILE_STEP_CEILING`) when the user set
none — the counter advances, the budget can never blow.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.metrics import MetricsRegistry, split_metric_key

__all__ = [
    "PROFILE_STEP_CEILING",
    "OperatorProfile",
    "profile_rows",
    "render_profile",
]

#: Step budget used to make envelope charge sites count during profiled
#: execution when no user budget is active; far beyond any real query.
PROFILE_STEP_CEILING = 1 << 62


class OperatorProfile:
    """Per-query accumulator: ``operator -> [invocations, steps, seconds]``.

    Filled at the operator boundary by the compiled plan executor, drained
    into the metrics registry by the engine's per-query flush — the same
    tally-then-flush idiom as :class:`repro.engine.plan.cache.PlanCache`.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: Dict[str, List[Any]] = {}

    def record(self, operator: str, steps: int, seconds: float) -> None:
        entry = self.data.get(operator)
        if entry is None:
            entry = self.data[operator] = [0, 0, 0.0]
        entry[0] += 1
        entry[1] += steps
        entry[2] += seconds

    def __bool__(self) -> bool:
        return bool(self.data)

    def flush(self, metrics: MetricsRegistry) -> None:
        """Drain into *metrics* and reset (sorted: merge-order stable)."""
        for operator in sorted(self.data):
            invocations, steps, seconds = self.data[operator]
            metrics.counter("plan.invocations", operator=operator).inc(
                invocations
            )
            if steps:
                metrics.counter("plan.steps", operator=operator).inc(steps)
            metrics.histogram(
                "plan.seconds", timing=True, operator=operator
            ).observe(seconds)
        self.data.clear()


def profile_rows(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Join the per-operator profile metrics of a merged snapshot.

    Returns one row per operator — ``{"operator", "invocations", "rows",
    "steps", "seconds"}`` — sorted hottest first (by wall seconds, then
    steps, then rows).  ``seconds`` is ``None`` when the log carries no
    timing data for the operator (timings are stripped from deterministic
    views).
    """
    per: Dict[str, Dict[str, Any]] = {}

    def row(operator: str) -> Dict[str, Any]:
        entry = per.get(operator)
        if entry is None:
            entry = per[operator] = {
                "operator": operator, "invocations": 0, "rows": 0,
                "steps": 0, "seconds": None,
            }
        return entry

    for key, value in snapshot.get("counters", {}).items():
        base, labels = split_metric_key(key)
        operator = labels.get("operator")
        if operator is None:
            continue
        if base == "plan.rows":
            row(operator)["rows"] += value
        elif base == "plan.invocations":
            row(operator)["invocations"] += value
        elif base == "plan.steps":
            row(operator)["steps"] += value
    for key, item in snapshot.get("timings", {}).items():
        base, labels = split_metric_key(key)
        operator = labels.get("operator")
        if base == "plan.seconds" and operator is not None:
            entry = row(operator)
            entry["seconds"] = (entry["seconds"] or 0.0) + item["sum"]
    return sorted(
        per.values(),
        key=lambda r: (-(r["seconds"] or 0.0), -r["steps"], -r["rows"],
                       r["operator"]),
    )


def render_profile(snapshot: Dict[str, Any]) -> List[str]:
    """The ``== profile ==`` hot-operator table (empty without a profile).

    Only logs from profiled compiled campaigns carry
    ``plan.invocations``/``plan.steps``/``plan.seconds`` — a bare
    ``plan.rows`` log (pre-profiler recordings) renders no section rather
    than a table of dashes.
    """
    rows = profile_rows(snapshot)
    if not any(r["invocations"] or r["steps"] or r["seconds"] is not None
               for r in rows):
        return []
    total_seconds = sum(r["seconds"] or 0.0 for r in rows)
    width = max(max(len(r["operator"]) for r in rows), len("operator")) + 2
    lines = [
        f"  {'operator':<{width}s} {'calls':>10s} {'rows':>12s} "
        f"{'steps':>12s} {'seconds':>10s} {'time%':>6s}"
    ]
    for r in rows:
        seconds = r["seconds"]
        seconds_text = "-" if seconds is None else f"{seconds:.4f}"
        share = (
            f"{100.0 * seconds / total_seconds:5.1f}%"
            if seconds is not None and total_seconds else "-"
        )
        lines.append(
            f"  {r['operator']:<{width}s} {r['invocations']:>10d} "
            f"{r['rows']:>12d} {r['steps']:>12d} {seconds_text:>10s} "
            f"{share:>6s}"
        )
    return lines
