"""Turn a recorded campaign event log into a profile.

``repro stats`` and ``repro trace`` both operate on the JSONL event stream
that every campaign/grid run can append to (``--events``): ``stats`` merges
the ``metrics`` snapshots and renders per-stage time histograms plus the
per-tester×engine query accounting; ``trace`` rebuilds the span tree from
``span`` events and renders it aggregated by stage name.  ``repro
coverage`` and ``repro bugs`` render the second observability tier —
``coverage`` events (query-feature coverage, :mod:`repro.obs.coverage`)
and ``triage`` events (distinct-bug signatures, :mod:`repro.obs.triage`).

All four work on *any* past run — profiling is a property of the log, not
of the process that produced it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.coverage import feature_kind, merge_coverage_snapshots
from repro.obs.metrics import merge_snapshots, split_metric_key
from repro.obs.triage import merge_triage_snapshots

__all__ = [
    "metrics_snapshots_in",
    "merged_snapshot_from_events",
    "coverage_snapshots_in",
    "triage_snapshots_in",
    "supervisor_counts",
    "render_stats",
    "render_trace",
    "render_coverage",
    "render_bugs",
]

Event = Dict[str, Any]


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}µs"


def metrics_snapshots_in(events: Iterable[Event]) -> List[Event]:
    """The ``metrics`` events of a stream, campaign-scoped ones preferred.

    A grid log carries one per-campaign snapshot per cell plus a final
    merged grid snapshot; merging the per-campaign ones (and ignoring the
    grid rollup) avoids double counting, while a log holding only a rollup
    still renders.
    """
    all_metrics = [e for e in events if e.get("event") == "metrics"]
    campaign_scoped = [e for e in all_metrics if e.get("scope") == "campaign"]
    return campaign_scoped or all_metrics


def merged_snapshot_from_events(events: Iterable[Event]) -> Dict[str, Any]:
    """Merge every relevant metrics snapshot in an event stream."""
    return merge_snapshots(
        e["snapshot"] for e in metrics_snapshots_in(events)
    )


# ---------------------------------------------------------------------------
# repro stats
# ---------------------------------------------------------------------------


def _render_histogram(title: str, item: Dict[str, Any], unit: str) -> List[str]:
    lines = [
        f"{title}  (n={item['count']}, total {_format_seconds(item['sum'])}, "
        f"min {_format_seconds(item['min'])}, max {_format_seconds(item['max'])})"
        if unit == "s"
        else f"{title}  (n={item['count']}, total {item['sum']:g}, "
             f"min {item['min']:g}, max {item['max']:g})"
    ]
    peak = max(item["counts"]) or 1
    bounds = [*item["edges"], None]
    for edge, count in zip(bounds, item["counts"]):
        if count == 0:
            continue
        label = (
            f"  ≤{_format_seconds(edge)}" if unit == "s" and edge is not None
            else f"  ≤{edge:g}" if edge is not None
            else "  >last"
        )
        bar = "█" * max(1, round(24 * count / peak))
        lines.append(f"{label:>12s} {count:8d} {bar}")
    return lines


def _counter_table(
    counters: Dict[str, Any], name: str, row_label: str, col_label: str
) -> List[str]:
    """Render ``name|<col_label>=..,<row_label>=..`` counters as a matrix."""
    cells: Dict[Tuple[str, str], int] = {}
    for key, value in counters.items():
        base, labels = split_metric_key(key)
        if base != name or row_label not in labels or col_label not in labels:
            continue
        cells[(labels[row_label], labels[col_label])] = value
    if not cells:
        return []
    rows = sorted({r for r, _ in cells})
    cols = sorted({c for _, c in cells})
    width = max(len(c) for c in cols) + 2
    row_width = max(len(r) for r in rows) + 2
    lines = [" " * row_width + "".join(f"{c:>{width}s}" for c in cols)]
    for r in rows:
        line = f"{r:<{row_width}s}"
        for c in cols:
            value = cells.get((r, c))
            line += f"{value if value is not None else '-':>{width}}"
        lines.append(line)
    return lines


def supervisor_counts(events: Iterable[Event]) -> Dict[str, Any]:
    """Supervisor health accounting from the raw event stream.

    Works without ``--metrics``: failure/retry/quarantine accounting is
    event-based, so any grid log carries its robustness story.  Shared by
    the text renderer and the JSON export (:mod:`repro.obs.export`).
    """
    failed_by_kind: Dict[str, int] = {}
    retries = quarantined = harness_errors = truncations = 0
    for event in events:
        kind = event.get("event")
        if kind == "cell_failed":
            failure_kind = event.get("kind", "exception")
            failed_by_kind[failure_kind] = (
                failed_by_kind.get(failure_kind, 0) + 1
            )
        elif kind == "cell_retry":
            retries += 1
        elif kind == "cell_quarantined":
            quarantined += 1
        elif kind == "harness_error":
            harness_errors += 1
        elif kind == "chaos":
            truncations += 1
    return {
        "failed_by_kind": {k: failed_by_kind[k] for k in sorted(failed_by_kind)},
        "retries": retries,
        "quarantined": quarantined,
        "harness_errors": harness_errors,
        "chaos_truncations": truncations,
    }


def _render_supervisor(events: List[Event]) -> List[str]:
    """The ``== supervisor ==`` lines (empty for a healthy log)."""
    counts = supervisor_counts(events)
    lines: List[str] = []
    for failure_kind, n in counts["failed_by_kind"].items():
        lines.append(f"  failed attempts ({failure_kind}):{n:>9d}")
    if counts["retries"]:
        lines.append(f"  retries scheduled: {counts['retries']:>15d}")
    if counts["quarantined"]:
        lines.append(f"  cells quarantined: {counts['quarantined']:>15d}")
    if counts["harness_errors"]:
        lines.append(
            f"  harness errors (budget): {counts['harness_errors']:>9d}"
        )
    if counts["chaos_truncations"]:
        lines.append(
            f"  chaos log truncations: {counts['chaos_truncations']:>11d}"
        )
    return lines


def adaptation_snapshots_in(events: Iterable[Event]) -> List[Event]:
    """Adaptation events to merge: campaign scope, else grid rollups."""
    all_adapt = [e for e in events if e.get("event") == "adaptation"]
    campaign_scoped = [e for e in all_adapt
                       if e.get("scope") == "campaign"]
    return campaign_scoped or all_adapt


def _render_adaptation(events: List[Event]) -> List[str]:
    """The ``== adaptation ==`` section: bandit counters per feature arm.

    Works without ``--metrics`` — adaptation is event-based, emitted once
    per adaptive campaign.  Campaign-scoped snapshots are merged here (the
    grid barrier already merged its own rollup; preferring the per-cell
    events keeps single-cell and resumed logs consistent).
    """
    snaps = adaptation_snapshots_in(events)
    if not snaps:
        return []
    # Merge lazily: repro.obs must not import the runtime layer at module
    # scope (the runtime kernel imports repro.obs).
    from repro.runtime.adapt import merge_adaptation_snapshots

    tagged = []
    for event in snaps:
        snapshot = dict(event.get("snapshot") or {})
        if event.get("scope") == "campaign":
            snapshot.setdefault("tester", event.get("tester"))
            snapshot.setdefault("engine", event.get("engine"))
            snapshot.setdefault("seed", event.get("seed"))
            tagged.append(snapshot)
        else:
            # A grid rollup is already merged; render it as-is.
            return _adaptation_lines(snapshot)
    return _adaptation_lines(merge_adaptation_snapshots(tagged))


def _adaptation_lines(merged: Dict[str, Any]) -> List[str]:
    strategies = merged.get("strategies") or (
        [merged["strategy"]] if merged.get("strategy") else []
    )
    lines = [
        f"  strategy: {', '.join(strategies) or '?'}",
        f"  cells: {merged.get('cells', 1)}   "
        f"rounds: {merged.get('rounds', 0)}   "
        f"queries observed: {merged.get('observed', 0)}   "
        f"novel signatures: {merged.get('novel', 0)}",
    ]
    arms = merged.get("arms", {})
    if arms:
        width = max(len(name) for name in arms) + 2
        lines.append(
            f"    {'arm':<{width}s} {'selected':>9s} {'expressed':>10s} "
            f"{'novel':>6s}"
        )
        for name in sorted(arms):
            counters = arms[name]
            lines.append(
                f"    {name:<{width}s} {counters.get('selected', 0):>9d} "
                f"{counters.get('pulls', 0):>10d} "
                f"{counters.get('reward', 0):>6d}"
            )
    return lines


def _render_plans(counters: Dict[str, Any]) -> List[str]:
    """The ``== plans ==`` section: compiled-core cache and row counters.

    Plan counters exist only when some cell ran with
    ``--engine-mode compiled`` (dual mode deliberately flushes none, so
    its stream matches an interpreted run's byte-for-byte); an
    interpreted-only log gets an explicit no-data line instead of a
    silently absent section.
    """
    plan: Dict[str, Any] = {}
    rows_by_operator: Dict[str, int] = {}
    for key, value in counters.items():
        base, labels = split_metric_key(key)
        if base == "plan.rows":
            operator = labels.get("operator", "?")
            rows_by_operator[operator] = (
                rows_by_operator.get(operator, 0) + value
            )
        elif base.startswith("plan.") and not labels:
            # Unlabelled plan.* counters are the cache scalars; labelled
            # ones (plan.invocations|operator=..., plan.steps|...) belong
            # to the per-operator profile section, not here.
            plan[base[len("plan."):]] = plan.get(base[len("plan."):], 0) + value
    if not plan and not rows_by_operator:
        return [
            "  no plan counters in log (campaign ran interpreted or dual; "
            "re-run with --engine-mode compiled)"
        ]
    hits = plan.get("cache_hits", 0)
    misses = plan.get("cache_misses", 0)
    lookups = hits + misses
    lines = [
        f"  plan cache hits:   {hits:>12d}",
        f"  plan cache misses: {misses:>12d}",
    ]
    if lookups:
        lines.append(f"  hit ratio:         {hits / lookups:>12.3f}")
    lines.append(f"  plans compiled:    {plan.get('compiles', 0):>12d}")
    lines.append(f"  divergences:       {plan.get('divergences', 0):>12d}")
    if plan.get("write_fallbacks"):
        # Writes are deliberately unplannable; visible, not an error.
        lines.append(f"  write fallbacks:   {plan['write_fallbacks']:>12d}")
    if rows_by_operator:
        lines.append("  rows by operator:")
        width = max(len(op) for op in rows_by_operator) + 2
        for operator in sorted(rows_by_operator):
            lines.append(
                f"    {operator:<{width}s} {rows_by_operator[operator]:>10d}"
            )
    return lines


def render_stats(events: Iterable[Event]) -> str:
    """Per-stage time/sim histograms + query accounting for an event log."""
    events = list(events)
    snapshot = merged_snapshot_from_events(events)
    lines: List[str] = []

    timings = snapshot.get("timings", {})
    stage_keys = [k for k in timings if split_metric_key(k)[0] == "stage.seconds"]
    if stage_keys:
        lines.append("== per-stage wall time ==")
        for key in sorted(stage_keys):
            _base, labels = split_metric_key(key)
            lines.extend(
                _render_histogram(
                    f"stage {labels.get('stage', '?')}", timings[key], "s"
                )
            )
        lines.append("")

    histograms = snapshot.get("histograms", {})
    sim_keys = [k for k in histograms
                if split_metric_key(k)[0] == "stage.sim_seconds"]
    if sim_keys:
        lines.append("== per-stage simulated time ==")
        for key in sorted(sim_keys):
            _base, labels = split_metric_key(key)
            lines.extend(
                _render_histogram(
                    f"stage {labels.get('stage', '?')} (sim)",
                    histograms[key], "s",
                )
            )
        lines.append("")

    counters = snapshot.get("counters", {})
    table = _counter_table(counters, "campaign.queries", "tester", "engine")
    if table:
        lines.append("== queries per tester × engine ==")
        lines.extend(table)
        lines.append("")
    faults = _counter_table(counters, "campaign.faults", "tester", "engine")
    if faults:
        lines.append("== distinct faults per tester × engine ==")
        lines.extend(faults)
        lines.append("")

    if snapshot.get("counters") or timings or histograms:
        lines.append("== plans ==")
        lines.extend(_render_plans(counters))
        lines.append("")

    from repro.obs.profile import render_profile

    profile_lines = render_profile(snapshot)
    if profile_lines:
        lines.append("== profile ==")
        lines.extend(profile_lines)
        lines.append("")

    plain = {
        key: value
        for key, value in counters.items()
        if split_metric_key(key)[0] not in ("campaign.queries",
                                            "campaign.faults")
        and not split_metric_key(key)[0].startswith("plan.")
    }
    if plain:
        lines.append("== counters ==")
        for key in sorted(plain):
            lines.append(f"  {key:<44s} {plain[key]}")
        lines.append("")

    supervisor_lines = _render_supervisor(events)
    if supervisor_lines:
        lines.append("== supervisor ==")
        lines.extend(supervisor_lines)
        lines.append("")

    adaptation_lines = _render_adaptation(events)
    if adaptation_lines:
        lines.append("== adaptation ==")
        lines.extend(adaptation_lines)
        lines.append("")

    if not lines:
        return (
            "no metrics events in log "
            "(re-run with --metrics / observed() around the campaign)"
        )
    return "\n".join(lines).rstrip()


# ---------------------------------------------------------------------------
# repro trace
# ---------------------------------------------------------------------------


class _Agg:
    __slots__ = ("count", "perf", "sim", "children")

    def __init__(self) -> None:
        self.count = 0
        self.perf = 0.0
        self.sim = 0.0
        self.children: Dict[str, _Agg] = {}


def _aggregate_spans(spans: List[Event]) -> Dict[str, _Agg]:
    by_id = {span["id"]: span for span in spans}
    children: Dict[Optional[int], List[Event]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)

    roots: Dict[str, _Agg] = {}

    def visit(span: Event, bucket: Dict[str, _Agg]) -> None:
        agg = bucket.setdefault(span["name"], _Agg())
        agg.count += 1
        agg.perf += span.get("perf", 0.0)
        if span.get("sim1") is not None and span.get("sim0") is not None:
            agg.sim += span["sim1"] - span["sim0"]
        for child in children.get(span["id"], []):
            visit(child, agg.children)

    for span in sorted(children.get(None, []), key=lambda s: s["id"]):
        visit(span, roots)
    return roots


def render_trace(events: Iterable[Event]) -> str:
    """Render the span tree of an event log, aggregated by stage name.

    Spans are grouped per grid cell (``cell`` attribute) and, within a
    cell, merged by name at each tree depth — a campaign's thousands of
    ``judge`` spans render as one line with count and totals.
    """
    spans = [e for e in events if e.get("event") == "span"]
    if not spans:
        return (
            "no span events in log "
            "(re-run with --metrics / EventLog(record_spans=True))"
        )

    by_cell: Dict[str, List[Event]] = {}
    for span in spans:
        by_cell.setdefault(span.get("cell", "?"), []).append(span)

    lines: List[str] = []
    for cell in sorted(by_cell):
        lines.append(f"[{cell}]")

        def emit(bucket: Dict[str, _Agg], depth: int) -> None:
            for name, agg in bucket.items():
                label = "  " * depth + name
                line = (
                    f"  {label:<28s} {agg.count:6d}×  "
                    f"perf {_format_seconds(agg.perf):>9s}"
                )
                if agg.sim:
                    line += f"  sim {agg.sim:9.2f}s"
                lines.append(line)
                emit(agg.children, depth + 1)

        emit(_aggregate_spans(by_cell[cell]), 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# repro coverage
# ---------------------------------------------------------------------------


def coverage_snapshots_in(events: Iterable[Event]) -> List[Event]:
    """The ``coverage`` events of a stream, campaign-scoped ones preferred.

    Same double-counting rule as :func:`metrics_snapshots_in`: a grid log
    carries one per-cell snapshot per campaign plus a merged grid rollup;
    per-cell snapshots win when present.
    """
    all_cov = [e for e in events if e.get("event") == "coverage"]
    campaign_scoped = [e for e in all_cov if e.get("scope") == "campaign"]
    return campaign_scoped or all_cov


def _feature_family_rows(features: Dict[str, Any]) -> List[Tuple[str, int, int]]:
    """(family, distinct features, total occurrences) rows, sorted."""
    distinct: Dict[str, int] = {}
    occurrences: Dict[str, int] = {}
    for tag, (count, _first) in features.items():
        family = feature_kind(tag)
        distinct[family] = distinct.get(family, 0) + 1
        occurrences[family] = occurrences.get(family, 0) + count
    return [(family, distinct[family], occurrences[family])
            for family in sorted(distinct)]


def _render_curve(curve: List[Any], width: int = 48) -> List[str]:
    """The coverage-vs-queries curve as an ASCII bar series (downsampled)."""
    points = [(int(q), int(n)) for q, n in curve]
    if not points:
        return []
    if len(points) > 12:
        step = len(points) / 12.0
        picked = {int(i * step) for i in range(12)} | {len(points) - 1}
        points = [points[i] for i in sorted(picked)]
    peak = max(n for _q, n in points) or 1
    lines = []
    for queries, n_features in points:
        bar = "█" * max(1, round(width * n_features / peak))
        lines.append(f"  {queries:8d} q {n_features:6d} {bar}")
    return lines


def render_coverage(events: Iterable[Event]) -> str:
    """Per-tester feature-coverage tables + the coverage-vs-queries curve."""
    snapshots = coverage_snapshots_in(events)
    if not snapshots:
        return (
            "no coverage events in log "
            "(re-run with --coverage / CampaignKernel(record_coverage=True))"
        )

    by_tester: Dict[str, List[Dict[str, Any]]] = {}
    for event in snapshots:
        by_tester.setdefault(str(event.get("tester", "?")), []).append(
            event["snapshot"]
        )

    lines: List[str] = []
    for tester in sorted(by_tester):
        merged = merge_coverage_snapshots(by_tester[tester])
        lines.append(
            f"== {tester}: feature coverage "
            f"({len(merged['features'])} features / "
            f"{merged['queries']} queries) =="
        )
        lines.append(f"  {'family':<10s} {'distinct':>9s} {'occurrences':>12s}")
        for family, n_distinct, n_occ in _feature_family_rows(
            merged["features"]
        ):
            lines.append(f"  {family:<10s} {n_distinct:>9d} {n_occ:>12d}")
        lines.append("")

    overall = merge_coverage_snapshots(
        [event["snapshot"] for event in snapshots]
    )
    lines.append(
        f"== coverage over time ({len(overall['features'])} features / "
        f"{overall['queries']} queries) =="
    )
    lines.extend(_render_curve(overall.get("curve", [])))
    return "\n".join(lines).rstrip()


# ---------------------------------------------------------------------------
# repro bugs
# ---------------------------------------------------------------------------


def triage_snapshots_in(events: Iterable[Event]) -> List[Event]:
    """The ``triage`` events of a stream, campaign-scoped ones preferred."""
    all_triage = [e for e in events if e.get("event") == "triage"]
    campaign_scoped = [e for e in all_triage if e.get("scope") == "campaign"]
    return campaign_scoped or all_triage


def render_bugs(events: Iterable[Event]) -> str:
    """The distinct-bug table of an event log, one row per signature."""
    events = list(events)
    snapshots = triage_snapshots_in(events)
    if not snapshots:
        return (
            "no triage events in log "
            "(re-run with --triage / CampaignKernel(record_triage=True))"
        )
    merged = merge_triage_snapshots(
        [event["snapshot"] for event in snapshots]
    )
    bugs = merged["bugs"]
    lines = [
        f"{merged['distinct']} distinct bug(s), "
        f"{merged['occurrences']} occurrence(s)"
    ]
    if bugs:
        sig_width = max(max(len(sig) for sig in bugs), len("signature")) + 2
        lines.append(
            f"{'signature':<{sig_width}s} {'count':>6s} {'kind':>6s} "
            f"{'first seed':>10s} {'first query':>12s}  testers"
        )
        for sig in sorted(bugs):
            entry = bugs[sig]
            first = entry.get("first_seen", {})
            lines.append(
                f"{sig:<{sig_width}s} {entry.get('count', 0):>6d} "
                f"{str(entry.get('kind', '?')):>6s} "
                f"{str(first.get('seed', '-')):>10s} "
                f"{str(first.get('query', '-')):>12s}  "
                + ",".join(entry.get("testers", []))
            )
    bundles = [e for e in events if e.get("event") == "bundle"]
    if bundles:
        lines.append("")
        lines.append(f"{len(bundles)} repro bundle(s):")
        for event in sorted(bundles, key=lambda e: str(e.get("path", ""))):
            lines.append(
                f"  {event.get('path', '?')}  [{event.get('signature', '?')}]"
            )
            shrink = _reduction_note(event.get("path"))
            if shrink:
                lines.append(f"    {shrink}")
    return "\n".join(lines)


def _reduction_note(path: Optional[str]) -> Optional[str]:
    """Original vs. reduced sizes for a bundle whose ``*.min.json`` exists.

    Renders from the minimized bundle's embedded ``reduction`` stats; any
    missing or unreadable sibling (bundle moved, reduction never ran) just
    drops the note — ``repro bugs`` must keep working on bare logs.
    """
    if not path:
        return None
    import json
    from pathlib import Path

    source = Path(path)
    min_path = source.with_name(source.stem + ".min.json")
    try:
        stats = json.loads(min_path.read_text(encoding="utf-8"))["reduction"]
        before, after = stats["original"], stats["reduced"]
        return (
            f"reduced: nodes {before['nodes']}->{after['nodes']}, "
            f"rels {before['relationships']}->{after['relationships']}, "
            f"query {before['query_bytes']}B->{after['query_bytes']}B "
            f"({min_path.name})"
        )
    except (OSError, KeyError, ValueError):
        return None
