"""The campaign event stream.

Every campaign run through :class:`repro.runtime.CampaignKernel` narrates
itself as a sequence of plain-dict events (campaign started, graph loaded,
query issued, fault detected, crash, cell checkpoint).  Events serve two
purposes:

* **observability** — a grid run can be tailed live from its JSONL log;
* **checkpoint/resume** — :class:`repro.runtime.ParallelCampaignRunner`
  appends a ``cell_complete`` event (carrying the full serialized
  :class:`~repro.runtime.results.CampaignResult`) after every finished grid
  cell, so an interrupted grid resumes from the last completed cell via
  :func:`repro.core.reporting.completed_cells_from_events`;
* **profiling** — with observability enabled (:mod:`repro.obs`), campaigns
  additionally append ``span`` events (the trace tree) and ``metrics``
  events (instrument snapshots); ``repro stats`` / ``repro trace`` turn any
  such log into a profile;
* **evaluation** — the second observability tier appends ``coverage``
  events (query-feature coverage snapshots, rendered by ``repro
  coverage``), ``triage`` events (distinct-bug signature snapshots,
  ``repro bugs``) and ``bundle`` events (one per flight-recorder repro
  bundle written).  Resume tolerates every kind — unknown events are
  carried, never choked on.

The JSONL (de)serialization itself lives in :mod:`repro.core.reporting`
alongside the campaign persistence format; this module only owns the
in-memory log and its write-through policy.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = ["EventLog"]

Event = Dict[str, Any]


class EventLog:
    """An append-only event sink, optionally written through to JSONL.

    Events are buffered in memory (grid workers return them to the parent
    process) and, when *path* is given, appended to the file one JSON line
    per event, flushed immediately — so a killed run leaves a usable log.

    ``query`` events are high-volume (one per test query) and are dropped
    unless ``record_queries`` is set; likewise ``span`` events (several per
    test query, produced by the :mod:`repro.obs` tracer) require
    ``record_spans``.  Everything else — including the per-campaign
    ``metrics`` snapshots — is always kept.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        record_queries: bool = False,
        record_spans: bool = False,
        append: bool = True,
    ):
        self.path = Path(path) if path is not None else None
        self.record_queries = record_queries
        self.record_spans = record_spans
        self._append = append
        self._events: List[Event] = []
        self._handle: Optional[TextIO] = None

    # -- emission ---------------------------------------------------------

    def emit(self, kind: str, /, **payload: Any) -> Optional[Event]:
        """Record one event; returns it (or None when filtered out)."""
        if kind == "query" and not self.record_queries:
            return None
        if kind == "span" and not self.record_spans:
            return None
        event: Event = {"event": kind, **payload}
        self._events.append(event)
        if self.path is not None:
            from repro.core.reporting import event_to_json_line

            if self._handle is None:
                mode = "a" if self._append else "w"
                self._handle = self.path.open(mode, encoding="utf-8")
            self._handle.write(event_to_json_line(event) + "\n")
            self._handle.flush()
        return event

    def extend(self, events: List[Event]) -> None:
        """Re-emit *events* (e.g. forwarded from a worker process)."""
        for event in events:
            self.emit(event["event"], **{k: v for k, v in event.items()
                                         if k != "event"})

    # -- access -----------------------------------------------------------

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self._events if event["event"] == kind]

    def sync(self) -> None:
        """Durability barrier: flush and ``fsync`` the backing file.

        The campaign service calls this at cell-completion boundaries so a
        ``kill -9`` of the scheduler can never lose a checkpointed result —
        anything acknowledged before :meth:`sync` returned survives the
        crash; at most the torn tail of a later, unsynced line is lost (and
        skipped by :func:`repro.core.reporting.load_event_stream`).
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._events)
