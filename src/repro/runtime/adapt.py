"""Coverage-guided adaptive synthesis: the greybox campaign feedback loop.

PR 3 built per-query feature vectors (:func:`repro.obs.coverage.
query_feature_tags`) and triage signatures, but synthesis stayed blind
random.  This module closes the loop, in the spirit of greybox fuzzing and
the graph-aware-fuzzing direction (PAPERS.md): the kernel feeds each judged
query's feature tags and *signature novelty* back into an
:class:`AdaptiveSchedule`, which runs a multi-armed bandit over *feature
arms* — families of synthesis knobs (clause families, nesting depth, list
shapes, pattern sizes) each tied to the feature tags they are expected to
express.  Before every graph round the schedule selects a few arms
(explore/exploit: epsilon-decay greedy or UCB1) and composes their
:class:`WeightProfile` overrides, which the tester applies to its
``SynthesizerConfig``/``GeneratorConfig`` for that round.

Determinism contract (the same one the whole runtime keeps):

* The schedule's randomness comes from its **own** :class:`random.Random`,
  seeded via SHA-256 from the cell seed (:func:`derive_policy_seed`) —
  never from the campaign RNG.  The campaign RNG stream is therefore
  byte-identical with adaptation on or off; adaptation changes *configs*,
  not draws.
* Arm selection breaks every tie by lowest arm index, so trajectories are
  reproducible across platforms and ``--jobs`` counts.
* A blind :class:`repro.runtime.protocol.SessionPolicy` returns no weights
  and observes nothing, so non-adaptive campaigns are byte-identical to
  the pre-adaptation kernel.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.runtime.protocol import SessionPolicy

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "AdaptivePolicy",
    "AdaptiveSchedule",
    "FeatureArm",
    "WeightProfile",
    "attach_adaptive_policy",
    "default_arms",
    "derive_policy_seed",
    "merge_adaptation_snapshots",
]

#: Supported explore/exploit strategies for ``--adaptive[=STRATEGY]``.
ADAPTIVE_STRATEGIES: Tuple[str, ...] = ("epsilon", "ucb")

#: Probability-style knobs are clamped here after scaling so a boosted
#: clause family never becomes mandatory (which would collapse diversity).
_PROBABILITY_CAP = 0.95


def derive_policy_seed(seed: int) -> int:
    """Policy RNG seed, decorrelated from (but determined by) the cell seed.

    SHA-256 with a domain tag, mirroring :func:`repro.runtime.parallel.
    derive_cell_seed`: never Python's salted ``hash``, never the campaign
    RNG itself.
    """
    digest = hashlib.sha256(f"adapt|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class WeightProfile:
    """First-class weight overrides for synthesis and graph generation.

    A profile is a small declarative delta: multiplicative ``scales`` for
    probability-style float knobs (clamped to ``0.95``), additive ``bumps``
    for integer knobs, and ``graph_bumps`` applied to the graph
    :class:`~repro.graph.generator.GeneratorConfig` rather than the
    synthesizer config.  Profiles are frozen and stored as sorted tuples so
    they hash, compare, and serialize deterministically.

    Application is duck-typed ``dataclasses.replace`` over whichever config
    object is passed in — unknown attribute names are a programming error
    and raise, so arms cannot silently rot when a knob is renamed.
    """

    scales: Tuple[Tuple[str, float], ...] = ()
    bumps: Tuple[Tuple[str, int], ...] = ()
    graph_bumps: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def build(
        cls,
        scales: Optional[Dict[str, float]] = None,
        bumps: Optional[Dict[str, int]] = None,
        graph_bumps: Optional[Dict[str, int]] = None,
    ) -> "WeightProfile":
        return cls(
            scales=tuple(sorted((scales or {}).items())),
            bumps=tuple(sorted((bumps or {}).items())),
            graph_bumps=tuple(sorted((graph_bumps or {}).items())),
        )

    @classmethod
    def merge(cls, profiles: Sequence["WeightProfile"]) -> "WeightProfile":
        """Compose profiles: scales multiply, bumps add."""
        scales: Dict[str, float] = {}
        bumps: Dict[str, int] = {}
        graph_bumps: Dict[str, int] = {}
        for profile in profiles:
            for name, factor in profile.scales:
                scales[name] = scales.get(name, 1.0) * factor
            for name, delta in profile.bumps:
                bumps[name] = bumps.get(name, 0) + delta
            for name, delta in profile.graph_bumps:
                graph_bumps[name] = graph_bumps.get(name, 0) + delta
        return cls.build(scales, bumps, graph_bumps)

    def _apply(self, config: Any, entries: Sequence[Tuple[str, Any]],
               multiplicative: bool) -> Any:
        updates: Dict[str, Any] = {}
        for name, value in entries:
            current = getattr(config, name)  # raises on renamed knobs
            if multiplicative:
                updates[name] = min(_PROBABILITY_CAP, current * value)
            else:
                updates[name] = current + value
        return replace(config, **updates) if updates else config

    def apply_synthesizer(self, config: Any) -> Any:
        """A new synthesizer config with this profile's overrides applied."""
        config = self._apply(config, self.scales, multiplicative=True)
        return self._apply(config, self.bumps, multiplicative=False)

    def apply_generator(self, config: Any) -> Any:
        """A new graph generator config with ``graph_bumps`` applied."""
        return self._apply(config, self.graph_bumps, multiplicative=False)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe form (sorted keys) for events and snapshots."""
        return {
            "bumps": {name: delta for name, delta in self.bumps},
            "graph_bumps": {name: delta for name, delta in self.graph_bumps},
            "scales": {name: factor for name, factor in self.scales},
        }

    def __bool__(self) -> bool:
        return bool(self.scales or self.bumps or self.graph_bumps)


@dataclass(frozen=True)
class FeatureArm:
    """One bandit arm: a weight profile tied to the feature tags it buys.

    ``tags`` is an any-of match set against a query's feature tags; a
    judged query *expresses* the arm when they intersect, and rewards the
    arm when it also produced a never-seen triage signature.
    """

    name: str
    tags: FrozenSet[str]
    profile: WeightProfile

    @classmethod
    def build(
        cls,
        name: str,
        tags: Sequence[str],
        scales: Optional[Dict[str, float]] = None,
        bumps: Optional[Dict[str, int]] = None,
        graph_bumps: Optional[Dict[str, int]] = None,
    ) -> "FeatureArm":
        return cls(
            name=name,
            tags=frozenset(tags),
            profile=WeightProfile.build(scales, bumps, graph_bumps),
        )


def default_arms(stateful: bool = False) -> Tuple[FeatureArm, ...]:
    """The standard arm set, one per steerable synthesis feature family.

    Each arm boosts the :class:`~repro.core.synthesizer.SynthesizerConfig`
    (or graph :class:`~repro.graph.generator.GeneratorConfig`) knobs that
    make its tag family more frequent.  The families mirror the clause /
    shape / depth dimensions of :func:`repro.obs.coverage.
    query_feature_tags`, which in turn span the trigger predicates of the
    simulated fault catalogs.

    With ``stateful=True`` the set is extended with one arm per write
    statement family (lowercase ``clause:create`` … tags, scaling the
    ``stateful_*_weight`` knobs the state-aware synthesizer draws from) —
    only the stateful tester has those knobs expressed in its proposals,
    so read-only campaigns keep the original arm set byte-for-byte.
    """
    write_arms = (
        FeatureArm.build(
            "write-create", ["clause:create"],
            scales={"stateful_create_weight": 2.0},
        ),
        FeatureArm.build(
            "write-merge", ["clause:merge"],
            scales={"stateful_merge_weight": 2.5},
        ),
        FeatureArm.build(
            "write-set", ["clause:set"],
            scales={"stateful_set_weight": 2.5},
        ),
        FeatureArm.build(
            "write-delete", ["clause:delete"],
            scales={"stateful_delete_weight": 2.5},
        ),
        FeatureArm.build(
            "write-remove", ["clause:remove"],
            scales={"stateful_remove_weight": 3.0},
        ),
    ) if stateful else ()
    return (
        FeatureArm.build(
            "optional-match", ["clause:OPTIONAL MATCH"],
            scales={"optional_match_probability": 3.2},
        ),
        FeatureArm.build(
            "procedure-call", ["clause:CALL"],
            scales={"call_probability": 4.0},
        ),
        FeatureArm.build(
            "union", ["clause:UNION"],
            scales={"union_probability": 6.0},
        ),
        FeatureArm.build(
            "distinct", ["clause:DISTINCT"],
            scales={"distinct_probability": 3.0},
        ),
        FeatureArm.build(
            "order-by", ["clause:ORDER BY"],
            scales={"order_by_probability": 2.4},
        ),
        FeatureArm.build(
            "limit", ["clause:LIMIT", "clause:SKIP"],
            scales={"limit_probability": 3.5},
        ),
        FeatureArm.build(
            "where", ["clause:WHERE"],
            scales={"where_with_probability": 1.7},
        ),
        FeatureArm.build(
            "deep-nesting", ["depth:4", "depth:5+"],
            bumps={"expression_depth": 3},
        ),
        FeatureArm.build(
            "list-expansion", ["clause:UNWIND", "clause:WITH"],
            bumps={"extra_lists": 2, "max_list_length": 2},
        ),
        FeatureArm.build(
            "aggregation",
            ["function:count", "function:collect", "operator:count(*)"],
            scales={"count_star_alias_probability": 3.0},
        ),
        FeatureArm.build(
            "long-pattern",
            ["shape:path-3+", "shape:undirected-rel",
             "shape:multi-label-node"],
            bumps={"extra_elements": 3},
            graph_bumps={"max_nodes": 4, "max_relationships": 20},
        ),
    ) + write_arms


@dataclass
class _ArmState:
    """Mutable per-campaign bandit statistics for one arm."""

    selected: int = 0   # rounds this arm's profile was active
    pulls: int = 0      # judged queries that expressed the arm's tags
    reward: int = 0     # of those, how many yielded a novel signature


class AdaptiveSchedule:
    """Deterministic explore/exploit schedule over feature arms.

    ``epsilon``: epsilon-decay greedy — with probability ``epsilon *
    decay**round`` a slot explores (uniform over remaining arms, policy
    RNG), otherwise it exploits the arm with the best Laplace-smoothed
    novelty rate ``(reward + 1) / (pulls + 2)``.  The +1/+2 prior scores
    never-expressed arms above well-tried mediocre ones, so uncovered
    feature families are probed first.

    ``ucb``: UCB1 — ``reward/pulls + c * sqrt(ln(total) / pulls)`` with
    unexpressed arms ranked infinitely urgent.  Draws no randomness at all.

    Both strategies pick ``arms_per_round`` arms each round and break all
    ties by lowest arm index.
    """

    def __init__(
        self,
        strategy: str = "epsilon",
        arms: Optional[Sequence[FeatureArm]] = None,
        *,
        arms_per_round: int = 3,
        epsilon: float = 0.45,
        epsilon_decay: float = 0.985,
        ucb_exploration: float = 1.2,
    ):
        if strategy not in ADAPTIVE_STRATEGIES:
            raise ValueError(
                f"unknown adaptive strategy {strategy!r}; "
                f"expected one of {ADAPTIVE_STRATEGIES}"
            )
        self.strategy = strategy
        self.arms: Tuple[FeatureArm, ...] = tuple(
            arms if arms is not None else default_arms()
        )
        self.arms_per_round = max(1, min(arms_per_round, len(self.arms)))
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.ucb_exploration = ucb_exploration
        self.begin(0)

    def begin(self, seed: int) -> None:
        """Reset all bandit state; reseed the policy RNG from *seed*."""
        self._rng = random.Random(derive_policy_seed(seed))
        self.rounds = 0
        self.observed = 0
        self.novel = 0
        self.states = [_ArmState() for _ in self.arms]
        self.history: List[List[str]] = []

    # -- selection ---------------------------------------------------------

    def _laplace(self, index: int) -> float:
        state = self.states[index]
        return (state.reward + 1.0) / (state.pulls + 2.0)

    def _select_epsilon(self) -> List[int]:
        eps = self.epsilon * (self.epsilon_decay ** (self.rounds - 1))
        remaining = list(range(len(self.arms)))
        chosen: List[int] = []
        for _ in range(self.arms_per_round):
            if self._rng.random() < eps:
                pick = remaining.pop(self._rng.randrange(len(remaining)))
            else:
                # max() keeps the first (lowest-index) best — deterministic.
                pick = max(remaining, key=lambda i: (self._laplace(i), -i))
                remaining.remove(pick)
            chosen.append(pick)
        return chosen

    def _select_ucb(self) -> List[int]:
        total = sum(state.pulls for state in self.states)
        log_total = math.log(total + 1.0)

        def urgency(index: int) -> float:
            state = self.states[index]
            if state.pulls == 0:
                return math.inf
            mean = state.reward / state.pulls
            return mean + self.ucb_exploration * math.sqrt(
                log_total / state.pulls
            )

        ranked = sorted(
            range(len(self.arms)), key=lambda i: (-urgency(i), i)
        )
        return ranked[: self.arms_per_round]

    def next_weights(self) -> WeightProfile:
        """Select this round's arms and compose their weight profile."""
        self.rounds += 1
        if self.strategy == "epsilon":
            chosen = self._select_epsilon()
        else:
            chosen = self._select_ucb()
        for index in chosen:
            self.states[index].selected += 1
        self.history.append([self.arms[index].name for index in chosen])
        return WeightProfile.merge(
            [self.arms[index].profile for index in chosen]
        )

    # -- feedback ----------------------------------------------------------

    def observe(self, tags: Sequence[str], *, novel: bool = False) -> None:
        """Credit every arm whose tag family this judged query expressed."""
        self.observed += 1
        if novel:
            self.novel += 1
        tagset = set(tags)
        for index, arm in enumerate(self.arms):
            if arm.tags & tagset:
                state = self.states[index]
                state.pulls += 1
                if novel:
                    state.reward += 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe adaptation counters plus the selection trajectory."""
        return {
            "arms": {
                arm.name: {
                    "pulls": state.pulls,
                    "reward": state.reward,
                    "selected": state.selected,
                }
                for arm, state in zip(self.arms, self.states)
            },
            "history": [list(round_) for round_ in self.history],
            "novel": self.novel,
            "observed": self.observed,
            "rounds": self.rounds,
            "strategy": self.strategy,
        }


class AdaptivePolicy(SessionPolicy):
    """A :class:`SessionPolicy` that steers synthesis via a bandit schedule.

    Wraps an :class:`AdaptiveSchedule` behind the policy feedback hooks;
    the restart decision is inherited unchanged from the blind policy.
    """

    adaptive = True

    def __init__(
        self,
        strategy: str = "epsilon",
        *,
        restart_per_graph: bool = False,
        schedule: Optional[AdaptiveSchedule] = None,
    ):
        super().__init__(restart_per_graph=restart_per_graph)
        self.schedule = (
            schedule if schedule is not None
            else AdaptiveSchedule(strategy)
        )
        self.strategy = self.schedule.strategy

    def begin(self, seed: int) -> None:
        self.schedule.begin(seed)

    def next_weights(self) -> WeightProfile:
        return self.schedule.next_weights()

    def observe(
        self,
        proposal: Any,
        judgement: Any,
        tags: List[str],
        *,
        novel: bool = False,
        signature: Optional[str] = None,
    ) -> None:
        self.schedule.observe(tags, novel=novel)

    def snapshot(self) -> Dict[str, Any]:
        return self.schedule.snapshot()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(strategy={self.strategy!r}, "
            f"restart_per_graph={self.restart_per_graph})"
        )

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return (
            self.restart_per_graph == other.restart_per_graph
            and self.strategy == other.strategy
        )

    def __hash__(self) -> int:
        return hash((type(self), self.restart_per_graph, self.strategy))


def attach_adaptive_policy(
    tester: Any, strategy: str = "epsilon"
) -> AdaptivePolicy:
    """Swap *tester*'s session policy for an adaptive one, preserving its
    declared restart behavior.  Returns the new policy.

    A state-aware tester (one exposing a ``stateful_ratio``) gets the
    extended arm set with the write-family arms; read-only testers keep
    the original arms, so their adaptive trajectories are unchanged.
    """
    stateful = getattr(tester, "stateful_ratio", None) is not None
    schedule = AdaptiveSchedule(strategy, arms=default_arms(stateful=stateful))
    policy = AdaptivePolicy(
        strategy,
        restart_per_graph=tester.session.restart_per_graph,
        schedule=schedule,
    )
    tester.session = policy
    return policy


def merge_adaptation_snapshots(
    snapshots: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold per-cell adaptation snapshots into one grid-level summary.

    Cells are folded in sorted (tester, engine, seed) order so the merge is
    byte-identical regardless of completion order — same contract as the
    coverage and triage barriers.  Per-cell snapshots carry their cell
    identity under ``tester``/``engine``/``seed`` (added by the kernel's
    ``adaptation`` event envelope and re-attached by the barrier).
    """
    merged: Dict[str, Any] = {
        "arms": {},
        "cells": 0,
        "novel": 0,
        "observed": 0,
        "rounds": 0,
        "strategies": [],
    }
    strategies = set()

    def cell_key(snap: Dict[str, Any]) -> Tuple[str, str, int]:
        return (
            str(snap.get("tester", "")),
            str(snap.get("engine", "")),
            int(snap.get("seed", 0)),
        )

    for snap in sorted(snapshots, key=cell_key):
        merged["cells"] += 1
        merged["novel"] += int(snap.get("novel", 0))
        merged["observed"] += int(snap.get("observed", 0))
        merged["rounds"] += int(snap.get("rounds", 0))
        strategies.add(str(snap.get("strategy", "")))
        for name, counters in snap.get("arms", {}).items():
            into = merged["arms"].setdefault(
                name, {"pulls": 0, "reward": 0, "selected": 0}
            )
            for key in ("pulls", "reward", "selected"):
                into[key] += int(counters.get(key, 0))
    merged["arms"] = {
        name: merged["arms"][name] for name in sorted(merged["arms"])
    }
    merged["strategies"] = sorted(s for s in strategies if s)
    return merged
