"""Parallel (tester × engine × seed) campaign fan-out.

The paper's evaluation grid (6 testers × 4 engines × seeds; Table 6,
Figure 18) is embarrassingly parallel: every cell is an independent
campaign with its own engine instance and its own deterministic RNG.  This
module fans the grid out over a ``multiprocessing`` pool:

* **Determinism** — each cell's seed is fixed *in the cell spec*, before
  any work is scheduled, and cells are merged back in grid order, so the
  result is byte-identical for ``jobs=1`` and ``jobs=8``.  Replicate seeds
  are derived with :func:`derive_cell_seed` (SHA-256 over the cell
  identity — never Python's salted ``hash``), stable across worker counts,
  platforms and runs.
* **Worker safety** — workers receive only primitives (names and numbers)
  and rebuild the engine/tester inside the child via
  :class:`repro.gdb.engines.EngineSpec`, so nothing unpicklable crosses the
  process boundary.
* **Checkpoint/resume** — as each cell completes, its events and a
  ``cell_complete`` checkpoint (the full serialized campaign) are appended
  to the JSONL event log; an interrupted grid re-run with
  ``resume_path=...`` skips every cell already on record.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.runtime.events import EventLog
from repro.runtime.results import CampaignResult

__all__ = [
    "CampaignCell",
    "CellKey",
    "ParallelCampaignRunner",
    "derive_cell_seed",
]

CellKey = Tuple[str, str, int]


def derive_cell_seed(tester: str, engine: str, seed: int) -> int:
    """Deterministic per-cell seed, stable across worker counts and runs.

    Distinct grid cells sharing one base seed must not replay the same
    random trajectory against different targets; hashing the full cell
    identity decorrelates them while staying reproducible (SHA-256, not the
    per-process-salted ``hash``).
    """
    digest = hashlib.sha256(f"{tester}|{engine}|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class CampaignCell:
    """One (tester, engine, seed) cell of a campaign grid."""

    tester: str
    engine: str
    seed: int
    budget_seconds: float
    gate_scale: float = 1.0
    max_queries: Optional[int] = None

    @property
    def key(self) -> CellKey:
        return (self.tester, self.engine, self.seed)


def _run_cell(spec: Tuple) -> Tuple[Dict, List[Dict]]:
    """Worker entry point: run one grid cell, return (campaign, events).

    Imports are local so the module stays import-cycle-free (the runtime
    layer must not statically depend on the experiment harness) and so
    ``spawn``-based pools re-import only what they need.

    With ``record_metrics`` the cell runs under a *fresh* per-cell
    observability scope (:func:`repro.obs.observed`), so each cell's
    ``metrics`` event snapshot covers exactly that cell no matter how the
    pool reuses worker processes — the invariant the deterministic barrier
    merge depends on.
    """
    (tester_name, engine_name, seed, budget_seconds, gate_scale,
     max_queries, record_queries, record_metrics,
     record_coverage, record_triage, bundle_dir, reduce_bundles) = spec
    from repro.core.reporting import campaign_to_dict
    from repro.experiments.campaign import make_tester
    from repro.gdb.engines import EngineSpec
    from repro.runtime.kernel import CampaignKernel

    engine = EngineSpec(engine_name, gate_scale=gate_scale).create()
    tester = make_tester(tester_name, engine_name, gate_scale=gate_scale)
    log = EventLog(record_queries=record_queries,
                   record_spans=record_metrics)

    recorder = None
    if bundle_dir is not None:
        # Bundle filenames embed the cell identity, so workers sharing one
        # directory never contend for a file.
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(bundle_dir, auto_reduce=reduce_bundles)

    def run() -> "CampaignResult":
        return CampaignKernel(
            events=log,
            record_coverage=record_coverage,
            record_triage=record_triage,
            recorder=recorder,
        ).run(
            tester,
            engine,
            budget_seconds,
            seed=seed,
            max_queries=max_queries,
        )

    if record_metrics:
        from repro.obs import observed

        with observed():
            result = run()
    else:
        result = run()
    return campaign_to_dict(result), log.events


class ParallelCampaignRunner:
    """Fan a list of campaign cells out over a process pool and merge back.

    ``jobs=1`` runs inline (no pool), which doubles as the determinism
    reference for the parallel path.
    """

    def __init__(
        self,
        jobs: int = 1,
        events_path: Optional[Union[str, Path]] = None,
        record_queries: bool = False,
        record_metrics: bool = False,
        record_coverage: bool = False,
        record_triage: bool = False,
        bundle_dir: Optional[Union[str, Path]] = None,
        reduce_bundles: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.events_path = Path(events_path) if events_path else None
        self.record_queries = record_queries
        self.record_metrics = record_metrics
        self.record_coverage = record_coverage
        self.record_triage = record_triage
        self.bundle_dir = Path(bundle_dir) if bundle_dir else None
        self.reduce_bundles = reduce_bundles

    def run(
        self,
        cells: Sequence[CampaignCell],
        resume_path: Optional[Union[str, Path]] = None,
    ) -> Dict[CellKey, CampaignResult]:
        """Run every cell; returns results keyed and ordered by the grid.

        With *resume_path*, cells checkpointed in that event log are not
        re-run; their stored results are merged in as-is.
        """
        cells = list(cells)
        if len({cell.key for cell in cells}) != len(cells):
            raise ValueError("duplicate (tester, engine, seed) cells in grid")

        done: Dict[CellKey, CampaignResult] = {}
        # Per-campaign observability snapshots by kind, fresh and resumed
        # alike, feeding the grid-scope barrier merges below.
        snapshots: Dict[str, List[Dict]] = {
            "metrics": [], "coverage": [], "triage": [],
        }
        if resume_path is not None and Path(resume_path).exists():
            from repro.core.reporting import (
                completed_cells_from_events,
                load_event_stream,
            )

            wanted = {cell.key for cell in cells}
            resume_events = load_event_stream(resume_path)
            recorded = completed_cells_from_events(resume_events)
            done = {key: recorded[key] for key in recorded if key in wanted}
            # Observability snapshots of already-checkpointed cells still
            # count toward the merged grid snapshots.
            for event in resume_events:
                kind = event.get("event")
                if (kind in snapshots
                        and event.get("scope") == "campaign"
                        and (event.get("tester"), event.get("engine"),
                             event.get("seed")) in done):
                    snapshots[kind].append(event["snapshot"])

        pending = [cell for cell in cells if cell.key not in done]
        with EventLog(self.events_path,
                      record_spans=self.record_metrics) as log:
            log.emit(
                "grid_start",
                cells=len(cells),
                resumed=len(done),
                pending=len(pending),
                jobs=self.jobs,
            )
            for cell, (campaign, events) in zip(
                pending, self._execute(pending)
            ):
                log.extend(events)
                for event in events:
                    kind = event.get("event")
                    if (kind in snapshots
                            and event.get("scope") == "campaign"):
                        snapshots[kind].append(event["snapshot"])
                from repro.core.reporting import campaign_from_dict

                done[cell.key] = campaign_from_dict(campaign)
                log.emit(
                    "cell_complete",
                    tester=cell.tester,
                    engine=cell.engine,
                    seed=cell.seed,
                    campaign=campaign,
                )
            if self.record_metrics and snapshots["metrics"]:
                # Barrier merge: per-worker snapshots fold element-wise
                # (fixed bucket edges), so the result is independent of
                # worker count and completion order.
                from repro.obs import merge_snapshots

                log.emit(
                    "metrics",
                    scope="grid",
                    cells=len(snapshots["metrics"]),
                    snapshot=merge_snapshots(snapshots["metrics"]),
                )
            if snapshots["coverage"]:
                # Coverage/triage merges fold cells in sorted (tester,
                # engine, seed) order internally — same invariant.
                from repro.obs import merge_coverage_snapshots

                log.emit(
                    "coverage",
                    scope="grid",
                    cells=len(snapshots["coverage"]),
                    snapshot=merge_coverage_snapshots(snapshots["coverage"]),
                )
            if snapshots["triage"]:
                from repro.obs import merge_triage_snapshots

                log.emit(
                    "triage",
                    scope="grid",
                    cells=len(snapshots["triage"]),
                    snapshot=merge_triage_snapshots(snapshots["triage"]),
                )
            log.emit("grid_end", cells=len(cells))
        return {cell.key: done[cell.key] for cell in cells}

    # -- execution strategies --------------------------------------------

    def _specs(self, cells: Sequence[CampaignCell]) -> List[Tuple]:
        return [
            (cell.tester, cell.engine, cell.seed, cell.budget_seconds,
             cell.gate_scale, cell.max_queries, self.record_queries,
             self.record_metrics, self.record_coverage, self.record_triage,
             str(self.bundle_dir) if self.bundle_dir else None,
             self.reduce_bundles)
            for cell in cells
        ]

    def _execute(
        self, cells: Sequence[CampaignCell]
    ) -> Iterable[Tuple[Dict, List[Dict]]]:
        specs = self._specs(cells)
        if self.jobs == 1 or len(cells) <= 1:
            for spec in specs:
                yield _run_cell(spec)
            return
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with context.Pool(processes=min(self.jobs, len(cells))) as pool:
            # imap preserves grid order while letting finished cells be
            # checkpointed as soon as every earlier cell is done.
            yield from pool.imap(_run_cell, specs)
