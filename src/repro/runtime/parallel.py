"""Parallel (tester × engine × seed) campaign fan-out.

The paper's evaluation grid (6 testers × 4 engines × seeds; Table 6,
Figure 18) is embarrassingly parallel: every cell is an independent
campaign with its own engine instance and its own deterministic RNG.  This
module fans the grid out over a ``multiprocessing`` pool, supervised by
:class:`repro.runtime.supervisor.CellSupervisor`:

* **Determinism** — each cell's seed is fixed *in the cell spec*, before
  any work is scheduled, and results are merged back keyed by cell in grid
  order, so the returned dict and every barrier merge are byte-identical
  for ``jobs=1`` and ``jobs=8``.  Replicate seeds are derived with
  :func:`derive_cell_seed` (SHA-256 over the cell identity — never
  Python's salted ``hash``), stable across worker counts, platforms and
  runs.
* **Worker safety** — workers receive only primitives (names and numbers)
  and rebuild the engine/tester inside the child via
  :class:`repro.gdb.engines.EngineSpec`, so nothing unpicklable crosses the
  process boundary.
* **Robustness** — the supervisor sandboxes every cell: worker exceptions
  become ``cell_failed`` events, hangs are cut by the ``cell_timeout``
  watchdog, failed cells are retried (``cell_retries``) with deterministic
  backoff and finally **quarantined** so the grid completes with explicit
  holes (``cell_quarantined`` events, absent keys in the returned dict).
* **Checkpoint/resume** — ``cell_complete`` checkpoints (the full
  serialized campaign) are appended to the JSONL event log in **completion
  order** — an interrupt after N finished cells always resumes N cells, no
  matter where they sat in the grid.  A grid re-run with
  ``resume_path=...`` skips every cell already on record.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.runtime.events import EventLog
from repro.runtime.results import CampaignResult
from repro.runtime.supervisor import (
    CellFailure,
    CellOutcome,
    CellSupervisor,
    ChaosConfig,
)

__all__ = [
    "CampaignCell",
    "CellKey",
    "ParallelCampaignRunner",
    "derive_cell_seed",
]

CellKey = Tuple[str, str, int]

#: Snapshot-carrying event kinds merged at the grid barrier.
_SNAPSHOT_KINDS = ("metrics", "coverage", "triage", "adaptation")


def derive_cell_seed(tester: str, engine: str, seed: int) -> int:
    """Deterministic per-cell seed, stable across worker counts and runs.

    Distinct grid cells sharing one base seed must not replay the same
    random trajectory against different targets; hashing the full cell
    identity decorrelates them while staying reproducible (SHA-256, not the
    per-process-salted ``hash``).
    """
    digest = hashlib.sha256(f"{tester}|{engine}|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class CampaignCell:
    """One (tester, engine, seed) cell of a campaign grid."""

    tester: str
    engine: str
    seed: int
    budget_seconds: float
    gate_scale: float = 1.0
    max_queries: Optional[int] = None
    execution_mode: str = "interpreted"
    # Adaptive-synthesis strategy for this cell (None = blind campaign).
    adaptive: Optional[str] = None
    # Stateful write-workload ratio (None = read-only synthesis; a float
    # selects the state-aware tester, repro.synth.state).
    stateful: Optional[float] = None

    @property
    def key(self) -> CellKey:
        return (self.tester, self.engine, self.seed)


def _run_cell(spec: Dict[str, Any]) -> Tuple[Dict, List[Dict]]:
    """Worker entry point: run one grid cell, return (campaign, events).

    *spec* is a primitives-only dict (see ``ParallelCampaignRunner._task``)
    so it crosses process boundaries under any start method.  Imports are
    local so the module stays import-cycle-free (the runtime layer must not
    statically depend on the experiment harness) and so ``spawn``-based
    pools re-import only what they need.

    With ``record_metrics`` the cell runs under a *fresh* per-cell
    observability scope (:func:`repro.obs.observed`), so each cell's
    ``metrics`` event snapshot covers exactly that cell no matter how the
    pool reuses worker processes — the invariant the deterministic barrier
    merge depends on.
    """
    from repro.core.reporting import campaign_to_dict
    from repro.experiments.campaign import make_tester
    from repro.gdb.engines import EngineSpec
    from repro.runtime.kernel import CampaignKernel

    engine_name = spec["engine"]
    gate_scale = spec["gate_scale"]
    engine = EngineSpec(
        engine_name,
        gate_scale=gate_scale,
        execution_mode=spec.get("execution_mode", "interpreted"),
    ).create()
    tester = make_tester(spec["tester"], engine_name,
                         gate_scale=gate_scale,
                         stateful=spec.get("stateful"))
    if spec.get("adaptive"):
        from repro.runtime.adapt import attach_adaptive_policy

        attach_adaptive_policy(tester, spec["adaptive"])
    log = EventLog(record_queries=spec["record_queries"],
                   record_spans=spec["record_metrics"])

    recorder = None
    if spec.get("bundle_dir") is not None:
        # Bundle filenames embed the cell identity, so workers sharing one
        # directory never contend for a file.
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(spec["bundle_dir"],
                                  auto_reduce=spec["reduce_bundles"])

    def run() -> "CampaignResult":
        return CampaignKernel(
            events=log,
            record_coverage=spec["record_coverage"],
            record_triage=spec["record_triage"],
            recorder=recorder,
            step_budget=spec.get("step_budget"),
        ).run(
            tester,
            engine,
            spec["budget_seconds"],
            seed=spec["seed"],
            max_queries=spec["max_queries"],
        )

    if spec["record_metrics"]:
        from repro.obs import observed

        with observed():
            result = run()
    else:
        result = run()
    return campaign_to_dict(result), log.events


class ParallelCampaignRunner:
    """Fan a list of campaign cells out over a process pool and merge back.

    ``jobs=1`` runs inline (no pool), which doubles as the determinism
    reference for the parallel path.  ``cell_timeout``/``chaos`` switch
    the supervisor to one-process-per-attempt slots so hangs and hard
    crashes can be contained (see :mod:`repro.runtime.supervisor`).
    """

    def __init__(
        self,
        jobs: int = 1,
        events_path: Optional[Union[str, Path]] = None,
        record_queries: bool = False,
        record_metrics: bool = False,
        record_coverage: bool = False,
        record_triage: bool = False,
        bundle_dir: Optional[Union[str, Path]] = None,
        reduce_bundles: bool = False,
        cell_timeout: Optional[float] = None,
        cell_retries: int = 0,
        retry_backoff: Optional[float] = None,
        quarantine: bool = True,
        chaos: Optional[Union[ChaosConfig, str]] = None,
        step_budget: Optional[int] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.events_path = Path(events_path) if events_path else None
        self.record_queries = record_queries
        self.record_metrics = record_metrics
        self.record_coverage = record_coverage
        self.record_triage = record_triage
        self.bundle_dir = Path(bundle_dir) if bundle_dir else None
        self.reduce_bundles = reduce_bundles
        supervisor_kwargs: Dict[str, Any] = {
            "jobs": self.jobs,
            "cell_timeout": cell_timeout,
            "cell_retries": cell_retries,
            "quarantine": quarantine,
            "chaos": chaos,
        }
        if retry_backoff is not None:
            supervisor_kwargs["retry_backoff"] = retry_backoff
        self.supervisor = CellSupervisor(**supervisor_kwargs)
        self.step_budget = step_budget

    def run(
        self,
        cells: Sequence[CampaignCell],
        resume_path: Optional[Union[str, Path]] = None,
    ) -> Dict[CellKey, CampaignResult]:
        """Run every cell; returns results keyed and ordered by the grid.

        With *resume_path*, cells checkpointed in that event log are not
        re-run; their stored results are merged in as-is.  Quarantined
        cells are explicit holes: absent from the returned dict, present
        in the event stream as ``cell_quarantined``.
        """
        from repro.core.reporting import campaign_from_dict

        cells = list(cells)
        if len({cell.key for cell in cells}) != len(cells):
            raise ValueError("duplicate (tester, engine, seed) cells in grid")
        by_key = {cell.key: cell for cell in cells}

        done: Dict[CellKey, CampaignResult] = {}
        # Per-campaign observability snapshots, *keyed by cell* so barrier
        # merges fold them in grid order no matter the completion order —
        # the byte-identity invariant across job counts.
        snapshots: Dict[str, Dict[CellKey, List[Dict]]] = {
            kind: {} for kind in _SNAPSHOT_KINDS
        }
        if resume_path is not None and Path(resume_path).exists():
            from repro.core.reporting import (
                completed_cells_from_events,
                load_event_stream,
            )

            wanted = set(by_key)
            resume_events = load_event_stream(resume_path)
            recorded = completed_cells_from_events(resume_events)
            done = {key: recorded[key] for key in recorded if key in wanted}
            # Observability snapshots of already-checkpointed cells still
            # count toward the merged grid snapshots.
            for event in resume_events:
                kind = event.get("event")
                key = (event.get("tester"), event.get("engine"),
                       event.get("seed"))
                if (kind in snapshots
                        and event.get("scope") == "campaign"
                        and key in done):
                    snapshots[kind].setdefault(key, []).append(
                        event["snapshot"]
                    )

        pending = [cell for cell in cells if cell.key not in done]
        stats = {"failed": 0, "retried": 0, "timeouts": 0, "crashes": 0,
                 "quarantined": 0, "truncated": 0}
        with EventLog(self.events_path,
                      record_spans=self.record_metrics) as log:
            # ``grid`` lists every (tester, engine, seed) cell up front so a
            # live follower (``repro watch``) can show pending cells before
            # any worker reports; workers buffer their events until cell
            # completion, so this is the only early signal a grid log has.
            log.emit(
                "grid_start",
                cells=len(cells),
                resumed=len(done),
                pending=len(pending),
                jobs=self.jobs,
                grid=[list(cell.key) for cell in cells],
            )
            tasks = [self._task(cell) for cell in pending]
            for item in self.supervisor.run(tasks):
                if isinstance(item, CellFailure):
                    self._on_failure(log, item, stats)
                    continue
                self._on_outcome(log, item, by_key[item.key], done,
                                 snapshots, stats, campaign_from_dict)
            self._emit_barriers(log, cells, snapshots, stats)
            log.emit(
                "grid_end",
                cells=len(cells),
                completed=len(done),
                quarantined=stats["quarantined"],
            )
        return {cell.key: done[cell.key] for cell in cells
                if cell.key in done}

    # -- supervisor event plumbing ----------------------------------------

    def _on_failure(self, log: EventLog, failure: CellFailure,
                    stats: Dict[str, int]) -> None:
        tester, engine, seed = failure.key
        stats["failed"] += 1
        if failure.kind == "timeout":
            stats["timeouts"] += 1
        elif failure.kind == "crash":
            stats["crashes"] += 1
        log.emit(
            "cell_failed",
            tester=tester,
            engine=engine,
            seed=seed,
            attempt=failure.attempt,
            kind=failure.kind,
            error=failure.error,
            traceback_tail=failure.traceback_tail,
            will_retry=failure.will_retry,
        )
        if failure.will_retry:
            stats["retried"] += 1
            log.emit(
                "cell_retry",
                tester=tester,
                engine=engine,
                seed=seed,
                next_attempt=failure.attempt + 1,
                backoff=failure.backoff,
            )

    def _on_outcome(
        self,
        log: EventLog,
        outcome: CellOutcome,
        cell: CampaignCell,
        done: Dict[CellKey, CampaignResult],
        snapshots: Dict[str, Dict[CellKey, List[Dict]]],
        stats: Dict[str, int],
        campaign_from_dict,
    ) -> None:
        if outcome.quarantined:
            stats["quarantined"] += 1
            log.emit(
                "cell_quarantined",
                tester=cell.tester,
                engine=cell.engine,
                seed=cell.seed,
                attempts=outcome.attempts,
            )
            return
        log.extend(outcome.events)
        for event in outcome.events:
            kind = event.get("event")
            if kind in snapshots and event.get("scope") == "campaign":
                snapshots[kind].setdefault(cell.key, []).append(
                    event["snapshot"]
                )
        done[cell.key] = campaign_from_dict(outcome.campaign)
        # Completion-order checkpoint: emitted the moment the cell lands,
        # so an interrupt after N finished cells always resumes N cells.
        log.emit(
            "cell_complete",
            tester=cell.tester,
            engine=cell.engine,
            seed=cell.seed,
            attempts=outcome.attempts,
            campaign=outcome.campaign,
        )
        chaos = self.supervisor.chaos
        if (chaos is not None and log.path is not None
                and chaos.truncates(cell.key)):
            # Chaos: tear the checkpoint line we just wrote, simulating a
            # crash mid-write.  The in-memory log (and hence this run's
            # results) keeps the full event; only a later ``--resume``
            # sees the torn line, skips it, and re-runs the cell.
            stats["truncated"] += 1
            self._truncate_tail(log)
            log.emit(
                "chaos",
                action="truncate_tail",
                tester=cell.tester,
                engine=cell.engine,
                seed=cell.seed,
            )

    @staticmethod
    def _truncate_tail(log: EventLog, nbytes: int = 32) -> None:
        """Chop the tail of the last written line, leaving a torn record."""
        path = log.path
        size = path.stat().st_size
        if size <= nbytes:
            return
        with open(path, "r+b") as handle:
            handle.truncate(size - nbytes)
            # Real torn writes end without a newline and nothing follows;
            # here the run continues, so terminate the torn line to keep
            # subsequent appends parseable (the torn line itself is
            # invalid JSON and is skipped by ``load_event_stream``).
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")

    def _emit_barriers(
        self,
        log: EventLog,
        cells: Sequence[CampaignCell],
        snapshots: Dict[str, Dict[CellKey, List[Dict]]],
        stats: Dict[str, int],
    ) -> None:
        """Grid-scope barrier merges, folded in grid order (byte-stable)."""
        ordered: Dict[str, List[Dict]] = {
            kind: [snap for cell in cells
                   for snap in snapshots[kind].get(cell.key, ())]
            for kind in _SNAPSHOT_KINDS
        }
        if self.record_metrics and ordered["metrics"]:
            # Barrier merge: per-worker snapshots fold element-wise
            # (fixed bucket edges), so the result is independent of
            # worker count and completion order.
            from repro.obs import merge_snapshots

            merged = ordered["metrics"]
            supervisor_snap = self._supervisor_snapshot(stats)
            if supervisor_snap is not None:
                merged = merged + [supervisor_snap]
            log.emit(
                "metrics",
                scope="grid",
                cells=len(ordered["metrics"]),
                snapshot=merge_snapshots(merged),
            )
        if ordered["coverage"]:
            # Coverage/triage merges fold cells in sorted (tester,
            # engine, seed) order internally — same invariant.
            from repro.obs import merge_coverage_snapshots

            log.emit(
                "coverage",
                scope="grid",
                cells=len(ordered["coverage"]),
                snapshot=merge_coverage_snapshots(ordered["coverage"]),
            )
        if ordered["triage"]:
            from repro.obs import merge_triage_snapshots

            log.emit(
                "triage",
                scope="grid",
                cells=len(ordered["triage"]),
                snapshot=merge_triage_snapshots(ordered["triage"]),
            )
        if ordered["adaptation"]:
            from repro.runtime.adapt import merge_adaptation_snapshots

            # Tag each snapshot with its cell identity (the merge folds in
            # sorted cell order, independent of completion order).
            tagged = [
                {**snap, "tester": cell.tester, "engine": cell.engine,
                 "seed": cell.seed}
                for cell in cells
                for snap in snapshots["adaptation"].get(cell.key, ())
            ]
            log.emit(
                "adaptation",
                scope="grid",
                cells=len(tagged),
                snapshot=merge_adaptation_snapshots(tagged),
            )
        if stats["failed"] or stats["quarantined"] or stats["truncated"]:
            log.emit("supervisor", **stats)

    @staticmethod
    def _supervisor_snapshot(stats: Dict[str, int]) -> Optional[Dict]:
        """Supervisor counters as a metrics snapshot for the grid merge.

        Only materialized when something actually failed, so fault-free
        grids keep byte-identical grid metrics with or without the
        supervisor features enabled.
        """
        if not (stats["failed"] or stats["quarantined"]
                or stats["truncated"]):
            return None
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("supervisor.failures").inc(stats["failed"])
        registry.counter("supervisor.retries").inc(stats["retried"])
        registry.counter("supervisor.timeouts").inc(stats["timeouts"])
        registry.counter("supervisor.crashes").inc(stats["crashes"])
        registry.counter("supervisor.quarantined").inc(
            stats["quarantined"]
        )
        registry.counter("supervisor.truncated").inc(stats["truncated"])
        return registry.snapshot()

    # -- worker task specs -------------------------------------------------

    def _task(self, cell: CampaignCell) -> Dict[str, Any]:
        """The supervisor task for *cell*: key + primitives-only spec."""
        return {
            "key": cell.key,
            "spec": {
                "tester": cell.tester,
                "engine": cell.engine,
                "seed": cell.seed,
                "budget_seconds": cell.budget_seconds,
                "gate_scale": cell.gate_scale,
                "max_queries": cell.max_queries,
                "execution_mode": cell.execution_mode,
                "adaptive": cell.adaptive,
                "stateful": cell.stateful,
                "record_queries": self.record_queries,
                "record_metrics": self.record_metrics,
                "record_coverage": self.record_coverage,
                "record_triage": self.record_triage,
                "bundle_dir": (str(self.bundle_dir)
                               if self.bundle_dir else None),
                "reduce_bundles": self.reduce_bundles,
                "step_budget": self.step_budget,
            },
        }
