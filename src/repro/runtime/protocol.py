"""The tester protocol: what a campaign-runnable tester must provide.

The paper's evaluation runs six testers (GQS plus five baselines) whose
campaign loops used to be three hand-rolled copies differing in exactly two
declared policies:

* **session policy** — GQS restarts the engine per graph (reproducibility);
  the baselines keep one long-lived session so engine state accumulates
  (§5.4.4's crash-bug trade-off);
* **oracle** — how a proposed query is judged (ground-truth comparison,
  metamorphic relations, differential execution).

:class:`TesterProtocol` factors both out.  A tester declares its
:class:`SessionPolicy`, proposes queries for each generated graph
(:meth:`proposals`), and judges one proposal at a time (:meth:`judge`);
:class:`repro.runtime.CampaignKernel` owns everything else — the simulated
clock, budget and query accounting, crash/restart handling, fault
deduplication, trigger-record collection, and the event stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional

from repro.runtime.results import BugReport, CampaignResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gdb.engines import GraphDatabase
    from repro.graph.generator import GeneratorConfig
    from repro.graph.model import PropertyGraph
    from repro.graph.schema import GraphSchema

__all__ = ["SessionPolicy", "Judgement", "TesterProtocol"]


@dataclass(frozen=True)
class SessionPolicy:
    """How a tester manages engine sessions across graphs (§5.4.4).

    ``restart_per_graph=True`` is GQS's reproducibility-first policy: every
    graph is loaded into a freshly restarted instance.  ``False`` models the
    baselines' long-lived session, where only the very first load restarts —
    which is why they can reach the accumulation crashes GQS misses.
    """

    restart_per_graph: bool = False


@dataclass
class Judgement:
    """Outcome of judging one proposal.

    ``trigger_record`` is an optional thunk producing the §5.3 per-bug
    metadata dict; the kernel calls it only when the report's fault is new,
    mirroring the lazy analysis the original GQS loop performed.
    """

    report: Optional[BugReport] = None
    trigger_record: Optional[Callable[[], Dict[str, Any]]] = None


class TesterProtocol:
    """Base class every campaign-runnable tester implements.

    Subclasses must provide :attr:`name`, :attr:`generator_config`,
    :meth:`proposals` and :meth:`judge`; the remaining hooks have defaults
    that suit single-engine testers.
    """

    name: str = "tester"
    session: SessionPolicy = SessionPolicy()

    # Populated by subclass __init__ (the random-graph recipe, §5.1 setup).
    generator_config: "GeneratorConfig"

    # -- campaign lifecycle hooks ----------------------------------------

    def campaign_begin(self, engine: "GraphDatabase", rng: random.Random) -> None:
        """Called once before the first graph (e.g. dialect-aware setup)."""

    def load_graph(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
        restart: bool,
    ) -> None:
        """Load a freshly generated graph (multi-engine testers override)."""
        engine.load_graph(graph, schema, restart=restart)

    def proposals(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
        rng: random.Random,
    ) -> Iterator[Any]:
        """Yield test-query proposals for the current graph, lazily.

        The kernel pulls one proposal at a time and stops pulling when the
        budget or query cap is exhausted, so generation cost is only paid
        for queries that actually run.
        """
        raise NotImplementedError

    def judge(
        self,
        engine: "GraphDatabase",
        proposal: Any,
        graph: "PropertyGraph",
        rng: random.Random,
        result: CampaignResult,
    ) -> Judgement:
        """Run one proposal through the tester's oracle.

        Implementations advance the simulated clock (``result.sim_seconds``)
        by the engine cost of every query they execute.
        """
        raise NotImplementedError

    def session_engines(self, engine: "GraphDatabase") -> list:
        """Every engine instance live in the current session.

        Single-engine testers run against *engine* alone; differential
        testers (GDsmith) override this to expose their comparison engines,
        so the kernel can attribute bug reports — and flight-recorder
        bundles — to the engine instance that actually misbehaved.
        """
        return [engine]

    def recover(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
    ) -> bool:
        """Restart crashed instances; returns True when a restart happened."""
        if engine.crashed:
            engine.restart()
            engine.load_graph(graph, schema, restart=True)
            return True
        return False

    # -- convenience ------------------------------------------------------

    def run(
        self,
        engine: "GraphDatabase",
        budget_seconds: float,
        seed: int = 0,
        max_queries: Optional[int] = None,
    ) -> CampaignResult:
        """Run one campaign through the shared kernel."""
        from repro.runtime.kernel import CampaignKernel

        return CampaignKernel().run(
            self, engine, budget_seconds, seed=seed, max_queries=max_queries
        )
