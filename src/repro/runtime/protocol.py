"""The tester protocol: what a campaign-runnable tester must provide.

The paper's evaluation runs six testers (GQS plus five baselines) whose
campaign loops used to be three hand-rolled copies differing in exactly two
declared policies:

* **session policy** — GQS restarts the engine per graph (reproducibility);
  the baselines keep one long-lived session so engine state accumulates
  (§5.4.4's crash-bug trade-off);
* **oracle** — how a proposed query is judged (ground-truth comparison,
  metamorphic relations, differential execution).

:class:`TesterProtocol` factors both out.  A tester declares its
:class:`SessionPolicy`, proposes queries for each generated graph
(:meth:`proposals`), and judges one proposal at a time (:meth:`judge`);
:class:`repro.runtime.CampaignKernel` owns everything else — the simulated
clock, budget and query accounting, crash/restart handling, fault
deduplication, trigger-record collection, and the event stream.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
)

from repro.runtime.results import BugReport, CampaignResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gdb.engines import GraphDatabase
    from repro.graph.generator import GeneratorConfig
    from repro.graph.model import PropertyGraph
    from repro.graph.schema import GraphSchema
    from repro.runtime.adapt import WeightProfile

__all__ = ["SessionPolicy", "Judgement", "TesterProtocol"]


class SessionPolicy:
    """How a tester runs its campaign sessions — restart policy plus
    optional synthesis feedback (§5.4.4).

    ``restart_per_graph=True`` is GQS's reproducibility-first policy: every
    graph is loaded into a freshly restarted instance.  ``False`` models the
    baselines' long-lived session, where only the very first load restarts —
    which is why they can reach the accumulation crashes GQS misses.

    Beyond the restart decision, a policy may *steer synthesis*: the kernel
    calls :meth:`begin` once per campaign, :meth:`next_weights` before each
    graph round, and :meth:`observe` after each judged query.  The defaults
    are inert — they draw no randomness and return no weights — so a plain
    ``SessionPolicy`` reproduces the blind campaign byte-identically.
    :class:`repro.runtime.adapt.AdaptivePolicy` overrides the hooks to run
    the greybox feedback loop.
    """

    #: True on policies whose hooks actually feed back into synthesis; the
    #: kernel keys all adaptive bookkeeping (and the ``adaptation`` event)
    #: off this flag so blind campaigns stay byte-identical to before.
    adaptive: bool = False
    #: Strategy label surfaced in events/snapshots (None when blind).
    strategy: Optional[str] = None

    def __init__(self, *args: Any, restart_per_graph: bool = False):
        if args:
            warnings.warn(
                "positional SessionPolicy construction is deprecated; pass "
                "restart_per_graph by keyword or use "
                "SessionPolicy.restart_each_graph()/SessionPolicy."
                "long_session()",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 1:
                raise TypeError(
                    "SessionPolicy() takes at most one positional argument "
                    f"({len(args)} given)"
                )
            restart_per_graph = args[0]
        self.restart_per_graph = bool(restart_per_graph)

    # -- named constructors (the migration target for testers) ------------

    @classmethod
    def restart_each_graph(cls) -> "SessionPolicy":
        """GQS's policy: a freshly restarted instance per graph."""
        return cls(restart_per_graph=True)

    @classmethod
    def long_session(cls) -> "SessionPolicy":
        """The baselines' policy: one long-lived session, state accumulates."""
        return cls(restart_per_graph=False)

    # -- feedback hooks (inert by default) ---------------------------------

    def begin(self, seed: int) -> None:
        """Reset per-campaign state.  Called once, before the first graph."""

    def next_weights(self) -> Optional["WeightProfile"]:
        """Weight overrides for the next graph round (None = run blind)."""
        return None

    def observe(
        self,
        proposal: Any,
        judgement: "Judgement",
        tags: List[str],
        *,
        novel: bool = False,
        signature: Optional[str] = None,
    ) -> None:
        """Feed one judged query back into the policy.

        *tags* are the proposal's :func:`repro.obs.coverage.
        query_feature_tags`; *novel* is True when the judgement produced a
        triage signature never seen before in this campaign.
        """

    def snapshot(self) -> Optional[Dict[str, Any]]:
        """JSON-safe adaptation counters (None when the policy is blind)."""
        return None

    # -- value semantics (kept from the old frozen dataclass) --------------

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}"
            f"(restart_per_graph={self.restart_per_graph})"
        )

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.restart_per_graph == other.restart_per_graph

    def __hash__(self) -> int:
        return hash((type(self), self.restart_per_graph))


@dataclass
class Judgement:
    """Outcome of judging one proposal.

    ``trigger_record`` is an optional thunk producing the §5.3 per-bug
    metadata dict; the kernel calls it only when the report's fault is new,
    mirroring the lazy analysis the original GQS loop performed.
    """

    report: Optional[BugReport] = None
    trigger_record: Optional[Callable[[], Dict[str, Any]]] = None


class TesterProtocol:
    """Base class every campaign-runnable tester implements.

    Subclasses must provide :attr:`name`, :attr:`generator_config`,
    :meth:`proposals` and :meth:`judge`; the remaining hooks have defaults
    that suit single-engine testers.
    """

    name: str = "tester"
    session: SessionPolicy = SessionPolicy()

    # Populated by subclass __init__ (the random-graph recipe, §5.1 setup).
    generator_config: "GeneratorConfig"

    # -- campaign lifecycle hooks ----------------------------------------

    def campaign_begin(self, engine: "GraphDatabase", rng: random.Random) -> None:
        """Called once before the first graph (e.g. dialect-aware setup)."""

    def load_graph(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
        restart: bool,
    ) -> None:
        """Load a freshly generated graph (multi-engine testers override)."""
        engine.load_graph(graph, schema, restart=restart)

    def proposals(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
        rng: random.Random,
    ) -> Iterator[Any]:
        """Yield test-query proposals for the current graph, lazily.

        The kernel pulls one proposal at a time and stops pulling when the
        budget or query cap is exhausted, so generation cost is only paid
        for queries that actually run.
        """
        raise NotImplementedError

    def judge(
        self,
        engine: "GraphDatabase",
        proposal: Any,
        graph: "PropertyGraph",
        rng: random.Random,
        result: CampaignResult,
    ) -> Judgement:
        """Run one proposal through the tester's oracle.

        Implementations advance the simulated clock (``result.sim_seconds``)
        by the engine cost of every query they execute.
        """
        raise NotImplementedError

    def apply_weights(self, weights: "WeightProfile") -> None:
        """Apply a policy-issued weight profile to this tester's generators.

        Called by the kernel before each graph round whenever the session
        policy returned weights from ``next_weights()``.  The default is a
        no-op: testers that cannot be steered simply ignore the profile,
        so adaptive campaigns remain valid (if unhelpful) on any tester.
        """

    def session_engines(self, engine: "GraphDatabase") -> list:
        """Every engine instance live in the current session.

        Single-engine testers run against *engine* alone; differential
        testers (GDsmith) override this to expose their comparison engines,
        so the kernel can attribute bug reports — and flight-recorder
        bundles — to the engine instance that actually misbehaved.
        """
        return [engine]

    def sequence_context(self, engine: "GraphDatabase") -> Optional[dict]:
        """The current round's statement sequence, for v2 repro bundles.

        Stateful testers (:mod:`repro.synth.state`) return ``{"statements":
        [...], "graph": <initial PropertyGraph>}`` so the flight recorder
        can store a replayable sequence bundle; read-only testers return
        None and keep the single-query v1 format.
        """
        return None

    def recover(
        self,
        engine: "GraphDatabase",
        graph: "PropertyGraph",
        schema: Optional["GraphSchema"],
    ) -> bool:
        """Restart crashed instances; returns True when a restart happened."""
        if engine.crashed:
            engine.restart()
            engine.load_graph(graph, schema, restart=True)
            return True
        return False

    # -- convenience ------------------------------------------------------

    def run(
        self,
        engine: "GraphDatabase",
        budget_seconds: float,
        seed: int = 0,
        max_queries: Optional[int] = None,
    ) -> CampaignResult:
        """Run one campaign through the shared kernel."""
        from repro.runtime.kernel import CampaignKernel

        return CampaignKernel().run(
            self, engine, budget_seconds, seed=seed, max_queries=max_queries
        )
