"""The cell supervisor: sandboxing, watchdog timeouts, retries, chaos.

Long unattended campaign grids (paper Table 6, Figure 18) must survive
their own harness: a pathological synthesized query that trips the
recursion limit, a worker process that dies, or a cell that hangs must
cost one cell *attempt*, not the grid.  This module wraps every grid cell
in a sandbox:

* **Sandboxing** — worker exceptions never propagate; each failed attempt
  becomes a structured :class:`CellFailure` (exception type, traceback
  tail, cell key, attempt number) that the runner serializes into a
  ``cell_failed`` event.
* **Watchdog** — with a per-cell wall-clock timeout, each attempt runs in
  its own :class:`multiprocessing.Process` slot; the parent polls result
  pipes and hard-terminates (then kills) any attempt past its deadline,
  converting hangs into ``timeout`` failures.
* **Deterministic retries** — failed cells are retried up to
  ``cell_retries`` times with exponential backoff
  (``retry_backoff * 2**(attempt-1)``).  Every attempt reuses the *same*
  cell seed: cells are deterministic, so retry only helps transient
  harness faults, and a retried success is byte-identical to a first-try
  success.  After exhaustion the cell is **quarantined** (the grid
  completes with an explicit hole) or, with ``quarantine=False``, the
  supervisor raises :class:`CellFailedError`.
* **Chaos** — a deterministic fault injector (:class:`ChaosConfig`)
  crashes, hangs, or errors worker attempts and tears event-log tail
  writes, keyed on SHA-256 draws over the cell identity and attempt
  number, so the supervisor is itself tested by fault injection without
  perturbing any campaign RNG stream.

The supervisor yields outcomes in **completion order** — checkpointing is
the caller's job and must not wait for head-of-line cells.  Determinism
of merged results is preserved by the caller keying everything by cell.

Three execution modes, picked automatically:

========================  =====================================
configuration             mode
========================  =====================================
no timeout/chaos, jobs=1  inline (reference path, no processes)
no timeout/chaos, jobs>1  pool (``imap_unordered`` + initializer)
timeout or chaos set      slots (one process per attempt)
========================  =====================================

Pool workers cannot be watchdogged: a hard-dead worker loses its task and
``imap_unordered`` would wait forever, so any configuration that needs
termination semantics routes to slot mode.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "CellFailedError",
    "CellFailure",
    "CellOutcome",
    "CellSupervisor",
    "ChaosConfig",
    "DEFAULT_CHAOS_TIMEOUT",
    "DEFAULT_RETRY_BACKOFF",
    "WORKER_RECURSION_LIMIT",
    "mp_context",
]

# Duplicated from repro.runtime.parallel to keep this module import-cycle
# free (parallel imports the supervisor).
CellKey = Tuple[str, str, int]

#: First-retry backoff in seconds; attempt ``n`` waits ``backoff * 2**(n-1)``.
DEFAULT_RETRY_BACKOFF = 0.05

#: Chaos-injected hangs must be bounded even if the user sets no timeout.
DEFAULT_CHAOS_TIMEOUT = 30.0

#: Recursion headroom for deep synthesized ASTs, applied uniformly to every
#: worker (campaign pools, supervisor slots, and reduction pools alike).
WORKER_RECURSION_LIMIT = 10_000


def mp_context():
    """The multiprocessing context used by every runtime pool.

    Fork is preferred (cheap, inherits the warm interpreter); the
    ``GQS_START_METHOD`` environment variable overrides it so the spawn
    path can be exercised on any platform (results must be byte-identical
    either way — seeds live in the specs, not the processes).
    """
    method = os.environ.get("GQS_START_METHOD")
    if method:
        return multiprocessing.get_context(method)
    return multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


def _init_worker() -> None:
    """Worker initializer shared by campaign and reduction pools.

    Raises the recursion limit so deep synthesized ASTs fail with the
    typed budget error (or not at all) instead of tripping Python's
    default 1000-frame ceiling only in whichever pool forgot the raise.
    """
    sys.setrecursionlimit(max(sys.getrecursionlimit(),
                              WORKER_RECURSION_LIMIT))


# -- chaos ----------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injection for supervisor self-testing.

    Every decision is a pure function of ``(seed, purpose, cell identity,
    attempt)`` via SHA-256 — no global RNG is touched, so enabling chaos
    never perturbs campaign results; it only decides which *attempts* are
    sacrificed.  Draws are attempt-indexed, so a cell whose first attempt
    is crashed can succeed on retry.
    """

    rate: float
    seed: int = 0
    hang_seconds: float = 600.0

    _KINDS = ("crash", "hang", "error")

    @classmethod
    def parse(cls, text: str) -> "ChaosConfig":
        """Parse a ``--chaos P[,SEED]`` CLI spec."""
        parts = [p.strip() for p in str(text).split(",")]
        if len(parts) > 2 or not parts[0]:
            raise ValueError(
                f"invalid --chaos spec {text!r}: expected P or P,SEED"
            )
        try:
            rate = float(parts[0])
            seed = int(parts[1]) if len(parts) == 2 and parts[1] else 0
        except ValueError:
            raise ValueError(
                f"invalid --chaos spec {text!r}: expected P or P,SEED"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                f"invalid --chaos rate {rate!r}: must be in [0, 1]"
            )
        return cls(rate=rate, seed=seed)

    def _unit(self, *parts: object) -> float:
        """A uniform [0, 1) draw keyed on the chaos seed and *parts*."""
        text = "|".join(str(p) for p in (self.seed,) + parts)
        digest = hashlib.sha256(text.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def directive(self, key: CellKey, attempt: int) -> Optional[str]:
        """The fault to inject into this attempt (None = run clean)."""
        tester, engine, seed = key
        if self._unit("inject", tester, engine, seed, attempt) >= self.rate:
            return None
        mode = self._unit("mode", tester, engine, seed, attempt)
        return self._KINDS[int(mode * len(self._KINDS))]

    def truncates(self, key: CellKey) -> bool:
        """Whether to tear the event-log write after this cell's checkpoint."""
        tester, engine, seed = key
        return self._unit("truncate", tester, engine, seed) < self.rate

    def heartbeat_stall(self, key: CellKey, attempt: int) -> bool:
        """Service chaos: suppress this lease attempt's worker heartbeats.

        The worker keeps running the cell normally but never reports a
        heartbeat, so the scheduler's missed-heartbeat detector must revoke
        the lease and requeue the cell — the failure detection path of
        :mod:`repro.service` exercised without killing anything.  Drawn on
        its own purpose key so it composes independently with
        :meth:`directive` (a single attempt can be both stalled and, say,
        crashed — whichever bites first).
        """
        tester, engine, seed = key
        return self._unit("stall", tester, engine, seed, attempt) < self.rate


def _chaos_inject(directive: str, hang_seconds: float) -> None:
    """Apply a chaos directive inside the worker, before any cell work."""
    if directive == "crash":
        # A hard death (no exception machinery, no atexit) — exactly what
        # a segfaulting native extension would look like to the parent.
        os._exit(70)
    elif directive == "hang":
        time.sleep(hang_seconds)
    elif directive == "error":
        raise RuntimeError("chaos: injected worker error")


# -- outcome types --------------------------------------------------------


@dataclass(frozen=True)
class CellFailure:
    """One failed cell attempt (yielded before any retry or quarantine)."""

    key: CellKey
    attempt: int
    kind: str  # "exception" | "crash" | "timeout"
    error: str
    traceback_tail: str
    will_retry: bool
    backoff: float


@dataclass
class CellOutcome:
    """The final word on one cell: a campaign result, or a quarantine."""

    key: CellKey
    attempts: int
    campaign: Optional[Dict] = None
    events: List[Dict] = field(default_factory=list)
    quarantined: bool = False


class CellFailedError(RuntimeError):
    """A cell exhausted its retries and quarantine is disabled."""

    def __init__(self, failure: CellFailure):
        super().__init__(
            f"cell {failure.key} failed after {failure.attempt} "
            f"attempt(s): {failure.error}"
        )
        self.failure = failure


def _describe_failure(exc: BaseException) -> Tuple[str, str]:
    """Serialize an exception into (one-line error, traceback tail)."""
    error = f"{type(exc).__name__}: {exc}"
    formatted = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    tail = "\n".join(formatted.strip().splitlines()[-8:])
    return error, tail


# -- worker entry points --------------------------------------------------


def _run_cell_guarded(task: Dict[str, Any]) -> Dict[str, Any]:
    """Sandboxed worker entry point: never raises, always reports.

    Imports :func:`repro.runtime.parallel._run_cell` lazily — the parallel
    module imports this one, and spawn-based workers should re-import only
    on first use.
    """
    key = tuple(task["key"])
    attempt = task["attempt"]
    try:
        directive = task.get("chaos")
        if directive:
            _chaos_inject(directive, task.get("hang_seconds", 600.0))
        from repro.runtime.parallel import _run_cell

        campaign, events = _run_cell(task["spec"])
        return {
            "key": key,
            "attempt": attempt,
            "status": "ok",
            "campaign": campaign,
            "events": events,
        }
    except Exception as exc:
        error, tail = _describe_failure(exc)
        return {
            "key": key,
            "attempt": attempt,
            "status": "error",
            "error": error,
            "traceback_tail": tail,
        }


def _slot_main(conn, task: Dict[str, Any]) -> None:
    """Entry point of a one-shot attempt process (slot mode)."""
    _init_worker()
    payload = _run_cell_guarded(task)
    conn.send(payload)
    conn.close()


# -- the supervisor -------------------------------------------------------


class CellSupervisor:
    """Run cell tasks with sandboxing, watchdog, retries, and chaos.

    Tasks are dicts with at least ``key`` (the cell key tuple) and
    ``spec`` (the primitives-only worker spec consumed by
    ``parallel._run_cell``).  :meth:`run` yields, in completion order:

    * one :class:`CellFailure` per failed attempt, then
    * one :class:`CellOutcome` per cell — carrying the campaign on
      success, or ``quarantined=True`` after retries are exhausted.

    With ``quarantine=False``, exhaustion raises :class:`CellFailedError`
    (after the final :class:`CellFailure` has been yielded).
    """

    def __init__(
        self,
        jobs: int = 1,
        cell_timeout: Optional[float] = None,
        cell_retries: int = 0,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        quarantine: bool = True,
        chaos: Optional[Union[ChaosConfig, str, Tuple]] = None,
    ):
        self.jobs = max(1, int(jobs))
        if chaos is not None and not isinstance(chaos, ChaosConfig):
            chaos = (ChaosConfig.parse(chaos) if isinstance(chaos, str)
                     else ChaosConfig(*chaos))
        self.chaos = chaos
        if cell_timeout is None and chaos is not None:
            # Injected hangs must terminate even without an explicit
            # timeout, or chaos mode could stall the very grid it tests.
            cell_timeout = DEFAULT_CHAOS_TIMEOUT
        self.cell_timeout = cell_timeout
        self.cell_retries = max(0, int(cell_retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.quarantine = quarantine

    # -- dispatch ---------------------------------------------------------

    def run(
        self, tasks: Sequence[Dict[str, Any]]
    ) -> Iterator[Union[CellOutcome, CellFailure]]:
        """Yield failures and outcomes for *tasks*, in completion order."""
        tasks = [dict(task, attempt=1) for task in tasks]
        if not tasks:
            return
        if self.cell_timeout is None and self.chaos is None:
            if self.jobs == 1 or len(tasks) == 1:
                yield from self._run_inline(tasks)
            else:
                yield from self._run_pool(tasks)
        else:
            # Termination semantics (watchdog, hard crashes) need a
            # process per attempt: a pool task lost to a dead worker
            # would block ``imap_unordered`` forever.
            yield from self._run_slots(tasks)

    # -- shared attempt accounting ----------------------------------------

    def _armed(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Attach this attempt's chaos directive (if any) to the task."""
        if self.chaos is None:
            return task
        directive = self.chaos.directive(tuple(task["key"]),
                                         task["attempt"])
        if directive is None:
            return task
        return dict(task, chaos=directive,
                    hang_seconds=self.chaos.hang_seconds)

    def _settle(
        self,
        task: Dict[str, Any],
        payload: Optional[Dict[str, Any]] = None,
        kind: str = "exception",
        error: str = "",
        tail: str = "",
    ) -> Tuple[List[Union[CellOutcome, CellFailure]],
               Optional[Dict[str, Any]],
               Optional[CellFailure]]:
        """Turn one finished attempt into (yield items, retry task, fatal)."""
        key: CellKey = tuple(task["key"])
        attempt = task["attempt"]
        if payload is not None and payload.get("status") == "ok":
            outcome = CellOutcome(
                key=key,
                attempts=attempt,
                campaign=payload["campaign"],
                events=payload["events"],
            )
            return [outcome], None, None
        if payload is not None:
            kind = "exception"
            error = payload["error"]
            tail = payload["traceback_tail"]
        will_retry = attempt <= self.cell_retries
        backoff = (self.retry_backoff * 2 ** (attempt - 1)
                   if will_retry else 0.0)
        failure = CellFailure(
            key=key,
            attempt=attempt,
            kind=kind,
            error=error,
            traceback_tail=tail,
            will_retry=will_retry,
            backoff=backoff,
        )
        items: List[Union[CellOutcome, CellFailure]] = [failure]
        if will_retry:
            return items, dict(task, attempt=attempt + 1), None
        if self.quarantine:
            items.append(
                CellOutcome(key=key, attempts=attempt, quarantined=True)
            )
            return items, None, None
        return items, None, failure

    # -- inline mode ------------------------------------------------------

    def _run_inline(self, tasks):
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            payload = _run_cell_guarded(task)
            items, retry, fatal = self._settle(task, payload=payload)
            yield from items
            if fatal is not None:
                raise CellFailedError(fatal)
            if retry is not None:
                time.sleep(items[0].backoff)
                queue.append(retry)

    # -- pool mode --------------------------------------------------------

    def _run_pool(self, tasks):
        context = mp_context()
        pending = list(tasks)
        with context.Pool(
            processes=min(self.jobs, len(tasks)),
            initializer=_init_worker,
        ) as pool:
            while pending:
                batch = pending
                pending = []
                index = {(tuple(t["key"]), t["attempt"]): t for t in batch}
                max_backoff = 0.0
                # Completion order: checkpointing must not wait for
                # head-of-line cells.
                for payload in pool.imap_unordered(_run_cell_guarded,
                                                   batch):
                    task = index[(tuple(payload["key"]),
                                  payload["attempt"])]
                    items, retry, fatal = self._settle(task,
                                                       payload=payload)
                    yield from items
                    if fatal is not None:
                        raise CellFailedError(fatal)
                    if retry is not None:
                        pending.append(retry)
                        max_backoff = max(max_backoff, items[0].backoff)
                if pending and max_backoff:
                    time.sleep(max_backoff)

    # -- slot mode --------------------------------------------------------

    def _run_slots(self, tasks):
        context = mp_context()
        queue = deque(tasks)
        waiting: List[Tuple[float, Dict[str, Any]]] = []
        running: List[Tuple[Any, Any, Dict[str, Any], Optional[float]]] = []
        try:
            while queue or waiting or running:
                now = time.monotonic()
                still_waiting = []
                for ready_at, task in waiting:
                    if ready_at <= now:
                        queue.append(task)
                    else:
                        still_waiting.append((ready_at, task))
                waiting = still_waiting

                while queue and len(running) < self.jobs:
                    task = queue.popleft()
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    proc = context.Process(
                        target=_slot_main,
                        args=(child_conn, self._armed(task)),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    deadline = (time.monotonic() + self.cell_timeout
                                if self.cell_timeout is not None else None)
                    running.append((proc, parent_conn, task, deadline))

                progressed = False
                survivors = []
                for proc, conn, task, deadline in running:
                    payload = None
                    failed: Optional[Tuple[str, str]] = None
                    if conn.poll(0):
                        try:
                            payload = conn.recv()
                        except EOFError:
                            failed = ("crash",
                                      "worker died before reporting "
                                      "a result")
                    elif not proc.is_alive():
                        # The process exited; drain any result racing the
                        # exit before declaring a crash.
                        if conn.poll(0.05):
                            try:
                                payload = conn.recv()
                            except EOFError:
                                failed = ("crash",
                                          "worker died before reporting "
                                          "a result")
                        else:
                            failed = (
                                "crash",
                                "worker exited with code "
                                f"{proc.exitcode} before reporting "
                                "a result",
                            )
                    elif deadline is not None and now >= deadline:
                        proc.terminate()
                        proc.join(1.0)
                        if proc.is_alive():
                            proc.kill()
                            proc.join(1.0)
                        failed = (
                            "timeout",
                            f"cell exceeded the {self.cell_timeout:g}s "
                            "watchdog timeout; worker terminated",
                        )
                    if payload is None and failed is None:
                        survivors.append((proc, conn, task, deadline))
                        continue
                    progressed = True
                    proc.join(5.0)
                    conn.close()
                    if payload is not None:
                        items, retry, fatal = self._settle(task,
                                                           payload=payload)
                    else:
                        items, retry, fatal = self._settle(
                            task, kind=failed[0], error=failed[1]
                        )
                    yield from items
                    if fatal is not None:
                        raise CellFailedError(fatal)
                    if retry is not None:
                        waiting.append(
                            (time.monotonic() + items[0].backoff, retry)
                        )
                running = survivors
                if not progressed:
                    time.sleep(0.01)
        finally:
            # Interrupt / early-exit hygiene: never leak attempt processes.
            for proc, conn, _task, _deadline in running:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(0.5)
                    if proc.is_alive():
                        proc.kill()
                try:
                    conn.close()
                except OSError:
                    pass
