"""The unified campaign runtime.

One pluggable kernel (:class:`CampaignKernel`) runs every tester —
GQS and all five baselines — through a single loop, parameterized by the
:class:`TesterProtocol` they implement; :class:`ParallelCampaignRunner`
fans (tester × engine × seed) grids out over a process pool with an
event-stream checkpoint so interrupted grids resume from the last
completed cell.  :class:`CellSupervisor` sandboxes every cell — worker
exceptions, hangs, and crashes become structured failure events,
deterministic retries, and explicit quarantine holes instead of grid
aborts (:mod:`repro.runtime.supervisor`).
"""

from repro.runtime.adapt import (
    ADAPTIVE_STRATEGIES,
    AdaptivePolicy,
    AdaptiveSchedule,
    FeatureArm,
    WeightProfile,
    attach_adaptive_policy,
    default_arms,
    merge_adaptation_snapshots,
)
from repro.runtime.events import EventLog
from repro.runtime.kernel import CampaignKernel
from repro.runtime.parallel import (
    CampaignCell,
    CellKey,
    ParallelCampaignRunner,
    derive_cell_seed,
)
from repro.runtime.protocol import Judgement, SessionPolicy, TesterProtocol
from repro.runtime.results import BugReport, CampaignResult
from repro.runtime.supervisor import (
    CellFailedError,
    CellFailure,
    CellOutcome,
    CellSupervisor,
    ChaosConfig,
    mp_context,
)

__all__ = [
    "ADAPTIVE_STRATEGIES",
    "AdaptivePolicy",
    "AdaptiveSchedule",
    "BugReport",
    "CampaignResult",
    "CampaignKernel",
    "CampaignCell",
    "FeatureArm",
    "WeightProfile",
    "attach_adaptive_policy",
    "default_arms",
    "merge_adaptation_snapshots",
    "CellFailedError",
    "CellFailure",
    "CellKey",
    "CellOutcome",
    "CellSupervisor",
    "ChaosConfig",
    "EventLog",
    "Judgement",
    "ParallelCampaignRunner",
    "SessionPolicy",
    "TesterProtocol",
    "derive_cell_seed",
    "mp_context",
]
