"""Campaign outcome types shared by every tester.

Historically these lived in :mod:`repro.core.runner`; they moved here when
the campaign loop was unified under :class:`repro.runtime.CampaignKernel`
so that the runtime layer does not depend on the GQS-specific synthesis
code.  ``repro.core.runner`` re-exports both names for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["BugReport", "CampaignResult"]


@dataclass
class BugReport:
    """One reported discrepancy (or crash/hang/exception)."""

    tester: str
    engine: str
    kind: str                  # "logic" | "error"
    detail: str
    query_text: str
    fault_id: Optional[str]    # white-box accounting; None => false positive
    sim_time: float
    n_steps: int = 0

    @property
    def is_false_positive(self) -> bool:
        return self.fault_id is None


@dataclass
class CampaignResult:
    """Aggregated outcome of one testing campaign."""

    tester: str
    engine: str
    queries_run: int = 0
    sim_seconds: float = 0.0
    reports: List[BugReport] = field(default_factory=list)
    timeline: List[Tuple[float, str]] = field(default_factory=list)
    # Per bug-triggering query metadata, for the §5.3 analyses.
    trigger_records: List[Dict[str, Any]] = field(default_factory=list)
    # Judgements aborted by the evaluation resource envelope (blown step
    # budget / recursion limit) — harness conditions, never bugs.
    harness_errors: int = 0

    @property
    def detected_faults(self) -> List[str]:
        seen: List[str] = []
        for report in self.reports:
            if report.fault_id and report.fault_id not in seen:
                seen.append(report.fault_id)
        return seen

    @property
    def false_positive_count(self) -> int:
        return sum(1 for report in self.reports if report.is_false_positive)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult(self.tester, f"{self.engine}+{other.engine}")
        merged.queries_run = self.queries_run + other.queries_run
        merged.sim_seconds = max(self.sim_seconds, other.sim_seconds)
        merged.reports = self.reports + other.reports
        merged.timeline = sorted(self.timeline + other.timeline)
        merged.trigger_records = self.trigger_records + other.trigger_records
        merged.harness_errors = self.harness_errors + other.harness_errors
        return merged
