"""The single campaign loop shared by all six testers (paper §3.1 / §5.4).

One kernel iteration: draw a graph seed, generate a random graph, load it
under the tester's session policy, then pull query proposals from the
tester and judge them until the graph is exhausted or the budget runs out.
The kernel owns the simulated clock bookkeeping, budget/query-cap
accounting, crash/restart handling, fault deduplication, trigger-record
collection, and the event stream — everything that used to be duplicated
across ``GQSTester.run``, ``BaselineTester.run`` and ``GDsmithTester.run``.

Campaigns advance a *simulated* wall clock driven by the engines' cost
model, which is how the 24-hour experiments (§5.4.4) are reproduced without
24 real hours.

Observability (:mod:`repro.obs`): when the process-wide probe is on, the
kernel traces each stage as a span — ``campaign`` → ``graph`` →
``propose``/``judge`` — over both the real and the simulated clock, counts
queries/faults/graphs per (tester, engine), and attributes per-judgement
simulated time to a fixed-bucket histogram.  At campaign end the finished
spans and a metrics snapshot are emitted into the event stream (``span`` /
``metrics`` events).

The second observability tier is opt-in per kernel: ``record_coverage``
folds every proposal's query into a :class:`repro.obs.coverage.
CellCoverage` accumulator (emitted as one ``coverage`` event at campaign
end), ``record_triage`` deduplicates the discrepancy stream into bug
signatures (:class:`repro.obs.triage.CellTriage`, one ``triage`` event),
and a :class:`repro.obs.recorder.FlightRecorder` writes one replayable
repro ``bundle`` the first time a signature is seen.  None of this touches
the RNG stream: results are byte-identical with observability on or off.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.engine.envelope import evaluation_budget
from repro.engine.errors import EvaluationBudgetExceeded
from repro.graph.generator import GraphGenerator
from repro.obs import PROBE
from repro.runtime.events import EventLog
from repro.runtime.protocol import Judgement, TesterProtocol
from repro.runtime.results import CampaignResult

__all__ = ["CampaignKernel"]

_DONE = object()


class CampaignKernel:
    """Budget-driven campaign executor for any :class:`TesterProtocol`."""

    def __init__(
        self,
        events: Optional[EventLog] = None,
        *,
        record_coverage: bool = False,
        record_triage: bool = False,
        recorder=None,
        step_budget: Optional[int] = None,
    ):
        self.events = events if events is not None else EventLog()
        self.record_coverage = record_coverage
        self.record_triage = record_triage
        self.recorder = recorder
        # Per-judgement evaluation step budget (resource envelope).  A
        # blown budget costs one judgement — recorded as harness_error,
        # never a bug — instead of the campaign.
        self.step_budget = step_budget

    def run(
        self,
        tester: TesterProtocol,
        engine,
        budget_seconds: float,
        seed: int = 0,
        max_queries: Optional[int] = None,
    ) -> CampaignResult:
        """Run one (simulated-time-budgeted) campaign of *tester* on *engine*."""
        rng = random.Random(seed)
        result = CampaignResult(tester.name, engine.name)
        seen_faults: set = set()

        policy = tester.session
        adaptive = policy.adaptive
        feature_tags = None
        if adaptive:
            # The policy runs its own SHA-256-derived RNG (never the
            # campaign RNG), and novelty feedback needs the signature
            # stream, so an adaptive campaign always tracks triage
            # internally (the `triage` event stays opt-in below).
            from repro.obs.coverage import query_feature_tags, query_of

            def feature_tags(proposal):
                query = query_of(proposal)
                return [] if query is None else query_feature_tags(query)

            policy.begin(seed)

        coverage = triage = None
        if self.record_coverage:
            from repro.obs.coverage import CellCoverage

            coverage = CellCoverage(tester.name, engine.name, seed)
        if self.record_triage or self.recorder is not None or adaptive:
            # The recorder needs the signature stream even when triage
            # events themselves were not requested.
            from repro.obs.triage import CellTriage

            triage = CellTriage(tester.name, engine.name, seed)

        tester.campaign_begin(engine, rng)
        start_extra = {"adaptive": policy.strategy} if adaptive else {}
        self.events.emit(
            "campaign_start",
            tester=tester.name,
            engine=engine.name,
            seed=seed,
            budget_seconds=budget_seconds,
            max_queries=max_queries,
            restart_per_graph=policy.restart_per_graph,
            **start_extra,
        )

        observing = PROBE.on
        tracer = PROBE.tracer
        metrics = PROBE.metrics
        if observing:
            # Spans sample both clocks; bind the simulated one to this
            # campaign's accumulator.
            tracer.sim_clock = lambda: result.sim_seconds
        labels = {"tester": tester.name, "engine": engine.name}

        with tracer.span("campaign"):
            first_load = True
            while self._within_budget(result, budget_seconds, max_queries):
                with tracer.span("graph"):
                    # Adaptive policies re-weight synthesis before each
                    # graph round; the profile must land before the graph
                    # generator is built so graph-shape bumps apply too.
                    # Blind policies return None and this is a no-op.
                    weights = policy.next_weights()
                    if weights is not None:
                        tester.apply_weights(weights)
                    # A fresh random graph per outer iteration; the restart
                    # decision is the tester's declared session policy
                    # (§5.4.4).
                    generator = GraphGenerator(
                        seed=rng.randrange(2**32),
                        config=tester.generator_config,
                    )
                    schema, graph = generator.generate_with_schema()
                    restart = policy.restart_per_graph or first_load
                    tester.load_graph(engine, graph, schema, restart)
                    first_load = False
                    # ``queries`` is the cumulative campaign counter at
                    # round start: the live heartbeat ``repro watch`` uses
                    # for progress/rate without needing per-query events.
                    self.events.emit(
                        "graph",
                        nodes=graph.node_count,
                        relationships=graph.relationship_count,
                        restart=restart,
                        sim_time=result.sim_seconds,
                        queries=result.queries_run,
                    )
                    if observing:
                        metrics.counter("campaign.graphs", **labels).inc()

                    proposals = tester.proposals(engine, graph, schema, rng)
                    while self._within_budget(
                        result, budget_seconds, max_queries
                    ):
                        with tracer.span("propose"):
                            proposal = next(proposals, _DONE)
                        if proposal is _DONE:
                            break
                        if coverage is not None:
                            coverage.observe(proposal)
                        sim_before = result.sim_seconds
                        with tracer.span("judge"):
                            judgement = self._judge(
                                tester, engine, proposal, graph, rng,
                                result, observing=observing,
                                metrics=metrics, labels=labels,
                            )
                        result.queries_run += 1
                        self.events.emit(
                            "query",
                            n=result.queries_run,
                            sim_time=result.sim_seconds,
                        )
                        if observing:
                            metrics.counter(
                                "campaign.queries", **labels
                            ).inc()
                            metrics.histogram(
                                "stage.sim_seconds", stage="judge"
                            ).observe(result.sim_seconds - sim_before)
                        outcome = self._record(
                            result, judgement, seen_faults,
                            triage=triage, tester=tester, engine=engine,
                            seed=seed,
                        )
                        if adaptive:
                            signature, novel = outcome or (None, False)
                            policy.observe(
                                proposal,
                                judgement,
                                feature_tags(proposal),
                                novel=novel,
                                signature=signature,
                            )
                        if tester.recover(engine, graph, schema):
                            self.events.emit(
                                "crash",
                                engine=engine.name,
                                sim_time=result.sim_seconds,
                            )
                            if observing:
                                metrics.counter(
                                    "campaign.crashes", **labels
                                ).inc()

        self.events.emit(
            "campaign_end",
            tester=tester.name,
            engine=engine.name,
            queries_run=result.queries_run,
            sim_seconds=result.sim_seconds,
            detected_faults=result.detected_faults,
            false_positives=result.false_positive_count,
        )
        if observing:
            metrics.counter("campaign.faults", **labels).inc(
                len(result.detected_faults)
            )
            metrics.gauge("campaign.sim_seconds", **labels).set(
                result.sim_seconds
            )
            cell = f"{tester.name}/{engine.name}/{seed}"
            for span in tracer.drain():
                self.events.emit("span", cell=cell, **span)
            self.events.emit(
                "metrics",
                scope="campaign",
                tester=tester.name,
                engine=engine.name,
                seed=seed,
                snapshot=metrics.snapshot(),
            )
        if coverage is not None:
            self.events.emit(
                "coverage",
                scope="campaign",
                tester=tester.name,
                engine=engine.name,
                seed=seed,
                snapshot=coverage.snapshot(),
            )
        if triage is not None and self.record_triage:
            self.events.emit(
                "triage",
                scope="campaign",
                tester=tester.name,
                engine=engine.name,
                seed=seed,
                snapshot=triage.snapshot(),
            )
        if adaptive:
            self.events.emit(
                "adaptation",
                scope="campaign",
                tester=tester.name,
                engine=engine.name,
                seed=seed,
                snapshot=policy.snapshot(),
            )
        return result

    # -- internals --------------------------------------------------------

    def _judge(
        self,
        tester: TesterProtocol,
        engine,
        proposal,
        graph,
        rng,
        result: CampaignResult,
        *,
        observing: bool,
        metrics,
        labels,
    ) -> Judgement:
        """One judgement under the evaluation resource envelope.

        A blown step budget (or an exhausted recursion limit surfaced by
        the engines as the same typed error) is a *harness* condition:
        the proposal is consumed, the judgement is empty, and the event
        stream records a ``harness_error`` — never a false bug.  The
        outcome is deterministic (the envelope draws no randomness), so
        budgeted campaigns stay byte-identical across job counts.
        """
        try:
            with evaluation_budget(self.step_budget):
                return tester.judge(engine, proposal, graph, rng, result)
        except EvaluationBudgetExceeded as exc:
            result.harness_errors += 1
            self.events.emit(
                "harness_error",
                tester=tester.name,
                engine=engine.name,
                error=f"{type(exc).__name__}: {exc}",
                query=result.queries_run + 1,
                sim_time=result.sim_seconds,
            )
            if observing:
                metrics.counter(
                    "campaign.harness_errors", **labels
                ).inc()
            return Judgement()

    @staticmethod
    def _within_budget(
        result: CampaignResult,
        budget_seconds: float,
        max_queries: Optional[int],
    ) -> bool:
        if result.sim_seconds >= budget_seconds:
            return False
        if max_queries is not None and result.queries_run >= max_queries:
            return False
        return True

    def _record(
        self,
        result: CampaignResult,
        judgement: Judgement,
        seen_faults: set,
        *,
        triage=None,
        tester: Optional[TesterProtocol] = None,
        engine=None,
        seed: int = 0,
    ) -> Optional[tuple]:
        """Record one judgement; returns ``(signature, is_new)`` when the
        report was triaged (the adaptive policy's novelty feedback)."""
        report = judgement.report
        if report is None:
            return None
        result.reports.append(report)
        outcome = None
        if triage is not None:
            signature, is_new = triage.add(report, result.queries_run)
            outcome = (signature, is_new)
            if is_new and self.recorder is not None:
                self._record_bundle(
                    signature, report, tester, engine, seed,
                    query_index=result.queries_run,
                )
        if report.fault_id and report.fault_id not in seen_faults:
            seen_faults.add(report.fault_id)
            result.timeline.append((report.sim_time, report.fault_id))
            if judgement.trigger_record is not None:
                result.trigger_records.append(judgement.trigger_record())
            self.events.emit(
                "fault",
                fault_id=report.fault_id,
                kind=report.kind,
                sim_time=report.sim_time,
                engine=report.engine,
            )
        return outcome

    def _record_bundle(
        self,
        signature: str,
        report,
        tester: TesterProtocol,
        engine,
        seed: int,
        *,
        query_index: int,
    ) -> None:
        """Write a flight-recorder bundle for a newly-seen bug signature.

        The bundle snapshots the *attributed* engine's current graph copy
        (session mutations included) and, for session-gated faults, the
        query counter at fire time — everything the deterministic replay
        needs (:mod:`repro.obs.recorder`).
        """
        target = engine
        for gdb in tester.session_engines(engine):
            if gdb.name == report.engine:
                target = gdb
                break
        if target.graph is None:
            return
        session_queries = None
        if report.fault_id:
            session_queries = (
                target.last_fault_session_queries
                or target.queries_since_restart
            )
        # Stateful testers expose the round's statement sequence plus the
        # pristine initial graph; the recorder then writes a v2 sequence
        # bundle instead of the single-query v1 snapshot.
        context = tester.sequence_context(target)
        bundle_graph = target.graph
        statements = None
        if context is not None:
            statements = context["statements"]
            bundle_graph = context["graph"]
        path = self.recorder.record(
            signature=signature,
            tester=tester.name,
            seed=seed,
            report=report,
            graph=bundle_graph,
            schema=target.schema,
            engine_spec=target.spec(),
            session_queries=session_queries,
            query_index=query_index,
            statements=statements,
        )
        self.events.emit(
            "bundle",
            tester=tester.name,
            engine=report.engine,
            seed=seed,
            signature=signature,
            path=str(path),
        )
        if self.recorder.auto_reduce and self.recorder.reductions:
            # The recorder minimized the bundle inline; surface the shrink
            # stats on the event stream so reports/resume can see them.
            stats = self.recorder.reductions[-1]
            self.events.emit(
                "reduction",
                tester=tester.name,
                engine=report.engine,
                seed=seed,
                signature=signature,
                path=str(path),
                min_path=stats.get("min_path"),
                stats=stats,
            )
