"""Clause-by-clause reference execution of Cypher queries.

The executor is the project's definition of *correct* query semantics: the
simulated GDBs delegate to it and then apply their injected faults, and the
GQS oracle trusts it when validating the synthesizer itself.

Execution follows the Cypher evaluation model (paper §2.2): each clause maps
a table of intermediate bindings to a new table; the last clause's output is
the query result.
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cypher import ast
from repro.cypher.functions import is_aggregate
from repro.engine.binding import BindingTable, ResultSet, Row
from repro.engine.errors import CypherRuntimeError, CypherSyntaxError, CypherTypeError
from repro.engine.evaluator import Evaluator, has_aggregate
from repro.engine.matcher import Matcher
from repro.graph import values as V
from repro.graph.model import Node, PropertyGraph, Relationship

__all__ = ["Executor", "ProcedureRegistry", "default_procedures"]

AnyQuery = Union[ast.Query, ast.UnionQuery]

# A procedure maps (graph, args) to (columns, rows).
Procedure = Callable[[PropertyGraph, Sequence[Any]], Tuple[List[str], List[List[Any]]]]
ProcedureRegistry = Dict[str, Procedure]


def _build_default_procedures() -> ProcedureRegistry:
    def db_labels(graph: PropertyGraph, args: Sequence[Any]):
        return ["label"], [[label] for label in graph.labels()]

    def db_relationship_types(graph: PropertyGraph, args: Sequence[Any]):
        return ["relationshipType"], [[t] for t in graph.relationship_types()]

    def db_property_keys(graph: PropertyGraph, args: Sequence[Any]):
        keys = sorted({key.name for key in graph.all_property_keys()})
        return ["propertyKey"], [[key] for key in keys]

    return {
        "db.labels": db_labels,
        "db.relationshipTypes": db_relationship_types,
        "db.propertyKeys": db_property_keys,
    }


# Built once at import: the registry is stateless (procedures read the graph
# they are handed), so every executor can share one dict instead of
# re-deriving it per instantiation on hot replay paths.
_DEFAULT_PROCEDURES: ProcedureRegistry = _build_default_procedures()


def default_procedures() -> ProcedureRegistry:
    """The engine procedures shared by Neo4j and FalkorDB (§4).

    Returns the shared module-level registry; callers must treat it as
    read-only (pass a fresh dict to :class:`Executor` to customize).
    """
    return _DEFAULT_PROCEDURES


class Executor:
    """Executes query ASTs against a :class:`PropertyGraph`."""

    def __init__(
        self,
        graph: PropertyGraph,
        enforce_rel_uniqueness: bool = True,
        procedures: Optional[ProcedureRegistry] = None,
    ):
        self.graph = graph
        self.evaluator = Evaluator(graph)
        self.matcher = Matcher(graph, enforce_rel_uniqueness)
        self.procedures = procedures if procedures is not None else _DEFAULT_PROCEDURES

    # -- public API ---------------------------------------------------

    def execute(self, query: AnyQuery) -> ResultSet:
        """Execute *query* and return its result set."""
        if isinstance(query, ast.UnionQuery):
            return self._execute_union(query)
        table = BindingTable.unit()
        for clause in query.clauses:
            table = self._apply(clause, table)
        last = query.clauses[-1]
        if isinstance(last, ast.Return):
            ordered = bool(last.order_by)
            rows = [[row.get(col) for col in table.columns] for row in table.rows]
            return ResultSet(table.columns, rows, ordered=ordered)
        # Write-only queries produce an empty result.
        return ResultSet([], [])

    def _execute_union(self, query: ast.UnionQuery) -> ResultSet:
        left = self.execute(query.left)
        right = self.execute(query.right)
        if left.columns != right.columns:
            raise CypherSyntaxError(
                "UNION requires identical column names on both sides"
            )
        combined = ResultSet.union_all([left, right])
        if query.all:
            return combined
        seen = set()
        rows = []
        for row in combined.rows:
            key = tuple(V.equivalence_key(value) for value in row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return ResultSet(left.columns, rows)

    # -- clause dispatch -------------------------------------------------

    def _apply(self, clause: ast.Clause, table: BindingTable) -> BindingTable:
        if isinstance(clause, ast.Match):
            return self._match(clause, table)
        if isinstance(clause, ast.Unwind):
            return self._unwind(clause, table)
        if isinstance(clause, ast.With):
            return self._project(clause, table, is_with=True)
        if isinstance(clause, ast.Return):
            return self._project(clause, table, is_with=False)
        if isinstance(clause, ast.Call):
            return self._call(clause, table)
        if isinstance(clause, ast.Create):
            return self._create(clause, table)
        if isinstance(clause, ast.SetClause):
            return self._set(clause, table)
        if isinstance(clause, ast.Delete):
            return self._delete(clause, table)
        if isinstance(clause, ast.Remove):
            return self._remove(clause, table)
        if isinstance(clause, ast.Merge):
            return self._merge(clause, table)
        raise CypherSyntaxError(f"unsupported clause {type(clause).__name__}")

    # -- MATCH / OPTIONAL MATCH ------------------------------------------

    def _match(self, clause: ast.Match, table: BindingTable) -> BindingTable:
        new_vars: List[str] = []
        for pattern in clause.patterns:
            for name in pattern.variables():
                if name not in table.columns and name not in new_vars:
                    new_vars.append(name)

        out_columns = table.columns + new_vars
        out_rows: List[Row] = []

        for row in table.rows:
            survivors: List[Row] = []
            for bindings in self.matcher.match(clause.patterns, row):
                merged = dict(row)
                merged.update(bindings)
                if clause.where is not None:
                    verdict = self.evaluator.evaluate_predicate(clause.where, merged)
                    if verdict is not True:
                        continue
                survivors.append(merged)
            if survivors:
                out_rows.extend(survivors)
            elif clause.optional:
                padded = dict(row)
                for name in new_vars:
                    padded.setdefault(name, None)
                out_rows.append(padded)
        return BindingTable(out_columns, out_rows)

    # -- UNWIND --------------------------------------------------------

    def _unwind(self, clause: ast.Unwind, table: BindingTable) -> BindingTable:
        out_columns = table.columns + (
            [clause.alias] if clause.alias not in table.columns else []
        )
        out_rows: List[Row] = []
        for row in table.rows:
            value = self.evaluator.evaluate(clause.expression, row)
            if value is None:
                continue
            items = value if isinstance(value, list) else [value]
            for item in items:
                new_row = dict(row)
                new_row[clause.alias] = item
                out_rows.append(new_row)
        return BindingTable(out_columns, out_rows)

    # -- WITH / RETURN ----------------------------------------------------

    def _project(
        self, clause: Union[ast.With, ast.Return], table: BindingTable, is_with: bool
    ) -> BindingTable:
        items = clause.items
        aggregated = any(has_aggregate(item.expression) for item in items)
        columns = [item.output_name() for item in items]
        if len(set(columns)) != len(columns):
            raise CypherSyntaxError("duplicate column name in projection")

        if aggregated:
            projected = self._project_aggregated(items, table)
        else:
            projected_rows: List[Row] = []
            for row in table.rows:
                projected_rows.append(
                    {
                        col: self.evaluator.evaluate(item.expression, row)
                        for col, item in zip(columns, items)
                    }
                )
            projected = BindingTable(columns, projected_rows)
            if clause.distinct:
                projected = projected.distinct()

        if aggregated and clause.distinct:
            projected = projected.distinct()

        # ORDER BY sees the projected columns (aliases) first, falling back
        # to the pre-projection variables for non-aggregated projections.
        if clause.order_by:
            if aggregated:
                envs = [dict(row) for row in projected.rows]
            else:
                envs = []
                original_rows = table.rows if not clause.distinct else None
                # After DISTINCT the original rows no longer line up; order
                # by the projected values only.
                if original_rows is not None and len(original_rows) == len(projected.rows):
                    for orig, proj in zip(original_rows, projected.rows):
                        env = dict(orig)
                        env.update(proj)
                        envs.append(env)
                else:
                    envs = [dict(row) for row in projected.rows]

            def sort_key(pair):
                env = pair[1]
                keys = []
                for order in clause.order_by:
                    value = self.evaluator.evaluate(order.expression, env)
                    key = V.order_key(value)
                    keys.append((key, order.descending))
                return keys

            indexed = list(zip(projected.rows, envs))
            # Stable multi-key sort: apply keys right-to-left.
            for order in reversed(clause.order_by):
                indexed.sort(
                    key=lambda pair, o=order: V.order_key(
                        self.evaluator.evaluate(o.expression, pair[1])
                    ),
                    reverse=order.descending,
                )
            projected = BindingTable(projected.columns, [row for row, _env in indexed])

        projected = self._skip_limit(clause, projected)

        if is_with and clause.where is not None:
            kept = [
                row
                for row in projected.rows
                if self.evaluator.evaluate_predicate(clause.where, row) is True
            ]
            projected = BindingTable(projected.columns, kept)
        return projected

    def _skip_limit(self, clause, table: BindingTable) -> BindingTable:
        rows = table.rows
        if clause.skip is not None:
            count = self._count_argument(clause.skip, "SKIP")
            rows = rows[count:]
        if clause.limit is not None:
            count = self._count_argument(clause.limit, "LIMIT")
            rows = rows[:count]
        return BindingTable(table.columns, rows)

    def _count_argument(self, expr: ast.Expression, keyword: str) -> int:
        value = self.evaluator.evaluate(expr, {})
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise CypherSyntaxError(
                f"{keyword} requires a non-negative integer literal"
            )
        return value

    # -- aggregation ------------------------------------------------------

    def _project_aggregated(
        self, items: Sequence[ast.ProjectionItem], table: BindingTable
    ) -> BindingTable:
        columns = [item.output_name() for item in items]
        group_items = [
            (col, item)
            for col, item in zip(columns, items)
            if not has_aggregate(item.expression)
        ]

        groups: Dict[tuple, Dict[str, Any]] = {}
        for row in table.rows:
            key_values = {
                col: self.evaluator.evaluate(item.expression, row)
                for col, item in group_items
            }
            key = tuple(V.equivalence_key(key_values[col]) for col, _ in group_items)
            bucket = groups.setdefault(
                key, {"key_values": key_values, "rows": []}
            )
            bucket["rows"].append(row)

        if not groups and not group_items:
            # Aggregation over zero rows with no grouping keys yields one row.
            groups[()] = {"key_values": {}, "rows": []}

        out_rows: List[Row] = []
        for bucket in groups.values():
            out_row: Row = {}
            for col, item in zip(columns, items):
                if has_aggregate(item.expression):
                    out_row[col] = self._eval_aggregate_expr(
                        item.expression, bucket["rows"]
                    )
                else:
                    out_row[col] = bucket["key_values"][col]
            out_rows.append(out_row)
        return BindingTable(columns, out_rows)

    def _eval_aggregate_expr(self, expr: ast.Expression, rows: List[Row]) -> Any:
        """Evaluate an expression that contains aggregate calls over *rows*."""
        if isinstance(expr, ast.CountStar):
            return len(rows)
        if isinstance(expr, ast.FunctionCall) and is_aggregate(expr.name):
            return self._aggregate(expr, rows)
        if not has_aggregate(expr):
            # Constant w.r.t. the group (grouping keys are handled upstream);
            # evaluate against a representative row.
            env = rows[0] if rows else {}
            return self.evaluator.evaluate(expr, env)

        # Rebuild the expression with aggregate sub-terms replaced by their
        # computed values.
        if isinstance(expr, ast.Unary):
            inner = self._eval_aggregate_expr(expr.operand, rows)
            return self.evaluator.evaluate(
                ast.Unary(expr.op, ast.Literal(inner)), {}
            )
        if isinstance(expr, ast.Binary):
            left = self._eval_aggregate_expr(expr.left, rows)
            right = self._eval_aggregate_expr(expr.right, rows)
            return self.evaluator.evaluate(
                ast.Binary(expr.op, _as_literal(left), _as_literal(right)), {}
            )
        raise CypherSyntaxError(
            "unsupported aggregate expression shape: "
            f"{type(expr).__name__}"
        )

    def _aggregate(self, call: ast.FunctionCall, rows: List[Row]) -> Any:
        name = call.name.lower()
        if name == "count" and not call.args:
            return len(rows)
        if len(call.args) != 1:
            raise CypherSyntaxError(f"{call.name}() takes exactly one argument")

        values = []
        for row in rows:
            value = self.evaluator.evaluate(call.args[0], row)
            if value is not None:
                values.append(value)
        if call.distinct:
            seen = set()
            unique = []
            for value in values:
                key = V.equivalence_key(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique

        if name == "count":
            return len(values)
        if name == "collect":
            return values
        if name == "sum":
            total: Any = 0
            for value in values:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise CypherTypeError("sum() requires numbers")
                total = total + value
            return total
        if name == "avg":
            if not values:
                return None
            for value in values:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise CypherTypeError("avg() requires numbers")
            return sum(values) / len(values)
        if name in ("min", "max"):
            if not values:
                return None
            ordered = sorted(values, key=V.order_key)
            return ordered[0] if name == "min" else ordered[-1]
        if name in ("stdev", "stdevp"):
            numbers = []
            for value in values:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise CypherTypeError(f"{name}() requires numbers")
                numbers.append(float(value))
            if len(numbers) < 2:
                return 0.0
            if name == "stdev":
                return statistics.stdev(numbers)
            return statistics.pstdev(numbers)
        raise CypherSyntaxError(f"unknown aggregate {call.name}()")

    # -- CALL ----------------------------------------------------------

    def _call(self, clause: ast.Call, table: BindingTable) -> BindingTable:
        proc = self.procedures.get(clause.procedure)
        if proc is None:
            raise CypherRuntimeError(
                f"there is no procedure named `{clause.procedure}`"
            )
        args = [self.evaluator.evaluate(arg, {}) for arg in clause.args]
        proc_columns, proc_rows = proc(self.graph, args)

        if clause.yield_items:
            selected = []
            for name, alias in clause.yield_items:
                if name not in proc_columns:
                    raise CypherSyntaxError(
                        f"procedure `{clause.procedure}` does not yield `{name}`"
                    )
                selected.append((proc_columns.index(name), alias or name))
        else:
            selected = [(index, name) for index, name in enumerate(proc_columns)]

        out_columns = table.columns + [alias for _idx, alias in selected]
        out_rows: List[Row] = []
        for row in table.rows:
            for proc_row in proc_rows:
                new_row = dict(row)
                for index, alias in selected:
                    new_row[alias] = proc_row[index]
                out_rows.append(new_row)
        return BindingTable(out_columns, out_rows)

    # -- write clauses (graph initializer) --------------------------------

    def _create(self, clause: ast.Create, table: BindingTable) -> BindingTable:
        new_vars: List[str] = []
        for pattern in clause.patterns:
            for name in pattern.variables():
                if name not in table.columns and name not in new_vars:
                    new_vars.append(name)
        out_rows: List[Row] = []
        for row in table.rows:
            merged = dict(row)
            for pattern in clause.patterns:
                self._create_pattern(pattern, merged)
            out_rows.append(merged)
        return BindingTable(table.columns + new_vars, out_rows)

    def _create_pattern(self, pattern: ast.PathPattern, row: Row) -> None:
        nodes: List[Node] = []
        for node_pattern in pattern.nodes:
            if node_pattern.variable and node_pattern.variable in row:
                existing = row[node_pattern.variable]
                if not isinstance(existing, Node):
                    raise CypherTypeError(
                        f"variable `{node_pattern.variable}` is not a node"
                    )
                nodes.append(existing)
                continue
            properties = {}
            if node_pattern.properties is not None:
                properties = {
                    key: self.evaluator.evaluate(value, row)
                    for key, value in node_pattern.properties.items
                }
            node = self.graph.add_node(node_pattern.labels, properties)
            if node_pattern.variable:
                row[node_pattern.variable] = node
            nodes.append(node)

        for index, rel_pattern in enumerate(pattern.relationships):
            if rel_pattern.direction == ast.BOTH:
                raise CypherSyntaxError("CREATE requires directed relationships")
            if len(rel_pattern.types) != 1:
                raise CypherSyntaxError("CREATE requires exactly one relationship type")
            properties = {}
            if rel_pattern.properties is not None:
                properties = {
                    key: self.evaluator.evaluate(value, row)
                    for key, value in rel_pattern.properties.items
                }
            source, target = nodes[index], nodes[index + 1]
            if rel_pattern.direction == ast.IN:
                source, target = target, source
            rel = self.graph.add_relationship(
                source.id, target.id, rel_pattern.types[0], properties
            )
            if rel_pattern.variable:
                row[rel_pattern.variable] = rel

    def _set(self, clause: ast.SetClause, table: BindingTable) -> BindingTable:
        for row in table.rows:
            for item in clause.items:
                target = row.get(item.subject)
                if target is None:
                    continue
                if not isinstance(target, (Node, Relationship)):
                    raise CypherTypeError(
                        f"SET requires a node or relationship, got "
                        f"{V.type_name(target)}"
                    )
                value = self.evaluator.evaluate(item.value, row)
                if value is None:
                    target.properties.pop(item.key, None)
                else:
                    target.properties[item.key] = value
        # SET mutates properties in place, bypassing the structural mutators
        # that normally drop the graph's cached views.
        self.graph.invalidate_property_index()
        return table

    def _delete(self, clause: ast.Delete, table: BindingTable) -> BindingTable:
        deleted_nodes = set()
        deleted_rels = set()
        for row in table.rows:
            for expr in clause.expressions:
                target = self.evaluator.evaluate(expr, row)
                if target is None:
                    continue
                if isinstance(target, Relationship):
                    if target.id not in deleted_rels:
                        self.graph.remove_relationship(target.id)
                        deleted_rels.add(target.id)
                elif isinstance(target, Node):
                    if target.id in deleted_nodes:
                        continue
                    if clause.detach:
                        self.graph.detach_delete_node(target.id)
                    else:
                        self.graph.remove_node(target.id)
                    deleted_nodes.add(target.id)
                else:
                    raise CypherTypeError("DELETE requires a node or relationship")
        return table

    def _remove(self, clause: ast.Remove, table: BindingTable) -> BindingTable:
        for row in table.rows:
            for item in clause.items:
                target = row.get(item.subject)
                if target is None:
                    continue
                if item.key is not None:
                    if not isinstance(target, (Node, Relationship)):
                        raise CypherTypeError("REMOVE requires an element")
                    target.properties.pop(item.key, None)
                else:
                    if not isinstance(target, Node):
                        raise CypherTypeError("REMOVE label requires a node")
                    # Route through the graph so the label index stays in
                    # sync with the node's rebuilt label set.
                    self.graph.set_node_labels(
                        target.id, target.labels - {item.label}
                    )
        # REMOVE mutates properties in place, like SET above.
        self.graph.invalidate_property_index()
        return table

    def _merge(self, clause: ast.Merge, table: BindingTable) -> BindingTable:
        new_vars = [
            name
            for name in clause.pattern.variables()
            if name not in table.columns
        ]
        out_rows: List[Row] = []
        for row in table.rows:
            matches = list(self.matcher.match((clause.pattern,), row))
            if matches:
                for bindings in matches:
                    merged = dict(row)
                    merged.update(bindings)
                    out_rows.append(merged)
            else:
                merged = dict(row)
                self._create_pattern(clause.pattern, merged)
                out_rows.append(merged)
        return BindingTable(table.columns + new_vars, out_rows)


def _as_literal(value: Any) -> ast.Expression:
    """Wrap a computed value so it can re-enter the evaluator."""
    if isinstance(value, list):
        return ast.ListLiteral(tuple(_as_literal(item) for item in value))
    return ast.Literal(value)
