"""Expression evaluation with openCypher semantics.

The evaluator interprets :mod:`repro.cypher.ast` expression trees against a
row of bindings and the current graph.  It implements:

* three-valued logic for the boolean connectives and comparisons;
* null propagation through operators and property accesses;
* Cypher arithmetic — integer division truncates, ``%`` keeps the dividend's
  sign (Java-style, as in Neo4j), ``^`` always yields a float, and integer
  overflow beyond 64 bits is an error (production GDBs store 64-bit ints);
* string predicates (STARTS WITH / ENDS WITH / CONTAINS / ``=~``);
* list membership, indexing, slicing, and concatenation;
* the 61-function library plus ``CASE`` expressions.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Optional

from repro.cypher import ast
from repro.cypher.functions import FunctionError, call_function, is_aggregate
from repro.engine.envelope import ENVELOPE
from repro.engine.errors import CypherRuntimeError, CypherTypeError
from repro.graph import values as V
from repro.graph.model import Node, PropertyGraph, Relationship
from repro.obs import PROBE

__all__ = ["Evaluator", "has_aggregate"]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _check_int64(value: Any) -> Any:
    if isinstance(value, int) and not isinstance(value, bool):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise CypherRuntimeError("integer overflow")
    return value


def has_aggregate(expr: ast.Expression) -> bool:
    """Whether *expr* contains an aggregation function call anywhere."""
    if isinstance(expr, ast.CountStar):
        return True
    if isinstance(expr, ast.FunctionCall) and is_aggregate(expr.name):
        return True
    return any(has_aggregate(child) for child in expr.children())


class Evaluator:
    """Evaluates expressions against a binding row and a graph."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        # Per-call profiling tally; a plain int increment because this is
        # the hottest entry point in the repo (once per row per expression).
        # The owning engine flushes it into the metrics registry per query.
        self.profile_calls = 0

    # -- public API ---------------------------------------------------

    def evaluate(self, expr: ast.Expression, row: Dict[str, Any]) -> Any:
        """Evaluate *expr* in the environment *row*; returns a Cypher value."""
        if ENVELOPE.limit is not None:
            # One step per top-level expression evaluation: the unit the
            # campaign's resource envelope budgets runaway queries in.
            ENVELOPE.charge()
        if PROBE.on:
            self.profile_calls += 1
        handler = _DISPATCH.get(expr.__class__)
        if handler is not None:
            value = handler(self, expr, row)
        else:
            value = self._eval_slow(expr, row)
        if (
            value.__class__ is tuple
            and len(value) == 2
            and value[0] == "__node_ref__"
        ):
            return self.graph.node(value[1])
        return value

    def evaluate_predicate(self, expr: ast.Expression, row: Dict[str, Any]) -> Optional[bool]:
        """Evaluate *expr* as a WHERE predicate (boolean or null)."""
        return V.coerce_to_boolean(self.evaluate(expr, row))

    # -- internals ----------------------------------------------------

    def _resolve(self, value: Any) -> Any:
        """Resolve the startNode/endNode node-reference convention."""
        if isinstance(value, tuple) and len(value) == 2 and value[0] == "__node_ref__":
            return self.graph.node(value[1])
        return value

    def _eval(self, expr: ast.Expression, row: Dict[str, Any]) -> Any:
        # Exact-type dispatch covers every concrete AST node; subclasses (if
        # any appear) fall back to the isinstance chain below.
        handler = _DISPATCH.get(expr.__class__)
        if handler is not None:
            return handler(self, expr, row)
        return self._eval_slow(expr, row)

    def _eval_slow(self, expr: ast.Expression, row: Dict[str, Any]) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Variable):
            return self._eval_variable(expr, row)
        if isinstance(expr, ast.PropertyAccess):
            return self._property(expr, row)
        if isinstance(expr, ast.Unary):
            return self._unary(expr, row)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, row)
        if isinstance(expr, ast.IsNull):
            return self._eval_is_null(expr, row)
        if isinstance(expr, ast.FunctionCall):
            return self._eval_function(expr, row)
        if isinstance(expr, ast.CountStar):
            raise CypherRuntimeError("count(*) not allowed in this context")
        if isinstance(expr, ast.ListLiteral):
            return self._eval_list_literal(expr, row)
        if isinstance(expr, ast.MapLiteral):
            return self._eval_map_literal(expr, row)
        if isinstance(expr, ast.ListComprehension):
            return self._comprehension(expr, row)
        if isinstance(expr, ast.ListIndex):
            return self._index(expr, row)
        if isinstance(expr, ast.ListSlice):
            return self._slice(expr, row)
        if isinstance(expr, ast.CaseExpression):
            return self._case(expr, row)
        if isinstance(expr, ast.PatternPredicate):
            return self._pattern_predicate(expr, row)
        if isinstance(expr, ast.LabelsPredicate):
            return self._eval_labels_predicate(expr, row)
        raise CypherRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_literal(self, expr: ast.Literal, row: Dict[str, Any]) -> Any:
        return expr.value

    def _eval_variable(self, expr: ast.Variable, row: Dict[str, Any]) -> Any:
        if expr.name not in row:
            raise CypherRuntimeError(f"variable `{expr.name}` not defined")
        return row[expr.name]

    def _eval_is_null(self, expr: ast.IsNull, row: Dict[str, Any]) -> Any:
        value = self.evaluate(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)

    def _eval_function(self, expr: ast.FunctionCall, row: Dict[str, Any]) -> Any:
        if is_aggregate(expr.name):
            raise CypherRuntimeError(
                f"aggregate {expr.name}() not allowed in this context"
            )
        args = [self.evaluate(arg, row) for arg in expr.args]
        try:
            return call_function(expr.name, args)
        except FunctionError:
            raise

    def _eval_count_star(self, expr: ast.CountStar, row: Dict[str, Any]) -> Any:
        raise CypherRuntimeError("count(*) not allowed in this context")

    def _eval_list_literal(self, expr: ast.ListLiteral, row: Dict[str, Any]) -> Any:
        return [self.evaluate(item, row) for item in expr.items]

    def _eval_map_literal(self, expr: ast.MapLiteral, row: Dict[str, Any]) -> Any:
        return {key: self.evaluate(value, row) for key, value in expr.items}

    def _eval_labels_predicate(
        self, expr: ast.LabelsPredicate, row: Dict[str, Any]
    ) -> Any:
        subject = self.evaluate(expr.subject, row)
        if subject is None:
            return None
        if not isinstance(subject, Node):
            raise CypherTypeError("label predicate requires a node")
        return all(label in subject.labels for label in expr.labels)

    def _pattern_predicate(self, expr: ast.PatternPredicate, row: Dict[str, Any]) -> bool:
        # Existential check: does at least one match extend the current row?
        from repro.engine.matcher import Matcher

        for name in expr.pattern.variables():
            if name in row and row[name] is None:
                return False
        matcher = Matcher(self.graph)
        for _match in matcher.match((expr.pattern,), row):
            return True
        return False

    def _property(self, expr: ast.PropertyAccess, row: Dict[str, Any]) -> Any:
        subject = self.evaluate(expr.subject, row)
        if subject is None:
            return None
        if isinstance(subject, (Node, Relationship)):
            return subject.properties.get(expr.key)
        if isinstance(subject, dict):
            return subject.get(expr.key)
        raise CypherTypeError(
            f"cannot access property .{expr.key} on {V.type_name(subject)}"
        )

    def _unary(self, expr: ast.Unary, row: Dict[str, Any]) -> Any:
        operand = self.evaluate(expr.operand, row)
        if expr.op == "NOT":
            return V.ternary_not(V.coerce_to_boolean(operand))
        if operand is None:
            return None
        if expr.op == "-":
            if isinstance(operand, bool) or not isinstance(operand, (int, float)):
                raise CypherTypeError("unary minus requires a number")
            return _check_int64(-operand)
        if expr.op == "+":
            if isinstance(operand, bool) or not isinstance(operand, (int, float)):
                raise CypherTypeError("unary plus requires a number")
            return operand
        raise CypherRuntimeError(f"unknown unary operator {expr.op!r}")

    def _binary(self, expr: ast.Binary, row: Dict[str, Any]) -> Any:
        op = expr.op

        connective = _CONNECTIVES.get(op)
        if connective is not None:
            left = V.coerce_to_boolean(self.evaluate(expr.left, row))
            # Short circuiting is observable through errors, but Cypher
            # evaluates eagerly; keep eager to mirror the reference.
            right = V.coerce_to_boolean(self.evaluate(expr.right, row))
            return connective(left, right)

        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)

        handler = _BINOPS.get(op)
        if handler is not None:
            return handler(self, left, right)
        return self._arithmetic(op, left, right)

    def _op_eq(self, left: Any, right: Any) -> Any:
        return V.ternary_equals(left, right)

    def _op_neq(self, left: Any, right: Any) -> Any:
        return V.ternary_not(V.ternary_equals(left, right))

    def _op_lt(self, left: Any, right: Any) -> Any:
        verdict = V.ternary_compare(left, right)
        return None if verdict is None else verdict < 0

    def _op_le(self, left: Any, right: Any) -> Any:
        verdict = V.ternary_compare(left, right)
        return None if verdict is None else verdict <= 0

    def _op_gt(self, left: Any, right: Any) -> Any:
        verdict = V.ternary_compare(left, right)
        return None if verdict is None else verdict > 0

    def _op_ge(self, left: Any, right: Any) -> Any:
        verdict = V.ternary_compare(left, right)
        return None if verdict is None else verdict >= 0

    def _op_starts_with(self, left: Any, right: Any) -> Any:
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        return left.startswith(right)

    def _op_ends_with(self, left: Any, right: Any) -> Any:
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        return left.endswith(right)

    def _op_contains(self, left: Any, right: Any) -> Any:
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        return right in left

    def _op_regex(self, left: Any, right: Any) -> Any:
        if not isinstance(left, str) or not isinstance(right, str):
            return None
        try:
            return re.fullmatch(right, left) is not None
        except re.error as exc:
            raise CypherRuntimeError(f"invalid regex: {exc}") from exc

    def _in(self, needle: Any, haystack: Any) -> Optional[bool]:
        if haystack is None:
            return None
        if not isinstance(haystack, list):
            raise CypherTypeError("IN requires a list on the right-hand side")
        # `null IN []` is false (no elements to compare); with a non-empty
        # list a null needle yields null.
        saw_null = needle is None and bool(haystack)
        for item in haystack:
            verdict = V.ternary_equals(needle, item)
            if verdict is True:
                return True
            if verdict is None:
                saw_null = True
        return None if saw_null else False

    def _arithmetic(self, op: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None

        if op == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            if isinstance(left, list) and isinstance(right, list):
                return left + right
            if isinstance(left, list):
                return left + [right]
            if isinstance(right, list):
                return [left] + right

        for operand in (left, right):
            if isinstance(operand, bool) or not isinstance(operand, (int, float)):
                raise CypherTypeError(
                    f"operator {op} cannot combine {V.type_name(left)} and "
                    f"{V.type_name(right)}"
                )

        both_int = isinstance(left, int) and isinstance(right, int)
        try:
            if op == "+":
                return _check_int64(left + right)
            if op == "-":
                return _check_int64(left - right)
            if op == "*":
                return _check_int64(left * right)
            if op == "/":
                if both_int:
                    if right == 0:
                        raise CypherRuntimeError("/ by zero")
                    return _check_int64(int(left / right))  # truncate toward zero
                if right == 0:
                    if left == 0:
                        return float("nan")
                    return math.copysign(float("inf"), left) * math.copysign(1.0, right)
                return left / right
            if op == "%":
                if right == 0:
                    if both_int:
                        raise CypherRuntimeError("% by zero")
                    return float("nan")
                result = math.fmod(left, right)
                return int(result) if both_int else result
            if op == "^":
                try:
                    result = float(left) ** float(right)
                except (OverflowError, ZeroDivisionError):
                    raise CypherRuntimeError("exponentiation out of range")
                if isinstance(result, complex):
                    return float("nan")
                return result
        except OverflowError as exc:
            raise CypherRuntimeError("arithmetic overflow") from exc
        raise CypherRuntimeError(f"unknown operator {op!r}")

    def _comprehension(self, expr: ast.ListComprehension, row: Dict[str, Any]) -> Any:
        source = self.evaluate(expr.source, row)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(
                f"list comprehension requires a list, got {V.type_name(source)}"
            )
        out = []
        for item in source:
            inner = dict(row)
            inner[expr.variable] = item
            if expr.where is not None:
                verdict = V.coerce_to_boolean(self.evaluate(expr.where, inner))
                if verdict is not True:
                    continue
            if expr.projection is not None:
                out.append(self.evaluate(expr.projection, inner))
            else:
                out.append(item)
        return out

    def _index(self, expr: ast.ListIndex, row: Dict[str, Any]) -> Any:
        subject = self.evaluate(expr.subject, row)
        index = self.evaluate(expr.index, row)
        if subject is None or index is None:
            return None
        if isinstance(subject, dict):
            if not isinstance(index, str):
                raise CypherTypeError("map index must be a string")
            return subject.get(index)
        if isinstance(subject, (list, str)):
            if isinstance(index, bool) or not isinstance(index, int):
                raise CypherTypeError("list index must be an integer")
            if index < -len(subject) or index >= len(subject):
                return None
            return subject[index]
        raise CypherTypeError(f"cannot index {V.type_name(subject)}")

    def _slice(self, expr: ast.ListSlice, row: Dict[str, Any]) -> Any:
        subject = self.evaluate(expr.subject, row)
        if subject is None:
            return None
        if not isinstance(subject, (list, str)):
            raise CypherTypeError(f"cannot slice {V.type_name(subject)}")
        start = self.evaluate(expr.start, row) if expr.start is not None else None
        end = self.evaluate(expr.end, row) if expr.end is not None else None
        if (expr.start is not None and start is None) or (
            expr.end is not None and end is None
        ):
            return None
        for bound in (start, end):
            if bound is not None and (
                isinstance(bound, bool) or not isinstance(bound, int)
            ):
                raise CypherTypeError("slice bounds must be integers")
        return subject[slice(start, end)]

    def _case(self, expr: ast.CaseExpression, row: Dict[str, Any]) -> Any:
        if expr.subject is not None:
            subject = self.evaluate(expr.subject, row)
            for alt in expr.alternatives:
                candidate = self.evaluate(alt.when, row)
                if V.ternary_equals(subject, candidate) is True:
                    return self.evaluate(alt.then, row)
        else:
            for alt in expr.alternatives:
                verdict = V.coerce_to_boolean(self.evaluate(alt.when, row))
                if verdict is True:
                    return self.evaluate(alt.then, row)
        if expr.default is not None:
            return self.evaluate(expr.default, row)
        return None


# Binary-operator dispatch: boolean connectives coerce their operands, all
# other operators receive plainly evaluated values; arithmetic is the
# fallthrough in Evaluator._binary.
_CONNECTIVES = {"AND": V.ternary_and, "OR": V.ternary_or, "XOR": V.ternary_xor}
_BINOPS = {
    "=": Evaluator._op_eq,
    "<>": Evaluator._op_neq,
    "<": Evaluator._op_lt,
    "<=": Evaluator._op_le,
    ">": Evaluator._op_gt,
    ">=": Evaluator._op_ge,
    "IN": Evaluator._in,
    "STARTS WITH": Evaluator._op_starts_with,
    "ENDS WITH": Evaluator._op_ends_with,
    "CONTAINS": Evaluator._op_contains,
    "=~": Evaluator._op_regex,
}

# Exact-type handler table for Evaluator._eval; ordering is irrelevant here,
# unlike the isinstance chain it replaces, because lookup is by concrete type.
_DISPATCH = {
    ast.Literal: Evaluator._eval_literal,
    ast.Variable: Evaluator._eval_variable,
    ast.PropertyAccess: Evaluator._property,
    ast.Unary: Evaluator._unary,
    ast.Binary: Evaluator._binary,
    ast.IsNull: Evaluator._eval_is_null,
    ast.FunctionCall: Evaluator._eval_function,
    ast.CountStar: Evaluator._eval_count_star,
    ast.ListLiteral: Evaluator._eval_list_literal,
    ast.MapLiteral: Evaluator._eval_map_literal,
    ast.ListComprehension: Evaluator._comprehension,
    ast.ListIndex: Evaluator._index,
    ast.ListSlice: Evaluator._slice,
    ast.CaseExpression: Evaluator._case,
    ast.PatternPredicate: Evaluator._pattern_predicate,
    ast.LabelsPredicate: Evaluator._eval_labels_predicate,
}
