"""Intermediate result representation.

Cypher executes clause by clause; "each clause takes as input a table of
intermediate status and produces a new table" (§2.2 of the paper).  A
:class:`BindingTable` is that table: an ordered list of column names plus a
bag (list) of rows, where each row maps column names to Cypher values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.graph.values import equivalence_key

__all__ = ["Row", "BindingTable", "ResultSet"]


Row = Dict[str, Any]


def _format_value(value: Any, float_digits: Optional[int]) -> str:
    """One value the way a driver prints it (see ResultSet.to_table)."""
    if isinstance(value, float) and float_digits:
        return f"{value:.{float_digits}g}"
    if isinstance(value, list):
        return "[" + ", ".join(
            _format_value(v, float_digits) for v in value
        ) + "]"
    return repr(value)


@dataclass
class BindingTable:
    """An ordered bag of variable bindings flowing between clauses."""

    columns: List[str] = field(default_factory=list)
    rows: List[Row] = field(default_factory=list)

    @classmethod
    def unit(cls) -> "BindingTable":
        """The input to the first clause: one empty row, no columns."""
        return cls(columns=[], rows=[{}])

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def copy(self) -> "BindingTable":
        return BindingTable(list(self.columns), [dict(row) for row in self.rows])

    def distinct(self) -> "BindingTable":
        """Remove duplicate rows under Cypher equivalence."""
        seen = set()
        out: List[Row] = []
        for row in self.rows:
            key = tuple(equivalence_key(row.get(col)) for col in self.columns)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return BindingTable(list(self.columns), out)


class ResultSet:
    """The final output of a query: column names and value tuples.

    Comparison is bag-based (order-insensitive) unless the query ended with
    an ``ORDER BY``, in which case ``ordered`` is set and comparisons respect
    row order.  This mirrors how the paper's oracle must treat results.
    """

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]],
                 ordered: bool = False):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        self.ordered = ordered

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_table(self, dialect: Any = None) -> List[List[str]]:
        """Rows rendered as driver-formatted strings.

        *dialect* supplies per-engine formatting quirks (currently
        ``float_format_digits``, duck-typed so this module does not import
        the dialect layer); ``None`` renders with full float precision.
        This is the one documented surface differential comparison goes
        through — ``GraphDatabase.format_result`` delegates here.
        """
        digits = getattr(dialect, "float_format_digits", None)
        return [
            [_format_value(value, digits) for value in row]
            for row in self.rows
        ]

    def _bag(self) -> Dict[tuple, int]:
        bag: Dict[tuple, int] = {}
        for row in self.rows:
            key = tuple(equivalence_key(value) for value in row)
            bag[key] = bag.get(key, 0) + 1
        return bag

    def same_rows(self, other: "ResultSet") -> bool:
        """Bag equality of the row multisets (column order must match)."""
        if self.columns != other.columns:
            return False
        return self._bag() == other._bag()

    def is_sub_bag_of(self, other: "ResultSet") -> bool:
        """Whether every row of self occurs in other at least as often."""
        if self.columns != other.columns:
            return False
        mine, theirs = self._bag(), other._bag()
        return all(theirs.get(key, 0) >= count for key, count in mine.items())

    @staticmethod
    def union_all(results: Sequence["ResultSet"]) -> "ResultSet":
        """Bag union of several result sets (used by metamorphic oracles)."""
        if not results:
            return ResultSet([], [])
        columns = results[0].columns
        rows: List[tuple] = []
        for result in results:
            if result.columns != columns:
                raise ValueError("column mismatch in union")
            rows.extend(result.rows)
        return ResultSet(columns, rows)
