"""Pattern matching: finding subgraphs that satisfy MATCH patterns.

Implements openCypher matching semantics:

* comma-separated patterns within one MATCH are matched jointly (shared
  variables join them, otherwise they form a cartesian product);
* **relationship uniqueness**: within a single MATCH clause, distinct
  relationship pattern elements must bind to distinct relationships.  The
  paper (§4) notes Kùzu and FalkorDB deviate from this, so uniqueness is a
  flag the dialect layer controls;
* variables already bound by earlier clauses constrain the match;
* direction, label, type, and inline property-map constraints.

Matching is deterministic (candidates are enumerated in id order) so that
engine comparisons are reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.cypher import ast
from repro.engine.envelope import ENVELOPE
from repro.engine.errors import CypherTypeError
from repro.engine.evaluator import Evaluator
from repro.graph import values as V
from repro.graph.model import Node, Path, PropertyGraph, Relationship
from repro.obs import PROBE

__all__ = ["Matcher"]


class Matcher:
    """Matches path patterns against a property graph."""

    def __init__(self, graph: PropertyGraph, enforce_rel_uniqueness: bool = True):
        self.graph = graph
        self.enforce_rel_uniqueness = enforce_rel_uniqueness
        self._evaluator = Evaluator(graph)
        # Per-call profiling tally; a plain int so the hot path stays cheap.
        # The owning engine flushes it into the metrics registry per query.
        self.profile_calls = 0

    # -- public API ---------------------------------------------------

    def match(
        self,
        patterns: Tuple[ast.PathPattern, ...],
        row: Dict[str, Any],
    ) -> Iterator[Dict[str, Any]]:
        """Yield all extensions of *row* satisfying every pattern.

        Each yielded dict contains only the *new* bindings introduced by the
        patterns (the caller merges them into the row).
        """
        if PROBE.on:
            self.profile_calls += 1
        yield from self._match_from(patterns, 0, dict(row), set())

    def _match_from(
        self,
        patterns: Tuple[ast.PathPattern, ...],
        index: int,
        bindings: Dict[str, Any],
        used_rels: Set[int],
    ) -> Iterator[Dict[str, Any]]:
        if index == len(patterns):
            yield dict(bindings)
            return
        for extended, used in self._match_chain(patterns[index], bindings, used_rels):
            yield from self._match_from(patterns, index + 1, extended, used)

    # -- single chain ---------------------------------------------------

    def _match_chain(
        self,
        pattern: ast.PathPattern,
        bindings: Dict[str, Any],
        used_rels: Set[int],
    ) -> Iterator[Tuple[Dict[str, Any], Set[int]]]:
        first = pattern.nodes[0]
        for node in self._node_candidates(first, bindings):
            new_bindings = dict(bindings)
            if first.variable:
                new_bindings[first.variable] = node
            yield from self._extend(
                pattern, 0, node, new_bindings, set(used_rels), [node], []
            )

    def _extend(
        self,
        pattern: ast.PathPattern,
        rel_index: int,
        current: Node,
        bindings: Dict[str, Any],
        used_rels: Set[int],
        chain_nodes: List[Node],
        chain_rels: List[Relationship],
    ) -> Iterator[Tuple[Dict[str, Any], Set[int]]]:
        if ENVELOPE.limit is not None:
            # One step per partial-chain extension: variable-length patterns
            # blow up here, not in the evaluator, so the resource envelope
            # must meter this loop too.
            ENVELOPE.charge()
        if rel_index == len(pattern.relationships):
            if pattern.path_variable:
                bindings = dict(bindings)
                bindings[pattern.path_variable] = Path(
                    tuple(chain_nodes), tuple(chain_rels)
                )
            yield bindings, used_rels
            return

        rel_pattern = pattern.relationships[rel_index]
        next_node_pattern = pattern.nodes[rel_index + 1]

        for rel, target_id in self._rel_candidates(rel_pattern, current, bindings):
            if self.enforce_rel_uniqueness and rel.id in used_rels:
                continue
            target = self.graph.node(target_id)
            if not self._node_matches(next_node_pattern, target, bindings):
                continue
            new_bindings = dict(bindings)
            if rel_pattern.variable:
                new_bindings[rel_pattern.variable] = rel
            if next_node_pattern.variable:
                new_bindings[next_node_pattern.variable] = target
            new_used = set(used_rels)
            new_used.add(rel.id)
            yield from self._extend(
                pattern, rel_index + 1, target, new_bindings, new_used,
                chain_nodes + [target], chain_rels + [rel],
            )

    # -- candidates -----------------------------------------------------

    def _node_candidates(
        self, node_pattern: ast.NodePattern, bindings: Dict[str, Any]
    ) -> Iterator[Node]:
        if node_pattern.variable and node_pattern.variable in bindings:
            bound = bindings[node_pattern.variable]
            if bound is None:
                return  # null from OPTIONAL MATCH never re-matches
            if not isinstance(bound, Node):
                raise CypherTypeError(
                    f"variable `{node_pattern.variable}` is not a node"
                )
            if self._node_matches(node_pattern, bound, bindings, check_binding=False):
                yield bound
            return

        if node_pattern.labels:
            # Label index lookup; intersect on the first label.
            candidates = self.graph.nodes_with_label_sorted(node_pattern.labels[0])
        else:
            candidates = self.graph.nodes_sorted()

        for node in candidates:
            if self._node_matches(node_pattern, node, bindings, check_binding=False):
                yield node

    def _node_matches(
        self,
        node_pattern: ast.NodePattern,
        node: Node,
        bindings: Dict[str, Any],
        check_binding: bool = True,
    ) -> bool:
        if check_binding and node_pattern.variable and node_pattern.variable in bindings:
            bound = bindings[node_pattern.variable]
            if not isinstance(bound, Node) or bound.id != node.id:
                return False
        if any(label not in node.labels for label in node_pattern.labels):
            return False
        if node_pattern.properties is not None:
            if not self._properties_match(node_pattern.properties, node, bindings):
                return False
        return True

    def _rel_candidates(
        self,
        rel_pattern: ast.RelationshipPattern,
        current: Node,
        bindings: Dict[str, Any],
    ) -> Iterator[Tuple[Relationship, int]]:
        """Yield (relationship, far-end node id) pairs leaving *current*."""
        direction = rel_pattern.direction

        if rel_pattern.variable and rel_pattern.variable in bindings:
            bound = bindings[rel_pattern.variable]
            if bound is None:
                return
            if not isinstance(bound, Relationship):
                raise CypherTypeError(
                    f"variable `{rel_pattern.variable}` is not a relationship"
                )
            for rel, far in self._enumerate_rels(direction, current):
                if rel.id == bound.id and self._rel_matches(
                    rel_pattern, rel, bindings
                ):
                    yield rel, far
            return

        for rel, far in self._enumerate_rels(direction, current):
            if self._rel_matches(rel_pattern, rel, bindings):
                yield rel, far

    def _enumerate_rels(
        self, direction: str, current: Node
    ) -> Iterator[Tuple[Relationship, int]]:
        if direction in (ast.OUT, ast.BOTH):
            for rel in self.graph.outgoing_sorted(current.id):
                yield rel, rel.end
        if direction in (ast.IN, ast.BOTH):
            for rel in self.graph.incoming_sorted(current.id):
                # Skip self-loops already produced by the outgoing side.
                if direction == ast.BOTH and rel.start == rel.end:
                    continue
                yield rel, rel.start

    def _rel_matches(
        self,
        rel_pattern: ast.RelationshipPattern,
        rel: Relationship,
        bindings: Dict[str, Any],
    ) -> bool:
        if rel_pattern.types and rel.type not in rel_pattern.types:
            return False
        if rel_pattern.properties is not None:
            if not self._properties_match(rel_pattern.properties, rel, bindings):
                return False
        return True

    def _properties_match(
        self, props: ast.MapLiteral, element, bindings: Dict[str, Any]
    ) -> bool:
        for key, value_expr in props.items:
            expected = self._evaluator.evaluate(value_expr, bindings)
            actual = element.properties.get(key)
            if V.ternary_equals(actual, expected) is not True:
                return False
        return True
