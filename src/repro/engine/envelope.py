"""The evaluation resource envelope: a step budget for runaway queries.

A synthesized query can be *semantically* fine and still be operationally
pathological — a variable-length pattern that makes the matcher enumerate an
exponential path set, or an expression tree deep enough to exhaust the
interpreter stack.  In a long unattended campaign such a query must cost one
judgement, not the campaign: the kernel wraps every ``tester.judge`` call in
an **evaluation budget**, and the evaluator/matcher hot paths charge one
step per unit of work.  Exceeding the budget raises the typed
:class:`~repro.engine.errors.EvaluationBudgetExceeded`.

Two properties matter:

* **Not a Cypher error.**  ``EvaluationBudgetExceeded`` deliberately does
  *not* subclass :class:`~repro.graph.values.CypherError`, so tester oracles
  (which catch engine errors and turn them into discrepancy reports) never
  see it — it propagates to the campaign kernel, which records it as a
  ``harness_error``, never as a bug.
* **Zero cost when off.**  The process-wide :data:`ENVELOPE` has
  ``limit=None`` by default; hot paths guard with one attribute load and a
  branch, mirroring :data:`repro.obs.PROBE`.  Enabling or exhausting a
  budget draws no randomness, so campaign RNG streams are unchanged — only
  judgements that blow the budget differ, and those differ deterministically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.engine.errors import EvaluationBudgetExceeded

__all__ = ["ResourceEnvelope", "ENVELOPE", "evaluation_budget", "parked_envelope"]


class ResourceEnvelope:
    """Process-wide evaluation step budget (disabled when ``limit`` is None)."""

    __slots__ = ("limit", "steps")

    def __init__(self) -> None:
        self.limit: Optional[int] = None
        self.steps: int = 0

    def charge(self, n: int = 1) -> None:
        """Consume *n* steps; raises once the budget is exhausted.

        Callers guard with ``if ENVELOPE.limit is not None`` so the disabled
        path never pays the call.
        """
        self.steps += n
        if self.steps > self.limit:  # type: ignore[operator]
            raise EvaluationBudgetExceeded(
                f"evaluation step budget exceeded "
                f"({self.steps} > {self.limit} steps)"
            )


#: The process-wide envelope every hot path checks (cf. ``repro.obs.PROBE``).
ENVELOPE = ResourceEnvelope()


@contextmanager
def evaluation_budget(limit: Optional[int]) -> Iterator[ResourceEnvelope]:
    """Scope an evaluation step budget around one judgement or replay.

    ``limit=None`` is a no-op (the common case costs nothing).  Budgets
    nest: the inner scope's counter starts fresh and the outer scope's
    state is restored on exit, even when the inner budget was blown.
    """
    if limit is None:
        yield ENVELOPE
        return
    previous = (ENVELOPE.limit, ENVELOPE.steps)
    ENVELOPE.limit, ENVELOPE.steps = int(limit), 0
    try:
        yield ENVELOPE
    finally:
        ENVELOPE.limit, ENVELOPE.steps = previous


@contextmanager
def parked_envelope() -> Iterator[None]:
    """Suspend any active budget for the scope, restoring it on exit.

    The dual-mode self-check (:mod:`repro.engine.plan`) runs the compiled
    pipeline *after* the interpreted reference has already been charged for
    the query; charging the same work twice would make budgeted dual
    campaigns blow budgets the interpreted campaign would not, breaking
    byte-identity.  Parking the envelope keeps the interpreted run the only
    metered one.
    """
    previous = (ENVELOPE.limit, ENVELOPE.steps)
    ENVELOPE.limit = None
    try:
        yield
    finally:
        ENVELOPE.limit, ENVELOPE.steps = previous
