"""Error hierarchy for the reference engine and simulated GDBs."""

from __future__ import annotations

from repro.graph.values import CypherError, CypherTypeError

__all__ = [
    "CypherError",
    "CypherSyntaxError",
    "CypherRuntimeError",
    "CypherTypeError",
    "DatabaseCrash",
    "EvaluationBudgetExceeded",
    "PlanDivergenceError",
    "ResourceExhausted",
]


class CypherSyntaxError(CypherError):
    """The query text or AST is malformed."""


class CypherRuntimeError(CypherError):
    """A well-formed query failed during evaluation (e.g. division by zero)."""


class DatabaseCrash(CypherError):
    """A simulated GDB crash (segfault/abort in the real system).

    Raised by injected non-logic faults; the test harness records these as
    "other bugs" (paper Table 3 distinguishes logic bugs from crashes,
    exceptions, and memory issues).
    """


class ResourceExhausted(CypherError):
    """A simulated hang / out-of-memory condition.

    The real Memgraph bug of Figure 9 hangs and consumes >50 GB; the
    simulation raises this instead of actually hanging the test process.
    """


class PlanDivergenceError(RuntimeError):
    """Compiled and interpreted execution disagreed in ``dual`` mode.

    Deliberately **not** a :class:`CypherError`, for the same reason as
    :class:`EvaluationBudgetExceeded`: tester oracles catch engine errors
    and turn them into discrepancy reports, but a divergence between the
    compiled operator pipeline and the tree-walking reference is a bug in
    *this* codebase, never in a simulated engine.  It must propagate past
    every oracle — and past the campaign kernel's harness-error handling —
    so the campaign cell fails loudly instead of laundering the bug into a
    fault report.
    """


class EvaluationBudgetExceeded(RuntimeError):
    """The evaluation resource envelope was blown (step budget / recursion).

    Deliberately **not** a :class:`CypherError`: tester oracles catch engine
    errors and turn them into discrepancy reports, but a blown budget is a
    *harness* condition, not target behavior.  It must propagate past every
    oracle to the campaign kernel, which records it as a ``harness_error``
    — never as a (false) bug.  Raised by
    :class:`repro.engine.envelope.ResourceEnvelope` when the step budget is
    exhausted, and by the engines when a deep AST trips Python's recursion
    limit mid-evaluation.
    """
