"""Error hierarchy for the reference engine and simulated GDBs."""

from __future__ import annotations

from repro.graph.values import CypherError, CypherTypeError

__all__ = [
    "CypherError",
    "CypherSyntaxError",
    "CypherRuntimeError",
    "CypherTypeError",
    "DatabaseCrash",
    "ResourceExhausted",
]


class CypherSyntaxError(CypherError):
    """The query text or AST is malformed."""


class CypherRuntimeError(CypherError):
    """A well-formed query failed during evaluation (e.g. division by zero)."""


class DatabaseCrash(CypherError):
    """A simulated GDB crash (segfault/abort in the real system).

    Raised by injected non-logic faults; the test harness records these as
    "other bugs" (paper Table 3 distinguishes logic bugs from crashes,
    exceptions, and memory issues).
    """


class ResourceExhausted(CypherError):
    """A simulated hang / out-of-memory condition.

    The real Memgraph bug of Figure 9 hangs and consumes >50 GB; the
    simulation raises this instead of actually hanging the test process.
    """
