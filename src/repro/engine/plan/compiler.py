"""Expression compilation: AST nodes to Python closures.

The tree-walking :class:`~repro.engine.evaluator.Evaluator` pays per-node
dispatch, envelope charging, and node-reference resolution on every
evaluation of every row.  Compiling an expression once into a closure tree
moves all of that to plan-build time: each closure does exactly the work of
the corresponding evaluator handler and nothing else.

Semantics are the evaluator's, verbatim — the closures share the evaluator's
own operator tables (``_BINOPS``, ``_CONNECTIVES``) and arithmetic helper
through a stateless module-level instance, so a semantic fix in the
interpreter is automatically a fix here.  The only behavioural difference is
cost accounting: the interpreter charges the resource envelope per AST node,
while compiled execution charges coarser per-row/per-extension steps in the
operators (see :mod:`repro.engine.plan.operators`).

The ``("__node_ref__", id)`` convention used by ``startNode``/``endNode`` is
resolved exactly where it can appear: immediately after a function call.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.cypher import ast
from repro.cypher.functions import (
    FunctionError,
    call_function,
    is_aggregate,
    lookup,
)
from repro.engine.errors import CypherRuntimeError, CypherTypeError
from repro.engine.evaluator import _BINOPS, _CONNECTIVES, Evaluator, _check_int64
from repro.engine.matcher import Matcher
from repro.graph import values as V
from repro.graph.model import Node, Relationship

__all__ = ["CompiledExpr", "compile_expr", "compile_predicate"]

# A compiled expression: (env, ctx) -> Cypher value.  ``env`` is the binding
# row (a plain dict) and ``ctx`` the ExecutionContext supplying the graph.
CompiledExpr = Callable[[Dict[str, Any], Any], Any]

# Stateless helper instance whose graph-independent methods (`_arithmetic`,
# `_in`, the `_op_*` comparison handlers) the closures reuse.  Its
# ``evaluate`` entry point is never called, so it never touches the graph,
# the envelope, or the probe tallies.
_OPS = Evaluator(None)  # type: ignore[arg-type]


_NOT_CONST = object()


def _fold_const(expr: ast.Expression) -> Any:
    """The constant value of a literal-only subtree, or ``_NOT_CONST``.

    Only shapes that can never raise fold: literals, and list/map literals
    whose elements all fold.  Folding shares one value object across
    evaluations; nothing in the value domain mutates operands in place, so
    the sharing is unobservable.
    """
    cls = expr.__class__
    if cls is ast.Literal:
        return expr.value
    if cls is ast.ListLiteral:
        items = []
        for item in expr.items:
            value = _fold_const(item)
            if value is _NOT_CONST:
                return _NOT_CONST
            items.append(value)
        return items
    if cls is ast.MapLiteral:
        pairs = {}
        for key, item in expr.items:
            value = _fold_const(item)
            if value is _NOT_CONST:
                return _NOT_CONST
            pairs[key] = value
        return pairs
    return _NOT_CONST


def compile_expr(expr: ast.Expression) -> CompiledExpr:
    """Compile *expr* into a closure with the evaluator's exact semantics."""
    constant = _fold_const(expr)
    if constant is not _NOT_CONST:
        return lambda env, ctx: constant
    handler = _COMPILERS.get(expr.__class__)
    if handler is not None:
        return handler(expr)
    # Unknown node kind: raise at evaluation time, like the interpreter.
    message = f"cannot evaluate {type(expr).__name__}"

    def unknown(env, ctx, _message=message):
        raise CypherRuntimeError(_message)

    return unknown


def compile_predicate(expr: ast.Expression) -> CompiledExpr:
    """Compile *expr* as a WHERE predicate yielding True/False/None."""
    fn = compile_expr(expr)

    def predicate(env, ctx):
        return V.coerce_to_boolean(fn(env, ctx))

    return predicate


# -- per-node compilers ----------------------------------------------------


def _c_literal(expr: ast.Literal) -> CompiledExpr:
    value = expr.value
    return lambda env, ctx: value


def _c_variable(expr: ast.Variable) -> CompiledExpr:
    name = expr.name

    def run(env, ctx):
        try:
            return env[name]
        except KeyError:
            raise CypherRuntimeError(f"variable `{name}` not defined")

    return run


def _c_property(expr: ast.PropertyAccess) -> CompiledExpr:
    key = expr.key

    # `var.key` — the overwhelmingly common shape — fuses the variable
    # lookup into the property closure: one call instead of two per access.
    if expr.subject.__class__ is ast.Variable:
        name = expr.subject.name

        def run_var(env, ctx):
            try:
                value = env[name]
            except KeyError:
                raise CypherRuntimeError(f"variable `{name}` not defined")
            cls = value.__class__
            if cls is Node or cls is Relationship:
                return value.properties.get(key)
            if value is None:
                return None
            if cls is dict or isinstance(value, dict):
                return value.get(key)
            if isinstance(value, (Node, Relationship)):
                return value.properties.get(key)
            raise CypherTypeError(
                f"cannot access property .{key} on {V.type_name(value)}"
            )

        return run_var

    subject = compile_expr(expr.subject)

    def run(env, ctx):
        value = subject(env, ctx)
        # Exact-class tests first: Node/Relationship are final in this
        # model, and graph elements dominate property access.
        cls = value.__class__
        if cls is Node or cls is Relationship:
            return value.properties.get(key)
        if value is None:
            return None
        if cls is dict or isinstance(value, dict):
            return value.get(key)
        if isinstance(value, (Node, Relationship)):
            return value.properties.get(key)
        raise CypherTypeError(
            f"cannot access property .{key} on {V.type_name(value)}"
        )

    return run


def _c_unary(expr: ast.Unary) -> CompiledExpr:
    operand = compile_expr(expr.operand)
    op = expr.op
    if op == "NOT":
        # ternary_not ∘ coerce_to_boolean inlined; non-boolean operands
        # still raise through coerce_to_boolean with the exact message.
        def run_not(env, ctx):
            value = operand(env, ctx)
            if value is None:
                return None
            if value.__class__ is not bool:
                V.coerce_to_boolean(value)
            return not value

        return run_not

    def run(env, ctx):
        value = operand(env, ctx)
        if value is None:
            return None
        if op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CypherTypeError("unary minus requires a number")
            return _check_int64(-value)
        if op == "+":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CypherTypeError("unary plus requires a number")
            return value
        raise CypherRuntimeError(f"unknown unary operator {op!r}")

    return run


def _c_binary(expr: ast.Binary) -> CompiledExpr:
    op = expr.op
    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    # Literal-only operands bind their value directly into the closure —
    # constants cannot raise, so skipping their "evaluation" is safe even
    # under Cypher's eager left-then-right order.
    lconst = _fold_const(expr.left)
    rconst = _fold_const(expr.right)

    connective = _CONNECTIVES.get(op)
    if connective is not None:
        # Cypher evaluates eagerly (observable through errors); both sides
        # always run, left first, exactly like the interpreter.
        if rconst is not _NOT_CONST:
            rbool = V.coerce_to_boolean(rconst)

            def run_connective_rc(env, ctx):
                return connective(V.coerce_to_boolean(left(env, ctx)), rbool)

            return run_connective_rc
        if lconst is not _NOT_CONST:
            lbool = V.coerce_to_boolean(lconst)

            def run_connective_lc(env, ctx):
                return connective(lbool, V.coerce_to_boolean(right(env, ctx)))

            return run_connective_lc

        # coerce_to_boolean inlined for the no-error case; non-boolean
        # operands still raise through it with the exact message.  AND/OR
        # additionally inline their Kleene tables (they dominate WHERE
        # clauses) so the hot path is closure + branches, zero calls.
        if op == "AND":
            def run_and(env, ctx):
                lhs = left(env, ctx)
                if lhs is not None and lhs.__class__ is not bool:
                    lhs = V.coerce_to_boolean(lhs)
                rhs = right(env, ctx)
                if rhs is not None and rhs.__class__ is not bool:
                    rhs = V.coerce_to_boolean(rhs)
                if lhs is False or rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return True

            return run_and
        if op == "OR":
            def run_or(env, ctx):
                lhs = left(env, ctx)
                if lhs is not None and lhs.__class__ is not bool:
                    lhs = V.coerce_to_boolean(lhs)
                rhs = right(env, ctx)
                if rhs is not None and rhs.__class__ is not bool:
                    rhs = V.coerce_to_boolean(rhs)
                if lhs is True or rhs is True:
                    return True
                if lhs is None or rhs is None:
                    return None
                return False

            return run_or

        def run_connective(env, ctx):
            lhs = left(env, ctx)
            if lhs is not None and lhs.__class__ is not bool:
                lhs = V.coerce_to_boolean(lhs)
            rhs = right(env, ctx)
            if rhs is not None and rhs.__class__ is not bool:
                rhs = V.coerce_to_boolean(rhs)
            return connective(lhs, rhs)

        return run_connective

    # The hottest comparisons get direct closures over the values helpers —
    # one frame less than going through the evaluator's handler table, with
    # byte-identical semantics (these mirror Evaluator._op_* exactly).
    # Number/string/bool operands replicate ternary_equals' semantics
    # inline: exact-class checks (so bool-vs-int subclassing cannot slip
    # through), `x != x` as the NaN probe (ints are never NaN, and Cypher
    # says NaN equals nothing).  Everything else — lists, maps, graph
    # elements, mixed kinds — defers to the full helper.
    if op == "=":
        if rconst is not _NOT_CONST:
            rcls = None if rconst is None else rconst.__class__
            rnum = rcls is int or rcls is float
            rfast = rcls is str or rcls is bool

            def run_eq_rc(env, ctx):
                lhs = left(env, ctx)
                if lhs is None or rconst is None:
                    return None
                lcls = lhs.__class__
                if rnum and (lcls is int or lcls is float):
                    if lhs != lhs or rconst != rconst:
                        return False
                    return lhs == rconst
                if rfast and lcls is rcls:
                    return lhs == rconst
                return V.ternary_equals(lhs, rconst)

            return run_eq_rc

        def run_eq(env, ctx):
            lhs = left(env, ctx)
            rhs = right(env, ctx)
            if lhs is None or rhs is None:
                return None
            lcls = lhs.__class__
            rcls = rhs.__class__
            if (lcls is int or lcls is float) and (
                rcls is int or rcls is float
            ):
                if lhs != lhs or rhs != rhs:
                    return False
                return lhs == rhs
            if lcls is rcls:
                if lcls is str or lcls is bool:
                    return lhs == rhs
                if lcls is Node or lcls is Relationship:
                    # Graph elements compare by id (ternary_equals' rule);
                    # synthesized WHERE clauses lean on rel <> rel heavily.
                    return lhs.id == rhs.id
            return V.ternary_equals(lhs, rhs)

        return run_eq
    if op == "<>":
        if rconst is not _NOT_CONST:
            rcls = None if rconst is None else rconst.__class__
            rnum = rcls is int or rcls is float
            rfast = rcls is str or rcls is bool

            def run_neq_rc(env, ctx):
                lhs = left(env, ctx)
                if lhs is None or rconst is None:
                    return None
                lcls = lhs.__class__
                if rnum and (lcls is int or lcls is float):
                    if lhs != lhs or rconst != rconst:
                        return True
                    return lhs != rconst
                if rfast and lcls is rcls:
                    return lhs != rconst
                verdict = V.ternary_equals(lhs, rconst)
                return None if verdict is None else not verdict

            return run_neq_rc

        def run_neq(env, ctx):
            lhs = left(env, ctx)
            rhs = right(env, ctx)
            if lhs is None or rhs is None:
                return None
            lcls = lhs.__class__
            rcls = rhs.__class__
            if (lcls is int or lcls is float) and (
                rcls is int or rcls is float
            ):
                if lhs != lhs or rhs != rhs:
                    return True
                return lhs != rhs
            if lcls is rcls:
                if lcls is str or lcls is bool:
                    return lhs != rhs
                if lcls is Node or lcls is Relationship:
                    # Graph elements compare by id (ternary_equals' rule);
                    # synthesized WHERE clauses lean on rel <> rel heavily.
                    return lhs.id != rhs.id
            verdict = V.ternary_equals(lhs, rhs)
            return None if verdict is None else not verdict

        return run_neq
    if op in ("<", "<=", ">", ">="):
        import operator as _operator

        cmp = {
            "<": _operator.lt,
            "<=": _operator.le,
            ">": _operator.gt,
            ">=": _operator.ge,
        }[op]

        if rconst is not _NOT_CONST:
            def run_cmp_rc(env, ctx):
                verdict = V.ternary_compare(left(env, ctx), rconst)
                return None if verdict is None else cmp(verdict, 0)

            return run_cmp_rc

        def run_cmp(env, ctx):
            verdict = V.ternary_compare(left(env, ctx), right(env, ctx))
            return None if verdict is None else cmp(verdict, 0)

        return run_cmp

    handler = _BINOPS.get(op)
    if handler is not None:
        if rconst is not _NOT_CONST:
            def run_binop_rc(env, ctx):
                return handler(_OPS, left(env, ctx), rconst)

            return run_binop_rc

        def run_binop(env, ctx):
            return handler(_OPS, left(env, ctx), right(env, ctx))

        return run_binop

    if rconst is not _NOT_CONST:
        def run_arithmetic_rc(env, ctx):
            return _OPS._arithmetic(op, left(env, ctx), rconst)

        return run_arithmetic_rc

    def run_arithmetic(env, ctx):
        return _OPS._arithmetic(op, left(env, ctx), right(env, ctx))

    return run_arithmetic


def _c_is_null(expr: ast.IsNull) -> CompiledExpr:
    operand = compile_expr(expr.operand)
    negated = expr.negated

    def run(env, ctx):
        value = operand(env, ctx)
        return (value is not None) if negated else (value is None)

    return run


def _c_function(expr: ast.FunctionCall) -> CompiledExpr:
    name = expr.name
    if is_aggregate(name):
        def run_aggregate(env, ctx):
            raise CypherRuntimeError(
                f"aggregate {name}() not allowed in this context"
            )

        return run_aggregate

    arg_fns = tuple(compile_expr(arg) for arg in expr.args)

    # Resolve the function definition once at compile time.  Unknown names
    # stay on the dynamic call_function path so a function registered after
    # compilation still resolves, preserving the interpreter's behaviour.
    fdef = lookup(name)
    if fdef is None:
        def run_dynamic(env, ctx):
            value = call_function(name, [fn(env, ctx) for fn in arg_fns])
            if (
                value.__class__ is tuple
                and len(value) == 2
                and value[0] == "__node_ref__"
            ):
                return ctx.graph.node(value[1])
            return value

        return run_dynamic

    n_args = len(arg_fns)
    if n_args < fdef.arity_min or (
        fdef.arity_max is not None and n_args > fdef.arity_max
    ):
        # Arity is static; the error still fires at evaluation time (after
        # argument evaluation), exactly like the interpreter's.
        message = (
            f"{fdef.name}() called with {n_args} argument(s); expected "
            f"{fdef.arity_min}"
            + (f"..{fdef.arity_max}" if fdef.arity_max != fdef.arity_min else "")
        )

        def run_bad_arity(env, ctx):
            for fn in arg_fns:
                fn(env, ctx)
            raise FunctionError(message)

        return run_bad_arity

    impl = fdef.impl
    propagates_null = fdef.propagates_null
    # startNode/endNode return ("__node_ref__", id); they are the only
    # producers, so only their call sites need the resolution step.
    returns_node_ref = fdef.name.lower() in ("startnode", "endnode")

    # One- and two-argument calls (the bulk of synthesized workloads) get
    # closures without the args-list allocation; node-ref producers stay on
    # the generic path so the resolution step lives in exactly one place.
    if not returns_node_ref:
        if n_args == 1:
            arg0 = arg_fns[0]
            if propagates_null:
                def run_1(env, ctx):
                    value = arg0(env, ctx)
                    return None if value is None else impl(value)

                return run_1

            def run_1_total(env, ctx):
                return impl(arg0(env, ctx))

            return run_1_total
        if n_args == 2:
            arg0, arg1 = arg_fns
            if propagates_null:
                def run_2(env, ctx):
                    value0 = arg0(env, ctx)
                    value1 = arg1(env, ctx)
                    if value0 is None or value1 is None:
                        return None
                    return impl(value0, value1)

                return run_2

            def run_2_total(env, ctx):
                return impl(arg0(env, ctx), arg1(env, ctx))

            return run_2_total

    def run(env, ctx):
        args = [fn(env, ctx) for fn in arg_fns]
        if propagates_null and None in args:
            return None
        value = impl(*args)
        if returns_node_ref and value is not None:
            return ctx.graph.node(value[1])
        return value

    return run


def _c_count_star(expr: ast.CountStar) -> CompiledExpr:
    def run(env, ctx):
        raise CypherRuntimeError("count(*) not allowed in this context")

    return run


def _c_list_literal(expr: ast.ListLiteral) -> CompiledExpr:
    item_fns = tuple(compile_expr(item) for item in expr.items)

    def run(env, ctx):
        return [fn(env, ctx) for fn in item_fns]

    return run


def _c_map_literal(expr: ast.MapLiteral) -> CompiledExpr:
    item_fns = tuple((key, compile_expr(value)) for key, value in expr.items)

    def run(env, ctx):
        return {key: fn(env, ctx) for key, fn in item_fns}

    return run


def _c_comprehension(expr: ast.ListComprehension) -> CompiledExpr:
    source_fn = compile_expr(expr.source)
    where_fn = compile_expr(expr.where) if expr.where is not None else None
    proj_fn = (
        compile_expr(expr.projection) if expr.projection is not None else None
    )
    variable = expr.variable

    def run(env, ctx):
        source = source_fn(env, ctx)
        if source is None:
            return None
        if not isinstance(source, list):
            raise CypherTypeError(
                f"list comprehension requires a list, got {V.type_name(source)}"
            )
        out = []
        for item in source:
            inner = dict(env)
            inner[variable] = item
            if where_fn is not None:
                if V.coerce_to_boolean(where_fn(inner, ctx)) is not True:
                    continue
            out.append(proj_fn(inner, ctx) if proj_fn is not None else item)
        return out

    return run


def _c_index(expr: ast.ListIndex) -> CompiledExpr:
    subject_fn = compile_expr(expr.subject)
    index_fn = compile_expr(expr.index)

    def run(env, ctx):
        subject = subject_fn(env, ctx)
        index = index_fn(env, ctx)
        if subject is None or index is None:
            return None
        if isinstance(subject, dict):
            if not isinstance(index, str):
                raise CypherTypeError("map index must be a string")
            return subject.get(index)
        if isinstance(subject, (list, str)):
            if isinstance(index, bool) or not isinstance(index, int):
                raise CypherTypeError("list index must be an integer")
            if index < -len(subject) or index >= len(subject):
                return None
            return subject[index]
        raise CypherTypeError(f"cannot index {V.type_name(subject)}")

    return run


def _c_slice(expr: ast.ListSlice) -> CompiledExpr:
    subject_fn = compile_expr(expr.subject)
    has_start = expr.start is not None
    has_end = expr.end is not None
    start_fn = compile_expr(expr.start) if has_start else None
    end_fn = compile_expr(expr.end) if has_end else None

    def run(env, ctx):
        subject = subject_fn(env, ctx)
        if subject is None:
            return None
        if not isinstance(subject, (list, str)):
            raise CypherTypeError(f"cannot slice {V.type_name(subject)}")
        start = start_fn(env, ctx) if has_start else None
        end = end_fn(env, ctx) if has_end else None
        if (has_start and start is None) or (has_end and end is None):
            return None
        for bound in (start, end):
            if bound is not None and (
                isinstance(bound, bool) or not isinstance(bound, int)
            ):
                raise CypherTypeError("slice bounds must be integers")
        return subject[slice(start, end)]

    return run


def _c_case(expr: ast.CaseExpression) -> CompiledExpr:
    subject_fn = (
        compile_expr(expr.subject) if expr.subject is not None else None
    )
    alternatives = tuple(
        (compile_expr(alt.when), compile_expr(alt.then))
        for alt in expr.alternatives
    )
    default_fn = (
        compile_expr(expr.default) if expr.default is not None else None
    )

    if subject_fn is not None:
        def run_simple(env, ctx):
            subject = subject_fn(env, ctx)
            for when_fn, then_fn in alternatives:
                if V.ternary_equals(subject, when_fn(env, ctx)) is True:
                    return then_fn(env, ctx)
            return default_fn(env, ctx) if default_fn is not None else None

        return run_simple

    def run_generic(env, ctx):
        for when_fn, then_fn in alternatives:
            if V.coerce_to_boolean(when_fn(env, ctx)) is True:
                return then_fn(env, ctx)
        return default_fn(env, ctx) if default_fn is not None else None

    return run_generic


def _c_pattern_predicate(expr: ast.PatternPredicate) -> CompiledExpr:
    pattern = expr.pattern
    names = tuple(pattern.variables())

    def run(env, ctx):
        # Existential check, mirroring Evaluator._pattern_predicate: a
        # fresh matcher with default uniqueness, constrained by the row.
        for name in names:
            if name in env and env[name] is None:
                return False
        matcher = Matcher(ctx.graph)
        for _match in matcher.match((pattern,), env):
            return True
        return False

    return run


def _c_labels_predicate(expr: ast.LabelsPredicate) -> CompiledExpr:
    subject_fn = compile_expr(expr.subject)
    labels = expr.labels

    def run(env, ctx):
        subject = subject_fn(env, ctx)
        if subject is None:
            return None
        if not isinstance(subject, Node):
            raise CypherTypeError("label predicate requires a node")
        return all(label in subject.labels for label in labels)

    return run


_COMPILERS = {
    ast.Literal: _c_literal,
    ast.Variable: _c_variable,
    ast.PropertyAccess: _c_property,
    ast.Unary: _c_unary,
    ast.Binary: _c_binary,
    ast.IsNull: _c_is_null,
    ast.FunctionCall: _c_function,
    ast.CountStar: _c_count_star,
    ast.ListLiteral: _c_list_literal,
    ast.MapLiteral: _c_map_literal,
    ast.ListComprehension: _c_comprehension,
    ast.ListIndex: _c_index,
    ast.ListSlice: _c_slice,
    ast.CaseExpression: _c_case,
    ast.PatternPredicate: _c_pattern_predicate,
    ast.LabelsPredicate: _c_labels_predicate,
}
