"""Per-session plan cache keyed on query shape fingerprints.

Synthesized campaigns re-issue queries whose *shape* repeats even when the
literals differ; the cache key therefore combines the sorted
``query_feature_tags`` shape fingerprint with the exact query text, so two
textually identical queries share one compiled plan while shape-sharing but
textually distinct queries compile separately (their literals are baked
into the compiled closures).

The cache is deliberately observability-friendly: hit/miss/compile (and
dual-mode divergence) tallies accumulate as plain ints and are drained by
the owning engine into ``repro.obs`` counters once per query, following the
same tally-then-flush pattern the engines use for matcher/evaluator calls.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional

__all__ = ["PlanCache"]


class PlanCache:
    """FIFO-bounded mapping from shape fingerprints to compiled plans."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._plans: "OrderedDict[str, Any]" = OrderedDict()
        # Exact-text fast path: repeated query texts (replays, differential
        # runs, benchmark rounds) skip the feature-tag walk and hash
        # entirely.  String hashes are cached per object, so this lookup is
        # nearly free.
        self._text_keys: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.divergences = 0
        # Write statements are deliberately routed to the interpreted
        # executor (planner returns a "write clause" fallback); this tally
        # keeps that fallback visible in `== plans ==`.
        self.write_fallbacks = 0

    @staticmethod
    def fingerprint(tags: Iterable[str], text: str) -> str:
        """Stable digest of a query's feature-tag shape plus its text."""
        hasher = hashlib.sha256()
        for tag in sorted(tags):
            hasher.update(tag.encode("utf-8"))
            hasher.update(b"\x1f")
        hasher.update(b"\x1e")
        hasher.update(text.encode("utf-8"))
        return hasher.hexdigest()

    def key_for_text(self, text: str) -> Optional[str]:
        """The fingerprint previously computed for this exact query text."""
        return self._text_keys.get(text)

    def remember_text(self, text: str, key: str) -> None:
        self._text_keys[text] = key
        while len(self._text_keys) > 2 * self.capacity:
            self._text_keys.popitem(last=False)

    def get(self, key: str) -> Optional[Any]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def put(self, key: str, plan: Any) -> None:
        self.compiles += 1
        self._plans[key] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)

    def __len__(self) -> int:
        return len(self._plans)

    def drain(self) -> Dict[str, int]:
        """Return non-zero counters since the last drain, and reset them."""
        out: Dict[str, int] = {}
        if self.hits:
            out["cache_hits"] = self.hits
        if self.misses:
            out["cache_misses"] = self.misses
        if self.compiles:
            out["compiles"] = self.compiles
        if self.divergences:
            out["divergences"] = self.divergences
        if self.write_fallbacks:
            out["write_fallbacks"] = self.write_fallbacks
        self.hits = self.misses = self.compiles = self.divergences = 0
        self.write_fallbacks = 0
        return out
