"""Compiled operator-pipeline execution core.

The plan package compiles a parsed Cypher query once into a pipeline of
composable operators (scan → expand → filter → project → aggregate →
order/skip/limit → union) whose semantics are bit-for-bit the reference
interpreter's.  Engines select it via ``execution_mode``:

* ``interpreted`` — the tree-walking reference path (default).
* ``compiled`` — plans from the per-session :class:`PlanCache`.
* ``dual`` — both paths per query; any mismatch raises
  :class:`~repro.engine.errors.PlanDivergenceError`.

See ``docs/execution.md`` for the operator catalog and pushdown rules.
"""

from repro.engine.plan.cache import PlanCache
from repro.engine.plan.compiler import compile_expr, compile_predicate
from repro.engine.plan.operators import ExecutionContext, compile_aggregate
from repro.engine.plan.planner import (
    CompiledPlan,
    FallbackPlan,
    UnionPlan,
    build_plan,
)

__all__ = [
    "PlanCache",
    "compile_expr",
    "compile_predicate",
    "compile_aggregate",
    "ExecutionContext",
    "CompiledPlan",
    "FallbackPlan",
    "UnionPlan",
    "build_plan",
]
