"""Query planner: one-shot compilation of a Cypher AST into an operator plan.

``build_plan`` walks the clause list once, compiling every expression into a
closure (:mod:`.compiler`) and every clause into an operator
(:mod:`.operators`).  Read-only queries compile; anything containing a write
clause — or a clause shape the pipeline does not model — yields a
:class:`FallbackPlan` and the engine runs the reference interpreter instead.

Two families of access-path optimisation are planned here, both proven to
preserve interpreter semantics *exactly* (results, row order, and raised
errors — see ``docs/execution.md`` for the full safety argument):

* **Scan narrowing.**  A chain's first node normally scans the label index
  (or all nodes).  When the node carries a literal property map, or the
  clause's WHERE contains a top-level ``n.key = literal`` conjunct that is
  provably total, the scan instead reads the lazily-built property index on
  :class:`~repro.graph.model.PropertyGraph`.  Every candidate still passes
  through the full label/property/binding checks, so narrowing can only
  skip work the interpreter would have rejected anyway.

* **Typed adjacency.**  A relationship element with exactly one type
  enumerates the per-type adjacency cache instead of filtering the full
  sorted adjacency, in the same position the interpreter applies its type
  check (before property evaluation).

Build-time never raises for a well-formed AST: even statically detectable
errors (duplicate projection columns) compile into an operator that raises
at run time, preserving the interpreter's clause-by-clause error order.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cypher import ast
from repro.engine.binding import ResultSet
from repro.engine.envelope import ENVELOPE
from repro.engine.errors import CypherSyntaxError
from repro.engine.evaluator import has_aggregate
from repro.engine.plan.compiler import compile_expr
from repro.engine.plan.operators import (
    CallOp,
    ChainSpec,
    ExecutionContext,
    MatchOp,
    NodeSpec,
    ProjectOp,
    RelSpec,
    UnwindOp,
    _tally,
    compile_aggregate,
)
from repro.graph import values as V
from repro.graph.model import PropertyGraph

__all__ = ["CompiledPlan", "UnionPlan", "FallbackPlan", "build_plan"]


class CompiledPlan:
    """A straight-line pipeline of operators for one (non-union) query."""

    is_fallback = False

    def __init__(self, ops: List[Any], returning: bool, ordered: bool):
        self.ops = ops
        self.returning = returning
        self.ordered = ordered

    def execute(self, ctx: ExecutionContext) -> ResultSet:
        columns: List[str] = []
        rows: List[Dict[str, Any]] = [{}]
        op_profile = ctx.op_profile
        if op_profile is None:
            for op in self.ops:
                columns, rows = op.run(columns, rows, ctx)
        else:
            # Boundary-level operator profiling (repro.obs.profile): wall
            # time per operator plus the evaluation-step delta metered by
            # the resource envelope (the engine arms an unreachable ceiling
            # budget during profiled execution, so the counter always
            # ticks).  Pure observation — no randomness, no control-flow
            # change — so results stay byte-identical with profiling off.
            for op in self.ops:
                steps_before = ENVELOPE.steps
                started = perf_counter()
                columns, rows = op.run(columns, rows, ctx)
                op_profile.record(
                    op.label,
                    ENVELOPE.steps - steps_before,
                    perf_counter() - started,
                )
        if self.returning:
            return ResultSet(
                columns,
                [[row.get(col) for col in columns] for row in rows],
                ordered=self.ordered,
            )
        return ResultSet([], [])


class UnionPlan:
    """``UNION [ALL]``: both sides execute, then columns check and merge."""

    is_fallback = False

    def __init__(self, left: Any, right: Any, all: bool):
        self.left = left
        self.right = right
        self.all = all

    def execute(self, ctx: ExecutionContext) -> ResultSet:
        left = self.left.execute(ctx)
        right = self.right.execute(ctx)
        op_profile = ctx.op_profile
        if op_profile is None:
            return self._merge(left, right, ctx)
        steps_before = ENVELOPE.steps
        started = perf_counter()
        merged = self._merge(left, right, ctx)
        op_profile.record(
            "union", ENVELOPE.steps - steps_before, perf_counter() - started
        )
        return merged

    def _merge(
        self, left: ResultSet, right: ResultSet, ctx: ExecutionContext
    ) -> ResultSet:
        if left.columns != right.columns:
            raise CypherSyntaxError(
                "UNION requires identical column names on both sides"
            )
        combined = ResultSet.union_all([left, right])
        if self.all:
            _tally(ctx, "union", len(combined.rows))
            return combined
        seen = set()
        rows = []
        for row in combined.rows:
            key = tuple(V.equivalence_key(value) for value in row)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        _tally(ctx, "union", len(rows))
        return ResultSet(left.columns, rows)


class FallbackPlan:
    """Marker plan: the engine must run the reference interpreter instead."""

    is_fallback = True

    def __init__(self, reason: str):
        self.reason = reason

    def execute(self, ctx: ExecutionContext) -> ResultSet:
        raise RuntimeError(f"fallback plan is not executable: {self.reason}")


class _RaiseOp:
    """Defers a statically detected clause error to its run-time position."""

    def __init__(self, exc_type: type, message: str):
        self.exc_type = exc_type
        self.message = message

    def run(self, columns, rows, ctx):
        raise self.exc_type(self.message)


_WRITE_CLAUSES = (ast.Create, ast.SetClause, ast.Delete, ast.Remove, ast.Merge)

_SAFE_COMPARISONS = {
    "=", "<>", "<", "<=", ">", ">=",
    "STARTS WITH", "ENDS WITH", "CONTAINS",
}


def _has_write_clause(query) -> bool:
    if isinstance(query, ast.UnionQuery):
        return _has_write_clause(query.left) or _has_write_clause(query.right)
    return any(isinstance(clause, _WRITE_CLAUSES) for clause in query.clauses)


def build_plan(query, *, enforce_rel_uniqueness: bool = True):
    """Compile *query* into an executable plan, or a FallbackPlan."""
    if isinstance(query, ast.UnionQuery):
        left = build_plan(query.left, enforce_rel_uniqueness=enforce_rel_uniqueness)
        right = build_plan(query.right, enforce_rel_uniqueness=enforce_rel_uniqueness)
        if left.is_fallback:
            return left
        if right.is_fallback:
            return right
        return UnionPlan(left, right, query.all)

    if _has_write_clause(query):
        return FallbackPlan("write clause")

    ops: List[Any] = []
    columns: List[str] = []
    # Static value-kind per column: "node" / "rel" / "path" / "any".  Used
    # only to prove pushdown safety; run-time checks remain authoritative.
    kinds: Dict[str, str] = {}

    for clause in query.clauses:
        if isinstance(clause, ast.Match):
            op, columns, kinds = _compile_match(
                clause, columns, kinds, enforce_rel_uniqueness
            )
            ops.append(op)
        elif isinstance(clause, ast.Unwind):
            ops.append(UnwindOp(compile_expr(clause.expression), clause.alias))
            if clause.alias not in columns:
                columns = columns + [clause.alias]
            kinds = dict(kinds)
            kinds[clause.alias] = "any"
        elif isinstance(clause, (ast.With, ast.Return)):
            compiled = _compile_project(
                clause, kinds, is_with=isinstance(clause, ast.With)
            )
            if compiled is None:
                # Duplicate projection columns: raise when execution reaches
                # this clause, after earlier clauses had their say.
                ops.append(
                    _RaiseOp(
                        CypherSyntaxError, "duplicate column name in projection"
                    )
                )
                break
            op, columns, kinds = compiled
            ops.append(op)
        elif isinstance(clause, ast.Call):
            if not clause.yield_items and clause is not query.clauses[-1]:
                # Bare CALL mid-query adds columns only known at run time,
                # which would invalidate the static analysis below.
                return FallbackPlan("CALL without YIELD before other clauses")
            aliases = [alias or name for name, alias in clause.yield_items]
            ops.append(
                CallOp(
                    clause.procedure,
                    tuple(compile_expr(arg) for arg in clause.args),
                    clause.yield_items,
                )
            )
            columns = columns + aliases
            kinds = dict(kinds)
            for alias in aliases:
                kinds[alias] = "any"
        else:
            return FallbackPlan(f"unsupported clause {type(clause).__name__}")

    last = query.clauses[-1] if query.clauses else None
    returning = isinstance(last, ast.Return) and not (
        ops and isinstance(ops[-1], _RaiseOp)
    )
    ordered = returning and bool(last.order_by)
    return CompiledPlan(ops, returning, ordered)


# -- WITH / RETURN compilation ---------------------------------------------


def _compile_project(
    clause, kinds: Dict[str, str], is_with: bool
) -> Optional[Tuple[ProjectOp, List[str], Dict[str, str]]]:
    """Compile a projection clause; None signals duplicate output columns."""
    items = clause.items
    aggregated = any(has_aggregate(item.expression) for item in items)
    out_columns = [item.output_name() for item in items]
    if len(set(out_columns)) != len(out_columns):
        return None

    plain_items = [
        (col, compile_expr(item.expression))
        for col, item in zip(out_columns, items)
    ]
    agg_items = None
    if aggregated:
        agg_items = [
            (
                col,
                compile_aggregate(item.expression)
                if has_aggregate(item.expression)
                else None,
            )
            for col, item in zip(out_columns, items)
        ]
    order_fns = [
        (compile_expr(order.expression), order.descending)
        for order in clause.order_by
    ]
    skip_fn = compile_expr(clause.skip) if clause.skip is not None else None
    limit_fn = compile_expr(clause.limit) if clause.limit is not None else None
    where_fn = None
    if is_with and clause.where is not None:
        where_fn = compile_expr(clause.where)

    op = ProjectOp(
        out_columns,
        plain_items,
        agg_items,
        clause.distinct,
        order_fns,
        skip_fn,
        limit_fn,
        where_fn,
    )
    # Projections rebuild scope from scratch; plain variable pass-throughs
    # keep their source kind, everything else degrades to "any".
    new_kinds: Dict[str, str] = {}
    for col, item in zip(out_columns, items):
        expr = item.expression
        if isinstance(expr, ast.Variable):
            new_kinds[col] = kinds.get(expr.name, "any")
        else:
            new_kinds[col] = "any"
    return op, out_columns, new_kinds


# -- MATCH compilation -----------------------------------------------------


def _compile_match(
    clause: ast.Match,
    columns: List[str],
    kinds: Dict[str, str],
    enforce_rel_uniqueness: bool,
) -> Tuple[MatchOp, List[str], Dict[str, str]]:
    new_vars: List[str] = []
    for pattern in clause.patterns:
        for name in pattern.variables():
            if name not in columns and name not in new_vars:
                new_vars.append(name)

    # Static walk over the patterns: track the kind each variable will hold
    # and whether exploration can raise a bound-variable type error.  Both
    # feed the WHERE-pushdown safety proof; neither changes run-time checks.
    walk_kinds = dict(kinds)
    hazard = False
    all_maps_literal = True
    first_unbound: List[bool] = []
    for pattern in clause.patterns:
        first = pattern.nodes[0]
        if first.variable:
            if first.variable in walk_kinds:
                first_unbound.append(False)
                if walk_kinds[first.variable] != "node":
                    hazard = True  # chain-first non-node raises at run time
            else:
                first_unbound.append(True)
                walk_kinds[first.variable] = "node"
        else:
            first_unbound.append(True)
        for node in pattern.nodes:
            if node.properties is not None:
                for _key, value_expr in node.properties.items:
                    if not isinstance(value_expr, ast.Literal):
                        all_maps_literal = False
        for index, rel in enumerate(pattern.relationships):
            if rel.variable:
                if rel.variable in walk_kinds:
                    if walk_kinds[rel.variable] != "rel":
                        hazard = True  # bound non-relationship raises
                else:
                    walk_kinds[rel.variable] = "rel"
            if rel.properties is not None:
                for _key, value_expr in rel.properties.items:
                    if not isinstance(value_expr, ast.Literal):
                        all_maps_literal = False
            target = pattern.nodes[index + 1]
            # Interior bound nodes merely filter (no raise), so no hazard.
            if target.variable and target.variable not in walk_kinds:
                walk_kinds[target.variable] = "node"
        if pattern.path_variable:
            # The matcher overwrites the path variable unconditionally.
            walk_kinds[pattern.path_variable] = "path"

    # WHERE pushdown is only safe when skipping a candidate subtree cannot
    # hide an error: every conjunct total, every property map literal, no
    # bound-variable type hazards, every referenced variable in scope.
    where_safe = False
    conjuncts: List[ast.Expression] = []
    if clause.where is not None and all_maps_literal and not hazard:
        scope = set(walk_kinds)
        conjuncts = _conjuncts(clause.where)
        where_safe = all(_safe_conjunct(c, walk_kinds, scope) for c in conjuncts)

    index_conjuncts: List[Tuple[str, str, Any]] = []
    if where_safe:
        for conjunct in conjuncts:
            lookup = _eq_prop_literal(conjunct)
            if lookup is not None:
                index_conjuncts.append(lookup)

    # Binding-position map for conjunct placement.  Position 0 is "before
    # any scan" (pre-existing columns); each first node, each expansion
    # step, and each path-variable binding gets the next position.  A
    # conjunct is evaluated at the *latest* position any of its variables
    # is written — path variables are overwritten at chain end, so they pin
    # conjuncts there even when the name pre-existed.
    var_last_write = {name: 0 for name in columns}
    position = 0
    pattern_positions: List[Tuple[int, List[int], Optional[int]]] = []
    for pattern in clause.patterns:
        position += 1
        first_pos = position
        first = pattern.nodes[0]
        if first.variable and first.variable not in var_last_write:
            var_last_write[first.variable] = first_pos
        step_positions: List[int] = []
        for index, rel in enumerate(pattern.relationships):
            position += 1
            step_positions.append(position)
            if rel.variable and rel.variable not in var_last_write:
                var_last_write[rel.variable] = position
            target = pattern.nodes[index + 1]
            if target.variable and target.variable not in var_last_write:
                var_last_write[target.variable] = position
        end_pos: Optional[int] = None
        if pattern.path_variable:
            position += 1
            end_pos = position
            var_last_write[pattern.path_variable] = end_pos
        pattern_positions.append((first_pos, step_positions, end_pos))

    filter_buckets: Dict[int, List[Callable]] = {}
    if where_safe:
        for conjunct in conjuncts:
            names: set = set()
            _collect_conjunct_vars(conjunct, names)
            place_at = max(
                (var_last_write[name] for name in names), default=0
            )
            filter_buckets.setdefault(place_at, []).append(
                compile_expr(conjunct)
            )

    def bucket(pos: int) -> Optional[Tuple[Callable, ...]]:
        fns = filter_buckets.get(pos)
        return tuple(fns) if fns else None

    chains = []
    for pattern_index, pattern in enumerate(clause.patterns):
        unbound = first_unbound[pattern_index]
        first_pos, step_positions, end_pos = pattern_positions[pattern_index]
        first = pattern.nodes[0]
        index_lookup = _map_index_lookup(first)
        if index_lookup is None and unbound and first.variable:
            for var, key, value in index_conjuncts:
                if var == first.variable and walk_kinds.get(var) == "node":
                    index_lookup = (key, value)
                    break
        first_spec = NodeSpec(
            first.variable,
            first.labels,
            _compile_props(first.properties),
            scan=_build_scan(first, index_lookup),
            filters=bucket(first_pos),
        )
        steps = []
        for index, rel in enumerate(pattern.relationships):
            target = pattern.nodes[index + 1]
            typed = len(rel.types) == 1
            steps.append(
                (
                    RelSpec(
                        rel.variable,
                        rel.types,
                        check_types=not typed,
                        prop_checks=_compile_props(rel.properties),
                        direction=rel.direction,
                        adjacency_type=rel.types[0] if typed else None,
                    ),
                    NodeSpec(
                        target.variable,
                        target.labels,
                        _compile_props(target.properties),
                        filters=bucket(step_positions[index]),
                    ),
                )
            )
        chains.append(
            ChainSpec(
                first_spec,
                tuple(steps),
                pattern.path_variable,
                end_filters=bucket(end_pos) if end_pos is not None else None,
            )
        )

    if where_safe:
        # Every conjunct was placed at a binding position (or position 0);
        # the completion-time WHERE is fully decomposed.
        where_fn = None
    else:
        where_fn = (
            compile_expr(clause.where) if clause.where is not None else None
        )
    op = MatchOp(
        tuple(chains),
        new_vars,
        where_fn,
        clause.optional,
        enforce_rel_uniqueness,
        pre_filters=bucket(0),
    )
    return op, columns + new_vars, walk_kinds


def _compile_props(
    properties: Optional[ast.MapLiteral],
) -> Optional[Tuple[Tuple[str, Callable], ...]]:
    if properties is None:
        return None
    return tuple(
        (key, compile_expr(value)) for key, value in properties.items
    )


def _map_index_lookup(node: ast.NodePattern) -> Optional[Tuple[str, Any]]:
    """Property-index lookup derived from the node's own literal map.

    Only the *first* map entry is eligible: the matcher checks entries in
    order and stops at the first mismatch, so narrowing on the first entry
    can never skip evaluation the interpreter would have performed.
    """
    if node.properties is None or not node.properties.items:
        return None
    key, value_expr = node.properties.items[0]
    if not isinstance(value_expr, ast.Literal):
        return None
    if PropertyGraph.property_index_key(value_expr.value) is None:
        return None
    return key, value_expr.value


def _build_scan(
    node: ast.NodePattern, index_lookup: Optional[Tuple[str, Any]]
) -> Callable:
    if index_lookup is not None:
        key, value = index_lookup

        def scan_index(ctx, env):
            return ctx.graph.nodes_with_property_sorted(key, value)

        return scan_index
    if node.labels:
        label = node.labels[0]

        def scan_label(ctx, env):
            return ctx.graph.nodes_with_label_sorted(label)

        return scan_label

    def scan_all(ctx, env):
        return ctx.graph.nodes_sorted()

    return scan_all




# -- WHERE pushdown safety -------------------------------------------------


def _conjuncts(expr: ast.Expression) -> List[ast.Expression]:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _collect_conjunct_vars(expr: ast.Expression, out: set) -> None:
    """Variable names a *safe* conjunct reads (safe shapes only)."""
    if isinstance(expr, ast.Variable):
        out.add(expr.name)
    elif isinstance(expr, ast.PropertyAccess):
        if isinstance(expr.subject, ast.Variable):
            out.add(expr.subject.name)
    elif isinstance(expr, ast.Binary):
        _collect_conjunct_vars(expr.left, out)
        _collect_conjunct_vars(expr.right, out)
    elif isinstance(expr, ast.Unary):
        _collect_conjunct_vars(expr.operand, out)
    elif isinstance(expr, ast.IsNull):
        _collect_conjunct_vars(expr.operand, out)
    elif isinstance(expr, ast.LabelsPredicate):
        if isinstance(expr.subject, ast.Variable):
            out.add(expr.subject.name)
    # Literals and literal-only lists carry no variables.


def _safe_value(
    expr: ast.Expression, kinds: Dict[str, str], scope: set
) -> bool:
    """True when evaluating *expr* in any row environment cannot raise."""
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.Variable):
        return expr.name in scope
    if isinstance(expr, ast.PropertyAccess):
        subject = expr.subject
        return (
            isinstance(subject, ast.Variable)
            and subject.name in scope
            and kinds.get(subject.name) in ("node", "rel")
        )
    return False


def _safe_conjunct(
    expr: ast.Expression, kinds: Dict[str, str], scope: set
) -> bool:
    """True when *expr* is total (never raises) over any row environment.

    Comparison and string operators over safe values are total because
    ``ternary_equals``/``ternary_compare`` and the string handlers return
    null for type mismatches instead of raising.  ``=~`` is excluded (a
    non-string pattern raises); so is any function call or arithmetic.
    """
    if isinstance(expr, ast.Literal):
        return isinstance(expr.value, bool) or expr.value is None
    if isinstance(expr, ast.Binary):
        if expr.op in ("AND", "OR", "XOR"):
            return _safe_conjunct(expr.left, kinds, scope) and _safe_conjunct(
                expr.right, kinds, scope
            )
        if expr.op in _SAFE_COMPARISONS:
            return _safe_value(expr.left, kinds, scope) and _safe_value(
                expr.right, kinds, scope
            )
        if expr.op == "IN":
            return (
                _safe_value(expr.left, kinds, scope)
                and isinstance(expr.right, ast.ListLiteral)
                and all(
                    isinstance(item, ast.Literal) for item in expr.right.items
                )
            )
        return False
    if isinstance(expr, ast.Unary):
        return expr.op == "NOT" and _safe_conjunct(expr.operand, kinds, scope)
    if isinstance(expr, ast.IsNull):
        return _safe_value(expr.operand, kinds, scope)
    if isinstance(expr, ast.LabelsPredicate):
        subject = expr.subject
        return (
            isinstance(subject, ast.Variable)
            and subject.name in scope
            and kinds.get(subject.name) == "node"
        )
    return False


def _eq_prop_literal(
    expr: ast.Expression,
) -> Optional[Tuple[str, str, Any]]:
    """Extract ``(var, key, literal)`` from ``var.key = literal`` (either way)."""
    if not (isinstance(expr, ast.Binary) and expr.op == "="):
        return None
    for prop, literal in ((expr.left, expr.right), (expr.right, expr.left)):
        if (
            isinstance(prop, ast.PropertyAccess)
            and isinstance(prop.subject, ast.Variable)
            and isinstance(literal, ast.Literal)
            and PropertyGraph.property_index_key(literal.value) is not None
        ):
            return prop.subject.name, prop.key, literal.value
    return None
