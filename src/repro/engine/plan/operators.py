"""Composable pipeline operators for compiled query execution.

A compiled plan is a list of operators, each mapping ``(columns, rows)`` to
a new ``(columns, rows)`` — the same clause-by-clause table flow the
reference :class:`~repro.engine.executor.Executor` implements, with all
per-row AST dispatch replaced by closures compiled once at plan-build time
(:mod:`repro.engine.plan.compiler`).

Operator catalog (see ``docs/execution.md``):

* :class:`MatchOp` — fused scan → expand → filter for one MATCH clause,
  including OPTIONAL padding and the WHERE filter.  Candidate enumeration
  order replicates the matcher exactly (id-sorted scans, outgoing before
  incoming, self-loop dedup for undirected steps) so row order — not just
  row bags — matches interpreted execution.
* :class:`UnwindOp` — list explosion.
* :class:`ProjectOp` — WITH/RETURN projection, aggregation, DISTINCT,
  ORDER BY, SKIP/LIMIT, and the WITH ... WHERE filter.
* :class:`CallOp` — procedure invocation.

Each operator charges the evaluation resource envelope one step per unit of
work (per chain extension, per row) so budgeted campaigns stay bounded in
compiled mode, and tallies rows into ``ctx.profile`` when observability is
on (flushed as ``plan.rows`` counters by the owning engine).
"""

from __future__ import annotations

import statistics
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cypher import ast
from repro.cypher.functions import is_aggregate
from repro.engine.envelope import ENVELOPE
from repro.engine.errors import CypherRuntimeError, CypherSyntaxError, CypherTypeError
from repro.engine.evaluator import Evaluator, has_aggregate
from repro.engine.executor import _as_literal
from repro.engine.plan.compiler import compile_expr
from repro.graph import values as V
from repro.graph.model import Node, Path, PropertyGraph, Relationship

__all__ = [
    "ExecutionContext",
    "NodeSpec",
    "RelSpec",
    "ChainSpec",
    "MatchOp",
    "UnwindOp",
    "ProjectOp",
    "CallOp",
    "compile_aggregate",
]

Row = Dict[str, Any]
CompiledExpr = Callable[[Row, "ExecutionContext"], Any]


class ExecutionContext:
    """Per-execution runtime state threaded through compiled operators.

    Plans are graph-independent: they resolve the graph (and the dialect's
    procedure registry) through this context at run time, so a cached plan
    survives ``load_graph``.  ``profile`` is either ``None`` (observability
    off, or dual mode where the compiled leg must stay invisible) or a
    plain dict of per-operator row tallies the engine flushes per query.
    ``op_profile`` (same gating) is the boundary-level operator profiler —
    an :class:`repro.obs.profile.OperatorProfile` accumulating wall time,
    invocations, and evaluation steps per operator.

    ``evaluator`` is a plan-private tree-walking evaluator used only by the
    cold aggregate-recombination path; its probe tallies are deliberately
    never flushed, so compiled execution adds nothing to the interpreter's
    ``evaluator.calls`` metric.
    """

    __slots__ = ("graph", "procedures", "evaluator", "profile", "op_profile")

    def __init__(
        self,
        graph: PropertyGraph,
        procedures: Optional[Dict[str, Any]] = None,
        profile: Optional[Dict[str, int]] = None,
        op_profile: Optional[Any] = None,
    ):
        self.graph = graph
        self.procedures = procedures if procedures is not None else {}
        self.evaluator = Evaluator(graph)
        self.profile = profile
        self.op_profile = op_profile


def _tally(ctx: ExecutionContext, operator: str, rows: int) -> None:
    profile = ctx.profile
    if profile is not None and rows:
        profile[operator] = profile.get(operator, 0) + rows


# -- MATCH -----------------------------------------------------------------


class NodeSpec:
    """One node pattern element, compiled.

    ``scan`` (first-chain-node only) yields candidate nodes in the exact
    order the matcher would enumerate them; index-backed scans may yield a
    subset, but every candidate is still checked against the full pattern
    (labels + property map + binding), so narrowing is only ever a skip of
    work, never a semantic change.
    """

    __slots__ = ("variable", "labels", "prop_checks", "scan", "filters")

    def __init__(
        self,
        variable: Optional[str],
        labels: Tuple[str, ...],
        prop_checks: Optional[Tuple[Tuple[str, CompiledExpr], ...]],
        scan: Optional[Callable[[ExecutionContext, Row], Sequence[Node]]] = None,
        filters: Optional[Tuple[CompiledExpr, ...]] = None,
    ):
        self.variable = variable
        self.labels = labels
        self.prop_checks = prop_checks
        self.scan = scan
        # Pushed-down WHERE conjuncts, evaluated the moment this element's
        # bindings exist.  Only provably-total conjuncts are ever placed
        # here (see the planner), so early evaluation cannot raise anything
        # the completion-time WHERE would not have raised.
        self.filters = filters


class RelSpec:
    """One relationship pattern element, compiled.

    ``direction``/``adjacency_type`` parameterize the graph's cached
    ``expand_pairs`` view of ``(relationship, far node id)`` pairs from the
    current node.  When the planner pushed the (single) relationship type
    into typed adjacency (``adjacency_type``), ``check_types`` is False —
    the type test already happened in the index, in the same position the
    matcher would have applied it (types are checked before properties).
    """

    __slots__ = (
        "variable",
        "types",
        "check_types",
        "prop_checks",
        "direction",
        "adjacency_type",
    )

    def __init__(
        self,
        variable: Optional[str],
        types: Tuple[str, ...],
        check_types: bool,
        prop_checks: Optional[Tuple[Tuple[str, CompiledExpr], ...]],
        direction: str,
        adjacency_type: Optional[str] = None,
    ):
        self.variable = variable
        self.types = types
        self.check_types = check_types
        self.prop_checks = prop_checks
        self.direction = direction
        self.adjacency_type = adjacency_type


class ChainSpec:
    """A compiled path pattern: first node plus (rel, node) steps."""

    __slots__ = ("first", "steps", "path_variable", "end_filters")

    def __init__(
        self,
        first: NodeSpec,
        steps: Tuple[Tuple[RelSpec, NodeSpec], ...],
        path_variable: Optional[str],
        end_filters: Optional[Tuple[CompiledExpr, ...]] = None,
    ):
        self.first = first
        self.steps = steps
        self.path_variable = path_variable
        # Conjuncts that need this chain's path variable (or completed
        # bindings) — checked once the chain is fully matched.
        self.end_filters = end_filters


def _filters_pass(
    filters: Tuple[CompiledExpr, ...], env: Row, ctx: ExecutionContext
) -> bool:
    """All pushed-down conjuncts True?  (False/null both prune, like AND.)

    Pushed conjuncts are total (see ``planner._safe_conjunct``) but their
    verdicts are still ternary; the inline check keeps the prune path
    call-free while non-boolean verdicts raise through coerce_to_boolean.
    """
    for fn in filters:
        verdict = fn(env, ctx)
        if verdict is not True:
            if verdict is not None and verdict.__class__ is not bool:
                V.coerce_to_boolean(verdict)
            return False
    return True


def _props_ok(
    prop_checks: Tuple[Tuple[str, CompiledExpr], ...],
    element: Any,
    env: Row,
    ctx: ExecutionContext,
) -> bool:
    for key, value_fn in prop_checks:
        expected = value_fn(env, ctx)
        if V.ternary_equals(element.properties.get(key), expected) is not True:
            return False
    return True


def _node_ok(
    spec: NodeSpec, node: Node, env: Row, ctx: ExecutionContext
) -> bool:
    """Full node check *including* the binding constraint (chain interior)."""
    variable = spec.variable
    if variable is not None and variable in env:
        bound = env[variable]
        if not isinstance(bound, Node) or bound.id != node.id:
            return False
    for label in spec.labels:
        if label not in node.labels:
            return False
    if spec.prop_checks is not None:
        if not _props_ok(spec.prop_checks, node, env, ctx):
            return False
    return True


def _node_ok_nobind(
    spec: NodeSpec, node: Node, env: Row, ctx: ExecutionContext
) -> bool:
    """Node check without the binding constraint (first-node candidates)."""
    for label in spec.labels:
        if label not in node.labels:
            return False
    if spec.prop_checks is not None:
        if not _props_ok(spec.prop_checks, node, env, ctx):
            return False
    return True


def _rel_ok(
    spec: RelSpec, rel: Relationship, env: Row, ctx: ExecutionContext
) -> bool:
    if spec.check_types and spec.types and rel.type not in spec.types:
        return False
    if spec.prop_checks is not None:
        if not _props_ok(spec.prop_checks, rel, env, ctx):
            return False
    return True


class MatchOp:
    """Fused scan → expand → filter for one MATCH clause.

    Unlike the matcher's generator pipeline (which copies the bindings dict
    at every chain extension), this operator mutates a single environment
    dict in place and undoes each binding on backtrack — the dominant
    constant-factor win of compiled execution.  Enumeration order is
    bit-for-bit the matcher's.
    """

    label = "match"

    def __init__(
        self,
        chains: Tuple[ChainSpec, ...],
        new_vars: List[str],
        where_fn: Optional[CompiledExpr],
        optional: bool,
        enforce_rel_uniqueness: bool,
        pre_filters: Optional[Tuple[CompiledExpr, ...]] = None,
    ):
        self.chains = chains
        self.new_vars = new_vars
        self.where_fn = where_fn
        self.optional = optional
        self.enforce_rel_uniqueness = enforce_rel_uniqueness
        # Conjuncts over pre-existing columns only: one check per input
        # row, before any scan.  A failing pre-filter prunes the whole
        # exploration (but OPTIONAL padding still applies, exactly as if
        # every candidate had failed the completion-time WHERE).
        self.pre_filters = pre_filters
        # Per-run recursion state, populated by run() (see there).
        self._ctx = self._env = self._used = self._out = None

    def run(
        self, columns: List[str], rows: List[Row], ctx: ExecutionContext
    ) -> Tuple[List[str], List[Row]]:
        out_columns = columns + self.new_vars
        out_rows: List[Row] = []
        used: set = set()
        pre_filters = self.pre_filters
        # Run-constant recursion state lives on the instance for the
        # duration of the call: plan execution is strictly sequential per
        # engine, and trimming four arguments off _chain/_extend is a
        # measurable win on deep backtracking.
        self._ctx = ctx
        self._used = used
        self._out = out_rows
        for row in rows:
            before = len(out_rows)
            if pre_filters is None or _filters_pass(pre_filters, row, ctx):
                self._env = dict(row)
                self._chain(0)
            if len(out_rows) == before and self.optional:
                padded = dict(row)
                for name in self.new_vars:
                    padded.setdefault(name, None)
                out_rows.append(padded)
        self._ctx = self._env = self._used = self._out = None
        _tally(ctx, "match", len(out_rows))
        return out_columns, out_rows

    def _chain(self, chain_index: int) -> None:
        chains = self.chains
        env = self._env
        ctx = self._ctx
        if chain_index == len(chains):
            # Every pattern matched: apply WHERE, then snapshot the env.
            # The verdict check is inlined: True passes, False/None prune,
            # anything else still raises through coerce_to_boolean with
            # the exact interpreter message.
            where_fn = self.where_fn
            if where_fn is not None:
                verdict = where_fn(env, ctx)
                if verdict is not True:
                    if verdict is not None and verdict.__class__ is not bool:
                        V.coerce_to_boolean(verdict)
                    return
            self._out.append(dict(env))
            return

        chain = chains[chain_index]
        first = chain.first
        variable = first.variable

        filters = first.filters
        if variable is not None and variable in env:
            bound = env[variable]
            if bound is None:
                return  # null from OPTIONAL MATCH never re-matches
            if not isinstance(bound, Node):
                raise CypherTypeError(f"variable `{variable}` is not a node")
            if _node_ok_nobind(first, bound, env, ctx):
                if filters is None or _filters_pass(filters, env, ctx):
                    self._extend(chain, chain_index, 0, bound, [bound], [])
            return

        profile = ctx.profile
        scan = first.scan
        for node in scan(ctx, env):  # type: ignore[misc]
            if not _node_ok_nobind(first, node, env, ctx):
                continue
            if profile is not None:
                profile["scan"] = profile.get("scan", 0) + 1
            if variable is not None:
                env[variable] = node
            if filters is None or _filters_pass(filters, env, ctx):
                self._extend(chain, chain_index, 0, node, [node], [])
            if variable is not None:
                del env[variable]

    def _extend(
        self,
        chain: ChainSpec,
        chain_index: int,
        step_index: int,
        current: Node,
        chain_nodes: List[Node],
        chain_rels: List[Relationship],
    ) -> None:
        if ENVELOPE.limit is not None:
            # One step per partial-chain extension, mirroring the matcher:
            # variable-length blowup is metered here in compiled mode too.
            ENVELOPE.charge()
        env = self._env
        ctx = self._ctx
        steps = chain.steps
        if step_index == len(steps):
            path_variable = chain.path_variable
            end_filters = chain.end_filters
            if path_variable is not None:
                had = path_variable in env
                old = env.get(path_variable)
                env[path_variable] = Path(tuple(chain_nodes), tuple(chain_rels))
                if end_filters is None or _filters_pass(end_filters, env, ctx):
                    self._chain(chain_index + 1)
                if had:
                    env[path_variable] = old
                else:
                    del env[path_variable]
            else:
                if end_filters is None or _filters_pass(end_filters, env, ctx):
                    self._chain(chain_index + 1)
            return

        rel_spec, node_spec = steps[step_index]
        enforce = self.enforce_rel_uniqueness
        used = self._used
        rel_variable = rel_spec.variable
        node_variable = node_spec.variable
        graph = ctx.graph
        profile = ctx.profile

        bound_rel = None
        if rel_variable is not None and rel_variable in env:
            bound_rel = env[rel_variable]
            if bound_rel is None:
                return
            if not isinstance(bound_rel, Relationship):
                raise CypherTypeError(
                    f"variable `{rel_variable}` is not a relationship"
                )

        # _rel_ok/_node_ok inlined: this loop runs once per candidate edge
        # and the call overhead is measurable on variable-heavy chains.
        check_types = rel_spec.check_types and rel_spec.types
        rel_types = rel_spec.types
        rel_props = rel_spec.prop_checks
        node_labels = node_spec.labels
        node_props = node_spec.prop_checks
        node_by_id = graph._nodes

        for rel, far in graph.expand_pairs(
            current.id, rel_spec.direction, rel_spec.adjacency_type
        ):
            # Check order replicates the matcher: bound-id filter, then
            # type/property match, then uniqueness, then the target node.
            if bound_rel is not None and rel.id != bound_rel.id:
                continue
            if check_types and rel.type not in rel_types:
                continue
            if rel_props is not None and not _props_ok(rel_props, rel, env, ctx):
                continue
            if enforce and rel.id in used:
                continue
            target = node_by_id[far]
            if node_variable is not None and node_variable in env:
                bound = env[node_variable]
                if not isinstance(bound, Node) or bound.id != target.id:
                    continue
            if node_labels:
                ok = True
                for label in node_labels:
                    if label not in target.labels:
                        ok = False
                        break
                if not ok:
                    continue
            if node_props is not None and not _props_ok(node_props, target, env, ctx):
                continue
            if profile is not None:
                profile["expand"] = profile.get("expand", 0) + 1

            if rel_variable is not None:
                rel_had = rel_variable in env
                rel_old = env.get(rel_variable)
                env[rel_variable] = rel
            if node_variable is not None:
                node_had = node_variable in env
                node_old = env.get(node_variable)
                env[node_variable] = target
            filters = node_spec.filters
            if filters is None or _filters_pass(filters, env, ctx):
                if enforce:
                    # rel.id is guaranteed absent (the uniqueness check
                    # above skipped duplicates), so add/discard is an exact
                    # undo.
                    used.add(rel.id)
                chain_nodes.append(target)
                chain_rels.append(rel)

                self._extend(
                    chain, chain_index, step_index + 1, target,
                    chain_nodes, chain_rels,
                )

                chain_rels.pop()
                chain_nodes.pop()
                if enforce:
                    used.discard(rel.id)
            if node_variable is not None:
                if node_had:
                    env[node_variable] = node_old
                else:
                    del env[node_variable]
            if rel_variable is not None:
                if rel_had:
                    env[rel_variable] = rel_old
                else:
                    del env[rel_variable]


# -- UNWIND ----------------------------------------------------------------


class UnwindOp:
    """``UNWIND expr AS alias``: list explosion with null skipping."""

    label = "unwind"

    def __init__(self, expr_fn: CompiledExpr, alias: str):
        self.expr_fn = expr_fn
        self.alias = alias

    def run(
        self, columns: List[str], rows: List[Row], ctx: ExecutionContext
    ) -> Tuple[List[str], List[Row]]:
        alias = self.alias
        expr_fn = self.expr_fn
        out_columns = columns + ([alias] if alias not in columns else [])
        out_rows: List[Row] = []
        for row in rows:
            if ENVELOPE.limit is not None:
                ENVELOPE.charge()
            value = expr_fn(row, ctx)
            if value is None:
                continue
            items = value if isinstance(value, list) else [value]
            for item in items:
                new_row = dict(row)
                new_row[alias] = item
                out_rows.append(new_row)
        _tally(ctx, "unwind", len(out_rows))
        return out_columns, out_rows


# -- WITH / RETURN ---------------------------------------------------------


def _distinct_rows(columns: List[str], rows: List[Row]) -> List[Row]:
    seen = set()
    out: List[Row] = []
    for row in rows:
        key = tuple(V.equivalence_key(row.get(col)) for col in columns)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


class ProjectOp:
    """WITH/RETURN: projection, aggregation, DISTINCT, ORDER BY, SKIP/LIMIT.

    Replicates ``Executor._project`` stage for stage, including the exact
    ORDER BY environment rules (aggregated projections sort over projected
    rows; non-distinct plain projections sort over original-plus-projected
    merged environments) and the stable right-to-left multi-key sort.
    """

    def __init__(
        self,
        columns: List[str],
        plain_items: List[Tuple[str, CompiledExpr]],
        agg_items: Optional[List[Tuple[str, Optional[Callable]]]],
        distinct: bool,
        order_fns: List[Tuple[CompiledExpr, bool]],
        skip_fn: Optional[CompiledExpr],
        limit_fn: Optional[CompiledExpr],
        where_fn: Optional[CompiledExpr],
    ):
        self.columns = columns
        self.plain_items = plain_items
        # agg_items is None for plain projections; otherwise a per-column
        # list where group keys carry None and aggregates carry their
        # fold closure (rows, ctx) -> value.
        self.agg_items = agg_items
        self.aggregated = agg_items is not None
        self.label = "aggregate" if self.aggregated else "project"
        self.distinct = distinct
        self.order_fns = order_fns
        self.skip_fn = skip_fn
        self.limit_fn = limit_fn
        self.where_fn = where_fn

    def run(
        self, columns: List[str], rows: List[Row], ctx: ExecutionContext
    ) -> Tuple[List[str], List[Row]]:
        out_columns = self.columns
        if self.aggregated:
            projected = self._project_aggregated(rows, ctx)
            if self.distinct:
                projected = _distinct_rows(out_columns, projected)
        else:
            plain_items = self.plain_items
            projected = []
            for row in rows:
                if ENVELOPE.limit is not None:
                    ENVELOPE.charge()
                projected.append(
                    {col: fn(row, ctx) for col, fn in plain_items}
                )
            if self.distinct:
                projected = _distinct_rows(out_columns, projected)

        if self.order_fns:
            projected = self._order(rows, projected, ctx)

        if self.skip_fn is not None:
            projected = projected[self._count(self.skip_fn, "SKIP", ctx):]
        if self.limit_fn is not None:
            projected = projected[: self._count(self.limit_fn, "LIMIT", ctx)]

        where_fn = self.where_fn
        if where_fn is not None:
            projected = [
                row
                for row in projected
                if V.coerce_to_boolean(where_fn(row, ctx)) is True
            ]
        _tally(ctx, "aggregate" if self.aggregated else "project", len(projected))
        return out_columns, projected

    def _project_aggregated(
        self, rows: List[Row], ctx: ExecutionContext
    ) -> List[Row]:
        group_items = [
            (col, fn)
            for (col, fn), (_col, agg_fn) in zip(self.plain_items, self.agg_items)
            if agg_fn is None
        ]
        groups: Dict[tuple, Dict[str, Any]] = {}
        for row in rows:
            if ENVELOPE.limit is not None:
                ENVELOPE.charge()
            key_values = {col: fn(row, ctx) for col, fn in group_items}
            key = tuple(
                V.equivalence_key(key_values[col]) for col, _fn in group_items
            )
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups[key] = {"key_values": key_values, "rows": []}
            bucket["rows"].append(row)

        if not groups and not group_items:
            # Aggregation over zero rows with no grouping keys: one row.
            groups[()] = {"key_values": {}, "rows": []}

        out_rows: List[Row] = []
        for bucket in groups.values():
            out_row: Row = {}
            for col, agg_fn in self.agg_items:
                if agg_fn is not None:
                    out_row[col] = agg_fn(bucket["rows"], ctx)
                else:
                    out_row[col] = bucket["key_values"][col]
            out_rows.append(out_row)
        return out_rows

    def _order(
        self, original_rows: List[Row], projected: List[Row], ctx: ExecutionContext
    ) -> List[Row]:
        if self.aggregated:
            envs = [dict(row) for row in projected]
        else:
            source = original_rows if not self.distinct else None
            if source is not None and len(source) == len(projected):
                envs = []
                for orig, proj in zip(source, projected):
                    env = dict(orig)
                    env.update(proj)
                    envs.append(env)
            else:
                envs = [dict(row) for row in projected]
        indexed = list(zip(projected, envs))
        # Stable multi-key sort: apply keys right-to-left.
        for order_fn, descending in reversed(self.order_fns):
            indexed.sort(
                key=lambda pair, fn=order_fn: V.order_key(fn(pair[1], ctx)),
                reverse=descending,
            )
        return [row for row, _env in indexed]

    def _count(
        self, fn: CompiledExpr, keyword: str, ctx: ExecutionContext
    ) -> int:
        value = fn({}, ctx)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise CypherSyntaxError(
                f"{keyword} requires a non-negative integer literal"
            )
        return value


# -- CALL ------------------------------------------------------------------


class CallOp:
    """``CALL proc(args) YIELD ...``: cartesian product with procedure rows."""

    label = "call"

    def __init__(
        self,
        procedure: str,
        arg_fns: Tuple[CompiledExpr, ...],
        yield_items: Tuple[Tuple[str, Optional[str]], ...],
    ):
        self.procedure = procedure
        self.arg_fns = arg_fns
        self.yield_items = yield_items

    def run(
        self, columns: List[str], rows: List[Row], ctx: ExecutionContext
    ) -> Tuple[List[str], List[Row]]:
        proc = ctx.procedures.get(self.procedure)
        if proc is None:
            raise CypherRuntimeError(
                f"there is no procedure named `{self.procedure}`"
            )
        args = [fn({}, ctx) for fn in self.arg_fns]
        proc_columns, proc_rows = proc(ctx.graph, args)

        if self.yield_items:
            selected = []
            for name, alias in self.yield_items:
                if name not in proc_columns:
                    raise CypherSyntaxError(
                        f"procedure `{self.procedure}` does not yield `{name}`"
                    )
                selected.append((proc_columns.index(name), alias or name))
        else:
            selected = [(index, name) for index, name in enumerate(proc_columns)]

        out_columns = columns + [alias for _idx, alias in selected]
        out_rows: List[Row] = []
        for row in rows:
            for proc_row in proc_rows:
                new_row = dict(row)
                for index, alias in selected:
                    new_row[alias] = proc_row[index]
                out_rows.append(new_row)
        _tally(ctx, "call", len(out_rows))
        return out_columns, out_rows


# -- aggregate compilation -------------------------------------------------
#
# Mirrors Executor._eval_aggregate_expr / Executor._aggregate.  Every error
# the interpreter raises at evaluation time is raised at *run* time here too
# (via deferred closures), never at plan-build time — earlier clauses must
# get the chance to raise their own errors first.


def _fold_count(values: List[Any]) -> Any:
    return len(values)


def _fold_collect(values: List[Any]) -> Any:
    return values


def _fold_sum(values: List[Any]) -> Any:
    total: Any = 0
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CypherTypeError("sum() requires numbers")
        total = total + value
    return total


def _fold_avg(values: List[Any]) -> Any:
    if not values:
        return None
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CypherTypeError("avg() requires numbers")
    return sum(values) / len(values)


def _fold_min(values: List[Any]) -> Any:
    if not values:
        return None
    return sorted(values, key=V.order_key)[0]


def _fold_max(values: List[Any]) -> Any:
    if not values:
        return None
    return sorted(values, key=V.order_key)[-1]


def _make_stdev_fold(name: str, func: Callable[[List[float]], float]):
    def fold(values: List[Any]) -> Any:
        numbers = []
        for value in values:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise CypherTypeError(f"{name}() requires numbers")
            numbers.append(float(value))
        if len(numbers) < 2:
            return 0.0
        return func(numbers)

    return fold


_AGG_FOLDS: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _fold_count,
    "collect": _fold_collect,
    "sum": _fold_sum,
    "avg": _fold_avg,
    "min": _fold_min,
    "max": _fold_max,
    "stdev": _make_stdev_fold("stdev", statistics.stdev),
    "stdevp": _make_stdev_fold("stdevp", statistics.pstdev),
}


def _compile_aggregate_call(call: ast.FunctionCall) -> Callable:
    name = call.name.lower()
    if name == "count" and not call.args:
        return lambda rows, ctx: len(rows)
    if len(call.args) != 1:
        message = f"{call.name}() takes exactly one argument"

        def run_arity(rows, ctx, _message=message):
            raise CypherSyntaxError(_message)

        return run_arity

    arg_fn = compile_expr(call.args[0])
    distinct = call.distinct
    fold = _AGG_FOLDS.get(name)
    unknown_message = f"unknown aggregate {call.name}()"

    def run(rows, ctx):
        values = []
        for row in rows:
            value = arg_fn(row, ctx)
            if value is not None:
                values.append(value)
        if distinct:
            seen = set()
            unique = []
            for value in values:
                key = V.equivalence_key(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if fold is None:
            # Defensive, like the interpreter's trailing raise: checked
            # after argument evaluation so errors surface in the same order.
            raise CypherSyntaxError(unknown_message)
        return fold(values)

    return run


def compile_aggregate(expr: ast.Expression) -> Callable:
    """Compile an aggregate-context projection item to ``(rows, ctx) -> value``.

    Aggregate recombination (``sum(x) + count(*)``) re-enters the plan's
    private tree-walking evaluator with literal-wrapped partial results —
    a cold path, executed once per group, where closure compilation would
    buy nothing.
    """
    if isinstance(expr, ast.CountStar):
        return lambda rows, ctx: len(rows)
    if isinstance(expr, ast.FunctionCall) and is_aggregate(expr.name):
        return _compile_aggregate_call(expr)
    if not has_aggregate(expr):
        fn = compile_expr(expr)

        def run_constant(rows, ctx):
            return fn(rows[0] if rows else {}, ctx)

        return run_constant
    if isinstance(expr, ast.Unary):
        inner = compile_aggregate(expr.operand)
        op = expr.op

        def run_unary(rows, ctx):
            value = inner(rows, ctx)
            return ctx.evaluator.evaluate(ast.Unary(op, ast.Literal(value)), {})

        return run_unary
    if isinstance(expr, ast.Binary):
        left = compile_aggregate(expr.left)
        right = compile_aggregate(expr.right)
        op = expr.op

        def run_binary(rows, ctx):
            lhs = left(rows, ctx)
            rhs = right(rows, ctx)
            return ctx.evaluator.evaluate(
                ast.Binary(op, _as_literal(lhs), _as_literal(rhs)), {}
            )

        return run_binary

    message = f"unsupported aggregate expression shape: {type(expr).__name__}"

    def run_unsupported(rows, ctx, _message=message):
        raise CypherSyntaxError(_message)

    return run_unsupported
