"""Reference Cypher execution engine."""

from repro.engine.binding import BindingTable, ResultSet, Row
from repro.engine.envelope import (
    ENVELOPE,
    ResourceEnvelope,
    evaluation_budget,
    parked_envelope,
)
from repro.engine.errors import (
    CypherError,
    CypherRuntimeError,
    CypherSyntaxError,
    CypherTypeError,
    DatabaseCrash,
    EvaluationBudgetExceeded,
    PlanDivergenceError,
    ResourceExhausted,
)
from repro.engine.evaluator import Evaluator, has_aggregate
from repro.engine.executor import Executor, default_procedures
from repro.engine.matcher import Matcher

__all__ = [
    "BindingTable",
    "ResultSet",
    "Row",
    "Evaluator",
    "Matcher",
    "Executor",
    "default_procedures",
    "has_aggregate",
    "CypherError",
    "CypherSyntaxError",
    "CypherRuntimeError",
    "CypherTypeError",
    "DatabaseCrash",
    "EvaluationBudgetExceeded",
    "PlanDivergenceError",
    "ResourceExhausted",
    "ENVELOPE",
    "ResourceEnvelope",
    "evaluation_budget",
    "parked_envelope",
]
