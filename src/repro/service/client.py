"""A stdlib client for the campaign service (`repro submit` et al.).

Thin :mod:`urllib.request` wrapper over the JSON API in
:mod:`repro.service.server`.  The one piece of real behaviour lives in
:meth:`ServiceClient.submit`: when the service answers ``429`` the client
*honours the backpressure contract* — it sleeps the server-provided
``Retry-After`` and retries, up to a bounded number of attempts, so a
polite caller rides out a full queue instead of hammering it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, body: Dict[str, Any]):
        super().__init__(
            f"service returned {status}: {body.get('error', body)}"
        )
        self.status = status
        self.body = body


class ServiceClient:
    """Talk to one ``repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 10.0,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._sleep = sleep

    # -- transport --------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
                return {"status": response.status, "body": body,
                        "headers": dict(response.headers)}
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": str(exc)}
            return {"status": exc.code, "body": body,
                    "headers": dict(exc.headers or {})}

    def _expect(self, response: Dict[str, Any], *ok: int) -> Dict[str, Any]:
        if response["status"] not in ok:
            raise ServiceError(response["status"], response["body"])
        return response["body"]

    # -- verbs ------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._expect(self._request("GET", "/health"), 200)

    def stats(self) -> Dict[str, Any]:
        return self._expect(self._request("GET", "/stats"), 200)

    def submit(self, spec: Dict[str, Any],
               max_backpressure_retries: int = 5) -> Dict[str, Any]:
        """Submit a job spec, honouring 429 + Retry-After backpressure."""
        for _ in range(max_backpressure_retries + 1):
            response = self._request("POST", "/jobs", spec)
            if response["status"] != 429:
                return self._expect(response, 202)
            retry_after = response["body"].get("retry_after")
            if retry_after is None:
                retry_after = response["headers"].get("Retry-After", 1)
            self._sleep(max(0.1, float(retry_after)))
        raise ServiceError(429, response["body"])

    def jobs(self) -> List[Dict[str, Any]]:
        return self._expect(self._request("GET", "/jobs"), 200)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._expect(self._request("GET", f"/jobs/{job_id}"), 200)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._expect(
            self._request("POST", f"/jobs/{job_id}/cancel"), 200
        )

    def drain(self) -> Dict[str, Any]:
        return self._expect(self._request("POST", "/drain"), 202)

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until *job_id* leaves the ``running`` state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] != "running":
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout:.0f}s"
                )
            self._sleep(poll)
