"""Campaign job specs: the unit of admission for the campaign service.

A client submits one :class:`JobSpec` — a (testers × engines × seeds)
grid description plus the campaign knobs the CLI already exposes — and
the scheduler decomposes it into :class:`repro.runtime.CampaignCell`\\ s
through the exact same :func:`repro.experiments.campaign.campaign_grid_cells`
path the inline runner uses.  That sharing is the crash-recovery
byte-identity contract in miniature: a job re-derived from its journaled
spec produces the *same* cells with the *same* SHA-256 seeds, so a
restarted service re-runs exactly the work the dead one had left.

Specs are plain JSON dicts on the wire; :meth:`JobSpec.from_dict`
validates eagerly (unknown keys, unknown testers/engines, bad modes) so a
malformed submission is a 400 at admission, never a worker crash later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["JobSpec"]

_EXECUTION_MODES = ("interpreted", "compiled", "dual")
_ADAPTIVE_STRATEGIES = ("epsilon", "ucb")


def _tuple_of_str(value: Any, name: str) -> Tuple[str, ...]:
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, (list, tuple)) or not value
            or not all(isinstance(item, str) for item in value)):
        raise ValueError(f"{name} must be a non-empty list of strings")
    return tuple(value)


@dataclass(frozen=True)
class JobSpec:
    """One submitted campaign grid: what to run, with which knobs."""

    testers: Tuple[str, ...] = ("GQS",)
    engines: Tuple[str, ...] = ("falkordb",)
    seeds: Tuple[int, ...] = (0,)
    budget_seconds: float = 30.0
    gate_scale: float = 1.0
    max_queries: Optional[int] = None
    derive_seeds: bool = False
    execution_mode: str = "interpreted"
    adaptive: Optional[str] = None
    stateful: Optional[float] = None
    step_budget: Optional[int] = None
    record_metrics: bool = False
    record_coverage: bool = False
    record_triage: bool = False
    # Wire extras tolerated but not interpreted (forward compatibility).
    extra: Tuple[Tuple[str, Any], ...] = field(default=(), compare=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Validate and build a spec from a wire/journal dict."""
        from repro.experiments.campaign import TESTER_NAMES
        from repro.gdb import ALL_ENGINE_NAMES

        if not isinstance(data, dict):
            raise ValueError("job spec must be a JSON object")
        known = {
            "testers", "engines", "seeds", "budget_seconds", "gate_scale",
            "max_queries", "derive_seeds", "execution_mode", "adaptive",
            "stateful", "step_budget", "record_metrics", "record_coverage",
            "record_triage",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job spec key(s): {', '.join(unknown)}")
        testers = _tuple_of_str(data.get("testers", ("GQS",)), "testers")
        engines = _tuple_of_str(data.get("engines", ("falkordb",)), "engines")
        for tester in testers:
            if tester not in TESTER_NAMES:
                raise ValueError(f"unknown tester {tester!r}")
        for engine in engines:
            if engine not in ALL_ENGINE_NAMES:
                raise ValueError(f"unknown engine {engine!r}")
        seeds = data.get("seeds", (0,))
        if isinstance(seeds, int):
            seeds = [seeds]
        if (not isinstance(seeds, (list, tuple)) or not seeds
                or not all(isinstance(s, int) and not isinstance(s, bool)
                           for s in seeds)):
            raise ValueError("seeds must be a non-empty list of integers")
        budget = data.get("budget_seconds", 30.0)
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise ValueError("budget_seconds must be a positive number")
        mode = data.get("execution_mode", "interpreted")
        if mode not in _EXECUTION_MODES:
            raise ValueError(
                f"execution_mode must be one of {_EXECUTION_MODES}"
            )
        adaptive = data.get("adaptive")
        if adaptive is not None and adaptive not in _ADAPTIVE_STRATEGIES:
            raise ValueError(
                f"adaptive must be one of {_ADAPTIVE_STRATEGIES} or null"
            )
        stateful = data.get("stateful")
        if stateful is not None and not (
            isinstance(stateful, (int, float)) and 0.0 <= stateful <= 1.0
        ):
            raise ValueError("stateful must be a ratio in [0, 1] or null")
        return cls(
            testers=testers,
            engines=engines,
            seeds=tuple(seeds),
            budget_seconds=float(budget),
            gate_scale=float(data.get("gate_scale", 1.0)),
            max_queries=data.get("max_queries"),
            derive_seeds=bool(data.get("derive_seeds", False)),
            execution_mode=mode,
            adaptive=adaptive,
            stateful=None if stateful is None else float(stateful),
            step_budget=data.get("step_budget"),
            record_metrics=bool(data.get("record_metrics", False)),
            record_coverage=bool(data.get("record_coverage", False)),
            record_triage=bool(data.get("record_triage", False)),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready journal/wire form (round-trips via from_dict)."""
        return {
            "testers": list(self.testers),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "budget_seconds": self.budget_seconds,
            "gate_scale": self.gate_scale,
            "max_queries": self.max_queries,
            "derive_seeds": self.derive_seeds,
            "execution_mode": self.execution_mode,
            "adaptive": self.adaptive,
            "stateful": self.stateful,
            "step_budget": self.step_budget,
            "record_metrics": self.record_metrics,
            "record_coverage": self.record_coverage,
            "record_triage": self.record_triage,
        }

    def cells(self) -> List[Any]:
        """Decompose into grid cells — the same path the CLI grid takes.

        Unsupported (tester, engine) pairings are skipped exactly as
        :func:`campaign_grid_cells` skips them; an empty decomposition is
        rejected at admission so a job can never be accepted and then
        silently do nothing.
        """
        from repro.experiments.campaign import campaign_grid_cells

        cells = campaign_grid_cells(
            self.testers,
            self.engines,
            seeds=self.seeds,
            budget_seconds=self.budget_seconds,
            gate_scale=self.gate_scale,
            max_queries=self.max_queries,
            derive_seeds=self.derive_seeds,
            execution_mode=self.execution_mode,
            adaptive=self.adaptive,
            stateful=self.stateful,
        )
        if not cells:
            raise ValueError(
                "job decomposes into no supported (tester, engine) cells"
            )
        return cells

    def worker_spec(self, cell) -> Dict[str, Any]:
        """The primitives-only worker spec for one of this job's cells.

        Mirrors ``ParallelCampaignRunner._task`` — the same keys feed the
        same ``repro.runtime.parallel._run_cell`` entry point, which is
        what makes service results byte-identical to inline runs.
        """
        return {
            "tester": cell.tester,
            "engine": cell.engine,
            "seed": cell.seed,
            "budget_seconds": cell.budget_seconds,
            "gate_scale": cell.gate_scale,
            "max_queries": cell.max_queries,
            "execution_mode": cell.execution_mode,
            "adaptive": cell.adaptive,
            "stateful": cell.stateful,
            "record_queries": False,
            "record_metrics": self.record_metrics,
            "record_coverage": self.record_coverage,
            "record_triage": self.record_triage,
            "bundle_dir": None,
            "reduce_bundles": False,
            "step_budget": self.step_budget,
        }
