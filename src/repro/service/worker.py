"""The lease worker: one process per leased cell, with a heartbeat.

A lease worker is the service-side twin of the supervisor's slot process
(:func:`repro.runtime.supervisor._slot_main`): it runs exactly one cell
attempt through the sandboxed :func:`_run_cell_guarded` entry point and
reports the payload over a pipe.  The difference is *liveness*: while the
cell runs, a daemon thread reports a heartbeat every ``heartbeat_seconds``
so the scheduler can distinguish "slow but alive" from "dead or wedged"
without waiting out the full lease.

Messages on the pipe are dicts tagged by ``type``:

* ``{"type": "heartbeat", "key": [...], "attempt": n}`` — periodic proof
  of life;
* ``{"type": "result", ...}`` — the final guarded payload (``status`` is
  ``"ok"`` with the campaign + events, or ``"error"`` with the structured
  failure), sent exactly once.

Chaos hooks: the task's ``chaos`` directive (crash/hang/error) is applied
by ``_run_cell_guarded`` itself, so an injected crash kills the heartbeat
thread with the process — exactly what a real worker death looks like.
``stall_heartbeats`` keeps the cell running but suppresses every beat,
exercising the scheduler's missed-heartbeat revocation in isolation.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Dict

from repro.runtime.supervisor import _init_worker, _run_cell_guarded

__all__ = ["lease_worker_main"]


def _reset_inherited_signals() -> None:
    """Detach the fork-inherited asyncio signal plumbing.

    The serving process registers SIGTERM/SIGINT handlers through
    ``loop.add_signal_handler``, which installs a Python-level handler
    plus a wakeup fd pointing at the event loop's self-pipe.  A forked
    worker inherits both — so a ``terminate()`` aimed at the *worker*
    (lease revocation, cancellation) would make the worker's handler
    write the signum into the **parent's** wakeup pipe, and the parent
    would drain itself as if it had been SIGTERMed.  Restore default
    dispositions before any lease can be revoked.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread / closed fd: nothing leaks
        pass
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _heartbeat_loop(conn, task: Dict[str, Any],
                    stop: threading.Event) -> None:
    interval = float(task.get("heartbeat_seconds", 1.0))
    beat = {
        "type": "heartbeat",
        "key": list(task["key"]),
        "attempt": task["attempt"],
    }
    while not stop.wait(interval):
        try:
            conn.send(beat)
        except OSError:
            return


def lease_worker_main(conn, task: Dict[str, Any]) -> None:
    """Entry point of a lease worker process.

    *task* carries the cell ``key``/``spec``/``attempt`` (supervisor task
    shape) plus ``heartbeat_seconds`` and the optional chaos switches.
    """
    _reset_inherited_signals()
    _init_worker()
    stop = threading.Event()
    if not task.get("stall_heartbeats"):
        thread = threading.Thread(
            target=_heartbeat_loop, args=(conn, task, stop), daemon=True
        )
        thread.start()
    payload = _run_cell_guarded(task)
    stop.set()
    try:
        conn.send({"type": "result", **payload})
    except OSError:
        pass  # Scheduler revoked the lease and closed its end; nothing to do.
    conn.close()
