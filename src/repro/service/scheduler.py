"""The fault-tolerant campaign scheduler: leases, heartbeats, recovery.

This is the load-bearing half of the campaign service (`repro serve`).
Jobs (grid specs) are decomposed into cells; cells are dispatched to a
pool of lease-worker processes under a robustness-first state machine:

* **Leases** — every dispatch is a time-bounded *lease* (``lease_seconds``
  wall clock).  A lease that expires is revoked: the worker is terminated
  and the cell goes back to the queue.  Because cells are deterministic
  (the seed lives in the spec), a re-run after revocation is byte-identical
  to an uninterrupted run — revocation can cost time, never correctness.
* **Heartbeats** — lease workers report a heartbeat every
  ``heartbeat_seconds``; ``heartbeat_misses`` consecutive silent intervals
  revoke the lease early.  This separates "slow but alive" (lease keeps
  running to its deadline) from "dead or wedged" (detected in a few
  heartbeats, not a full lease).
* **Deterministic retries** — a revoked or failed cell requeues with the
  *same* seed and exponential backoff (``retry_backoff * 2**(n-1)``), and
  is quarantined after ``cell_retries`` failed attempts — the PR 5
  supervisor semantics, lifted to the service tier.
* **Admission control** — ``capacity`` bounds outstanding (pending +
  leased) cells; a submission that would exceed it raises
  :class:`Backpressure` (HTTP 429 + ``Retry-After`` at the API layer).
* **Graceful drain** — :meth:`drain` stops granting leases; in-flight
  cells finish (or time out against their lease), checkpoints are flushed,
  and the run loop exits cleanly — SIGTERM/SIGINT land here.
* **Crash-consistent journal** — every transition (submit, lease,
  heartbeat, revoke, fail, retry, complete, quarantine, job completion,
  drain) is appended to the JSONL journal, and the journal is ``fsync``'d
  at cell-completion and job boundaries.  A scheduler killed with
  ``kill -9`` mid-grid restarts by **replaying the journal**
  (:func:`replay_service_journal`): completed cells are never re-run,
  interrupted leases simply requeue, and the finished grid is
  byte-identical to an uninterrupted single-process run.

The scheduler core is synchronous (:meth:`tick`) so it can be driven
deterministically from tests; :meth:`run_async` is the thin asyncio pump
the HTTP server rides on.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.runtime.events import EventLog
from repro.runtime.supervisor import (
    DEFAULT_RETRY_BACKOFF,
    ChaosConfig,
    mp_context,
)
from repro.service.spec import JobSpec
from repro.service.worker import lease_worker_main

__all__ = [
    "Backpressure",
    "CampaignScheduler",
    "ServiceDraining",
    "replay_service_journal",
]

CellKey = Tuple[str, str, int]

#: Journal event kinds introduced by the service tier (all tolerated —
#: and simply carried — by every pre-existing event-stream consumer).
SERVICE_EVENT_KINDS = (
    "service_start", "job_submitted", "lease", "heartbeat",
    "lease_revoked", "job_complete", "job_cancelled", "service_drain",
    "service_stop",
)


class Backpressure(RuntimeError):
    """Admission refused: outstanding cells would exceed capacity."""

    def __init__(self, outstanding: int, capacity: int, retry_after: int):
        super().__init__(
            f"service at capacity: {outstanding} outstanding cell(s) "
            f"of {capacity}; retry in {retry_after}s"
        )
        self.outstanding = outstanding
        self.capacity = capacity
        self.retry_after = retry_after


class ServiceDraining(RuntimeError):
    """Admission refused: the service is draining for shutdown."""


@dataclass
class _Cell:
    """One cell of one job, as the scheduler tracks it."""

    job: str
    key: CellKey
    spec: Dict[str, Any]  # primitives-only worker spec
    status: str = "pending"  # pending|leased|done|quarantined|cancelled
    failures: int = 0  # consumed failed attempts (leases that died)
    attempts: int = 0  # attempts recorded at completion/quarantine
    queries: int = 0  # summary of the completed campaign
    not_before: float = 0.0  # monotonic backoff gate


@dataclass
class _Lease:
    cell: _Cell
    proc: Any
    conn: Any
    attempt: int
    expires: float  # monotonic hard deadline (granted + lease_seconds)
    beat_deadline: float  # revoke early when no heartbeat by this time


@dataclass
class _Job:
    id: str
    spec: JobSpec
    cells: List[_Cell] = field(default_factory=list)
    status: str = "running"  # running|complete|cancelled


# ---------------------------------------------------------------------------
# Journal replay (crash recovery)
# ---------------------------------------------------------------------------


def replay_service_journal(
    events: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Reconstruct scheduler state from a service journal.

    Pure fold over the event stream — no wall clock, no I/O — so recovery
    is exactly as deterministic as the journal itself:

    * ``job_submitted`` re-derives the job's cells from its spec (same
      decomposition path, same SHA-256 seeds);
    * ``cell_complete`` marks a cell done (last occurrence wins, matching
      :func:`repro.core.reporting.completed_cells_from_events`);
    * ``cell_quarantined`` marks a quarantine hole;
    * ``cell_failed`` / ``lease_revoked`` count consumed attempts, so a
      restarted service continues the retry/backoff budget instead of
      resetting it;
    * ``job_cancelled`` drops the job's unfinished cells.

    Leases open at crash time appear as ``lease`` events with no matching
    completion or revocation — their workers died with the scheduler, so
    their cells simply stay pending (the interrupted attempt consumed no
    retry budget: it never *failed*, it was abandoned).
    """
    jobs: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for event in events:
        kind = event.get("event")
        job_id = event.get("job")
        if kind == "job_submitted":
            jobs[job_id] = {
                "spec": event["spec"],
                "cancelled": False,
                "done": {},
                "quarantined": {},
                "failures": {},
            }
            if job_id in order:
                order.remove(job_id)
            order.append(job_id)
            continue
        record = jobs.get(job_id)
        if record is None:
            continue
        key = (event.get("tester"), event.get("engine"), event.get("seed"))
        if kind == "cell_complete":
            record["done"][key] = {
                "attempts": event.get("attempts", 1),
                "queries": (event.get("campaign") or {}).get(
                    "queries_run", 0
                ),
            }
            record["quarantined"].pop(key, None)
        elif kind == "cell_quarantined":
            record["quarantined"][key] = event.get("attempts", 0)
        elif kind in ("cell_failed", "lease_revoked"):
            if event.get("reason") != "cancelled":
                record["failures"][key] = (
                    record["failures"].get(key, 0) + 1
                )
        elif kind == "job_cancelled":
            record["cancelled"] = True
    return {"order": order, "jobs": jobs}


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


class CampaignScheduler:
    """Lease-based campaign scheduler over a crash-consistent journal."""

    def __init__(
        self,
        journal: Union[str, Any],
        *,
        jobs: int = 2,
        capacity: int = 256,
        lease_seconds: float = 120.0,
        heartbeat_seconds: float = 1.0,
        heartbeat_misses: int = 3,
        cell_retries: int = 2,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        chaos: Optional[Union[ChaosConfig, str]] = None,
        poll_interval: float = 0.05,
    ):
        from pathlib import Path

        self.journal_path = Path(journal)
        self.jobs_limit = max(1, int(jobs))
        self.capacity = max(1, int(capacity))
        self.lease_seconds = float(lease_seconds)
        self.heartbeat_seconds = max(0.01, float(heartbeat_seconds))
        self.heartbeat_misses = max(1, int(heartbeat_misses))
        self.cell_retries = max(0, int(cell_retries))
        self.retry_backoff = max(0.0, float(retry_backoff))
        if chaos is not None and not isinstance(chaos, ChaosConfig):
            chaos = ChaosConfig.parse(chaos)
        self.chaos = chaos
        self.poll_interval = max(0.005, float(poll_interval))
        self.draining = False
        self.drain_reason: Optional[str] = None
        self._stopped = False
        self._context = mp_context()
        self._jobs: Dict[str, _Job] = {}
        self._order: List[str] = []
        self._pending: List[_Cell] = []
        self._leases: List[_Lease] = []
        self._serial = 1

        recovered = self._recover()
        self._log = EventLog(self.journal_path, record_queries=True,
                             record_spans=True)
        self._log.emit(
            "service_start",
            jobs=self.jobs_limit,
            capacity=self.capacity,
            lease_seconds=self.lease_seconds,
            heartbeat_seconds=self.heartbeat_seconds,
            heartbeat_misses=self.heartbeat_misses,
            cell_retries=self.cell_retries,
            recovered_jobs=recovered["jobs"],
            resumed_cells=recovered["resumed"],
            pending_cells=len(self._pending),
        )
        self._log.sync()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> Dict[str, int]:
        """Rebuild jobs/cells from an existing journal (crash restart)."""
        if not self.journal_path.exists():
            return {"jobs": 0, "resumed": 0}
        from repro.core.reporting import load_event_stream

        state = replay_service_journal(load_event_stream(self.journal_path))
        resumed = 0
        for job_id in state["order"]:
            record = state["jobs"][job_id]
            try:
                spec = JobSpec.from_dict(record["spec"])
                cells = spec.cells()
            except ValueError:
                continue  # Journal from a newer/older spec dialect.
            job = _Job(id=job_id, spec=spec)
            for cell_obj in cells:
                cell = _Cell(job=job_id, key=cell_obj.key,
                             spec=spec.worker_spec(cell_obj))
                done = record["done"].get(cell.key)
                if done is not None:
                    cell.status = "done"
                    cell.attempts = done["attempts"]
                    cell.queries = done["queries"]
                    resumed += 1
                elif record["cancelled"]:
                    cell.status = "cancelled"
                elif cell.key in record["quarantined"]:
                    cell.status = "quarantined"
                    cell.attempts = record["quarantined"][cell.key]
                else:
                    cell.failures = record["failures"].get(cell.key, 0)
                    self._pending.append(cell)
                job.cells.append(cell)
            if record["cancelled"]:
                job.status = "cancelled"
            elif all(c.status in ("done", "quarantined")
                     for c in job.cells):
                job.status = "complete"
            self._jobs[job_id] = job
            self._order.append(job_id)
            serial_part = job_id.rsplit("-", 1)[-1]
            if serial_part.isdigit():
                self._serial = max(self._serial, int(serial_part) + 1)
        return {"jobs": len(self._order), "resumed": resumed}

    # -- admission --------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Cells admitted but not yet terminal (pending + leased)."""
        return len(self._pending) + len(self._leases)

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Admit one job; returns its record.  Raises on refusal.

        :class:`ValueError` — malformed spec (HTTP 400);
        :class:`ServiceDraining` — shutting down (HTTP 503);
        :class:`Backpressure` — over capacity (HTTP 429 + Retry-After).
        The job is acknowledged only after its ``job_submitted`` journal
        line is fsync'd, so an accepted job survives any later crash.
        """
        if self.draining:
            raise ServiceDraining("service is draining; not accepting jobs")
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        cells = spec.cells()
        outstanding = self.outstanding
        if outstanding + len(cells) > self.capacity:
            raise Backpressure(
                outstanding, self.capacity, self._retry_after(len(cells))
            )
        job_id = f"job-{self._serial:04d}"
        self._serial += 1
        job = _Job(id=job_id, spec=spec)
        for cell_obj in cells:
            cell = _Cell(job=job_id, key=cell_obj.key,
                         spec=spec.worker_spec(cell_obj))
            job.cells.append(cell)
            self._pending.append(cell)
        self._jobs[job_id] = job
        self._order.append(job_id)
        self._log.emit(
            "job_submitted",
            job=job_id,
            spec=spec.to_dict(),
            cells=[list(cell.key) for cell in job.cells],
        )
        self._log.sync()
        return self.job_record(job_id)

    def _retry_after(self, requested: int) -> int:
        """A deterministic Retry-After hint, scaled to the backlog.

        Rough model: the backlog drains one lease per worker slot per
        lease period in the worst case; clamp to something a polite client
        can actually sleep.
        """
        backlog = self.outstanding + requested - self.capacity
        period = max(1.0, min(self.lease_seconds, 30.0))
        return max(1, min(120, math.ceil(
            backlog * period / self.jobs_limit
        )))

    # -- introspection ----------------------------------------------------

    def job_record(self, job_id: str) -> Optional[Dict[str, Any]]:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        counts = {"pending": 0, "leased": 0, "done": 0,
                  "quarantined": 0, "cancelled": 0}
        cells = []
        for cell in job.cells:
            counts[cell.status] += 1
            tester, engine, seed = cell.key
            cells.append({
                "tester": tester, "engine": engine, "seed": seed,
                "status": cell.status,
                "attempts": cell.attempts or cell.failures,
                "queries": cell.queries,
            })
        return {
            "job": job.id,
            "status": job.status,
            "cells": cells,
            "counts": counts,
        }

    def jobs_overview(self) -> List[Dict[str, Any]]:
        overview = []
        for job_id in self._order:
            record = self.job_record(job_id)
            record.pop("cells")
            overview.append(record)
        return overview

    def stats(self) -> Dict[str, Any]:
        return {
            "jobs": len(self._jobs),
            "pending": len(self._pending),
            "leased": len(self._leases),
            "outstanding": self.outstanding,
            "capacity": self.capacity,
            "workers": self.jobs_limit,
            "draining": self.draining,
        }

    @property
    def idle(self) -> bool:
        """No admitted work left to do (drained or simply caught up)."""
        return not self._pending and not self._leases

    @property
    def finished(self) -> bool:
        """Draining and every in-flight lease has landed — time to exit."""
        return self.draining and not self._leases

    # -- cancellation and drain -------------------------------------------

    def cancel(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Cancel a job: drop its queue, revoke its leases, keep results."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        if job.status == "running":
            dropped = revoked = 0
            for cell in job.cells:
                if cell.status == "pending":
                    cell.status = "cancelled"
                    dropped += 1
            self._pending = [c for c in self._pending if c.job != job_id]
            for lease in list(self._leases):
                if lease.cell.job != job_id:
                    continue
                self._terminate(lease)
                self._leases.remove(lease)
                lease.cell.status = "cancelled"
                revoked += 1
                self._emit_cell(
                    "lease_revoked", lease.cell,
                    attempt=lease.attempt, reason="cancelled",
                    will_retry=False, backoff=0.0,
                )
            job.status = "cancelled"
            self._log.emit("job_cancelled", job=job_id,
                           dropped=dropped, revoked=revoked)
            self._log.sync()
        return self.job_record(job_id)

    def drain(self, reason: str = "drain") -> None:
        """Stop leasing; let in-flight cells finish or time out, then stop."""
        if self.draining:
            return
        self.draining = True
        self.drain_reason = reason
        self._log.emit("service_drain", reason=reason,
                       pending=len(self._pending),
                       leased=len(self._leases))
        self._log.sync()

    # -- the tick ---------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """One scheduling round: reap messages, enforce deadlines, lease."""
        if self._stopped:
            return
        if now is None:
            now = time.monotonic()
        self._reap(now)
        if not self.draining:
            self._grant(now)
        self._complete_jobs()
        if self.finished:
            self._stop()

    def _reap(self, now: float) -> None:
        survivors: List[_Lease] = []
        for lease in self._leases:
            settled = self._drain_messages(lease, now)
            if settled:
                continue
            if not lease.proc.is_alive():
                # The process exited; drain any result racing the exit
                # before declaring the worker dead (same race guard as
                # supervisor slot mode).
                if self._drain_messages(lease, now, grace=0.05):
                    continue
                self._revoke(lease, "worker_exit", now)
            elif now >= lease.expires:
                if self._drain_messages(lease, now, grace=0.05):
                    continue  # Result beat the deadline: the lease wins.
                self._revoke(lease, "lease_expired", now)
            elif now >= lease.beat_deadline:
                if self._drain_messages(lease, now, grace=0.05):
                    continue
                self._revoke(lease, "missed_heartbeat", now)
            else:
                survivors.append(lease)
        self._leases = survivors
        # _revoke/_settle removed nothing from self._leases themselves;
        # rebuild keeps only live leases.

    def _drain_messages(self, lease: _Lease, now: float,
                        grace: float = 0.0) -> bool:
        """Pump one lease's pipe; True when the lease settled (result)."""
        while True:
            try:
                if not lease.conn.poll(grace):
                    return False
                message = lease.conn.recv()
            except (EOFError, OSError):
                return False
            grace = 0.0
            if message.get("type") == "heartbeat":
                lease.beat_deadline = now + (
                    self.heartbeat_seconds * self.heartbeat_misses
                )
                self._emit_cell("heartbeat", lease.cell,
                                attempt=lease.attempt)
                continue
            if message.get("type") == "result":
                self._settle(lease, message, now)
                return True

    def _revoke(self, lease: _Lease, reason: str, now: float) -> None:
        """A dead/silent/overdue lease: revoke, then retry or quarantine."""
        self._terminate(lease)
        cell = lease.cell
        cell.failures += 1
        attempt = cell.failures
        will_retry = attempt <= self.cell_retries
        backoff = (self.retry_backoff * 2 ** (attempt - 1)
                   if will_retry else 0.0)
        self._emit_cell(
            "lease_revoked", cell, attempt=attempt, reason=reason,
            will_retry=will_retry, backoff=backoff,
        )
        self._after_failure(cell, attempt, will_retry, backoff, now)

    def _settle(self, lease: _Lease, payload: Dict[str, Any],
                now: float) -> None:
        """A worker reported a result (success or sandboxed failure)."""
        self._terminate(lease, join_only=True)
        cell = lease.cell
        if cell.status != "leased":
            return  # Late duplicate after cancel/revoke: drop it.
        if payload.get("status") == "ok":
            cell.status = "done"
            cell.attempts = lease.attempt
            campaign = payload["campaign"]
            cell.queries = campaign.get("queries_run", 0)
            self._log.extend(payload.get("events") or [])
            self._emit_cell(
                "cell_complete", cell, attempts=lease.attempt,
                campaign=campaign,
            )
            # Durability boundary: a completed cell survives kill -9.
            self._log.sync()
            if self.chaos is not None and self.chaos.truncates(cell.key):
                self._truncate_tail()
            return
        cell.failures += 1
        attempt = cell.failures
        will_retry = attempt <= self.cell_retries
        backoff = (self.retry_backoff * 2 ** (attempt - 1)
                   if will_retry else 0.0)
        self._emit_cell(
            "cell_failed", cell, attempt=attempt, kind="exception",
            error=payload.get("error", "?"),
            traceback_tail=payload.get("traceback_tail", ""),
            will_retry=will_retry,
        )
        self._after_failure(cell, attempt, will_retry, backoff, now)

    def _after_failure(self, cell: _Cell, attempt: int, will_retry: bool,
                       backoff: float, now: float) -> None:
        if will_retry:
            cell.status = "pending"
            cell.not_before = now + backoff
            self._pending.append(cell)
            self._emit_cell("cell_retry", cell, next_attempt=attempt + 1,
                            backoff=backoff)
        else:
            cell.status = "quarantined"
            cell.attempts = attempt
            self._emit_cell("cell_quarantined", cell, attempts=attempt)
            self._log.sync()

    def _grant(self, now: float) -> None:
        if not self._pending or len(self._leases) >= self.jobs_limit:
            return
        ready = [c for c in self._pending if c.not_before <= now]
        for cell in ready:
            if len(self._leases) >= self.jobs_limit:
                break
            self._pending.remove(cell)
            self._leases.append(self._lease(cell, now))

    def _lease(self, cell: _Cell, now: float) -> _Lease:
        attempt = cell.failures + 1
        task: Dict[str, Any] = {
            "key": list(cell.key),
            "spec": cell.spec,
            "attempt": attempt,
            "heartbeat_seconds": self.heartbeat_seconds,
        }
        if self.chaos is not None:
            directive = self.chaos.directive(cell.key, attempt)
            if directive is not None:
                task["chaos"] = directive
                task["hang_seconds"] = self.chaos.hang_seconds
            if self.chaos.heartbeat_stall(cell.key, attempt):
                task["stall_heartbeats"] = True
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        proc = self._context.Process(
            target=lease_worker_main, args=(child_conn, task), daemon=True
        )
        proc.start()
        child_conn.close()
        cell.status = "leased"
        self._emit_cell(
            "lease", cell, attempt=attempt, pid=proc.pid,
            lease_seconds=self.lease_seconds,
        )
        grace = self.heartbeat_seconds * self.heartbeat_misses
        return _Lease(
            cell=cell, proc=proc, conn=parent_conn, attempt=attempt,
            expires=now + self.lease_seconds,
            # First-beat grace includes process start-up.
            beat_deadline=now + grace + self.heartbeat_seconds,
        )

    def _complete_jobs(self) -> None:
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.status != "running":
                continue
            if all(c.status in ("done", "quarantined")
                   for c in job.cells):
                job.status = "complete"
                self._log.emit(
                    "job_complete",
                    job=job_id,
                    completed=sum(1 for c in job.cells
                                  if c.status == "done"),
                    quarantined=sum(1 for c in job.cells
                                    if c.status == "quarantined"),
                )
                self._log.sync()

    # -- lifecycle --------------------------------------------------------

    def _terminate(self, lease: _Lease, join_only: bool = False) -> None:
        if not join_only and lease.proc.is_alive():
            lease.proc.terminate()
            lease.proc.join(1.0)
            if lease.proc.is_alive():
                lease.proc.kill()
        lease.proc.join(5.0)
        try:
            lease.conn.close()
        except OSError:
            pass

    def _truncate_tail(self, nbytes: int = 32) -> None:
        """Chaos: tear the checkpoint line just written (torn-write sim)."""
        import os

        path = self.journal_path
        size = path.stat().st_size
        if size <= nbytes:
            return
        with open(path, "r+b") as handle:
            handle.truncate(size - nbytes)
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n")
        self._log.emit("chaos", action="truncate_tail")

    def _stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._log.emit("service_stop", pending=len(self._pending),
                       reason=self.drain_reason or "drain")
        self._log.sync()
        self._log.close()

    def close(self) -> None:
        """Release every resource without journaling a clean stop.

        Used by tests to simulate an abrupt scheduler death (`kill -9`
        never runs this either — but leaked worker processes would outlive
        the test, so the simulation reaps them explicitly).
        """
        for lease in self._leases:
            self._terminate(lease)
        self._leases = []
        self._log.close()

    def _emit_cell(self, kind: str, cell: _Cell, /, **payload: Any) -> None:
        tester, engine, seed = cell.key
        self._log.emit(kind, job=cell.job, tester=tester, engine=engine,
                       seed=seed, **payload)

    # -- pumps ------------------------------------------------------------

    def run_until(self, predicate=None, timeout: float = 60.0) -> None:
        """Drive ticks until *predicate* (default: idle) or timeout."""
        if predicate is None:
            predicate = lambda: self.idle  # noqa: E731
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.tick()
            if predicate():
                return
            time.sleep(self.poll_interval)
        raise TimeoutError("scheduler did not reach the requested state")

    async def run_async(self) -> None:
        """The asyncio pump: tick until drained, then stop cleanly."""
        import asyncio

        try:
            while not self._stopped:
                self.tick()
                if self._stopped:
                    break
                await asyncio.sleep(self.poll_interval)
        finally:
            if not self._stopped:
                self.close()
