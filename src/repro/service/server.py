"""The campaign service HTTP face: a stdlib-only asyncio JSON API.

``repro serve`` binds a localhost HTTP/1.1 endpoint in front of a
:class:`repro.service.scheduler.CampaignScheduler`.  The protocol layer is
deliberately tiny — ``asyncio.start_server`` plus a hand-rolled request
parser — because the repo's no-new-dependencies rule rules out aiohttp and
friends, and the API surface is six routes of line-oriented JSON:

========  ======================  ===========================================
method    path                    semantics
========  ======================  ===========================================
GET       /health                 liveness + drain state (always 200)
GET       /stats                  scheduler counters
GET       /jobs                   all jobs, summary form
POST      /jobs                   submit a job spec (202, 400, 429, 503)
GET       /jobs/{id}              one job with per-cell status (404 unknown)
POST      /jobs/{id}/cancel       cancel a job (200, 404)
POST      /drain                  begin graceful drain (202)
========  ======================  ===========================================

Failure mapping is the robustness story of the API: a malformed spec is a
``400`` at admission (never a worker crash later), admission past capacity
is ``429`` with a deterministic ``Retry-After`` header, and submissions
during drain get ``503`` so clients fail over instead of queueing behind a
shutdown.

:func:`serve` is the process entry point: it installs SIGTERM/SIGINT
handlers that trigger the scheduler's graceful drain (stop leasing, let
in-flight cells finish or time out, flush the journal) and returns 0 once
the drain completes — the exit code contract the CI smoke test and
``docs/service.md`` document.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from repro.service.scheduler import (
    Backpressure,
    CampaignScheduler,
    ServiceDraining,
)

__all__ = ["ServiceServer", "serve"]

_MAX_BODY = 1 << 20  # 1 MiB is plenty for a grid spec; refuse the rest.


class ServiceServer:
    """One scheduler behind one asyncio TCP listener."""

    def __init__(self, scheduler: CampaignScheduler,
                 host: str = "127.0.0.1", port: int = 0):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- protocol ---------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                status, headers, body = 400, {}, {"error": "bad request"}
            else:
                method, path, payload = request
                status, headers, body = self._route(method, path, payload)
        except Exception as exc:  # Defensive: a handler bug must not wedge
            status, headers, body = 500, {}, {"error": str(exc)}
        try:
            writer.write(self._response(status, headers, body))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
        except asyncio.TimeoutError:
            return None
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY:
            return None
        payload: Any = None
        if length:
            body = await reader.readexactly(length)
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return None
        return method, path, payload

    def _response(self, status: int, headers: Dict[str, str],
                  body: Any) -> bytes:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   429: "Too Many Requests", 500: "Internal Server Error",
                   503: "Service Unavailable"}
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload

    # -- routing ----------------------------------------------------------

    def _route(self, method: str, path: str,
               payload: Any) -> Tuple[int, Dict[str, str], Any]:
        scheduler = self.scheduler
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/health":
            if method != "GET":
                return 405, {}, {"error": "GET only"}
            return 200, {}, {
                "status": "draining" if scheduler.draining else "ok",
                **scheduler.stats(),
            }
        if path == "/stats":
            if method != "GET":
                return 405, {}, {"error": "GET only"}
            return 200, {}, scheduler.stats()
        if path == "/drain":
            if method != "POST":
                return 405, {}, {"error": "POST only"}
            scheduler.drain(reason="api")
            return 202, {}, {"draining": True, **scheduler.stats()}
        if path == "/jobs":
            if method == "GET":
                return 200, {}, {"jobs": scheduler.jobs_overview()}
            if method != "POST":
                return 405, {}, {"error": "GET or POST"}
            try:
                record = scheduler.submit(payload)
            except Backpressure as exc:
                return 429, {"Retry-After": str(exc.retry_after)}, {
                    "error": str(exc),
                    "retry_after": exc.retry_after,
                    "outstanding": exc.outstanding,
                    "capacity": exc.capacity,
                }
            except ServiceDraining as exc:
                return 503, {}, {"error": str(exc)}
            except ValueError as exc:
                return 400, {}, {"error": str(exc)}
            return 202, {}, record
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/cancel"):
                job_id = rest[: -len("/cancel")]
                if method != "POST":
                    return 405, {}, {"error": "POST only"}
                record = scheduler.cancel(job_id)
            else:
                job_id = rest
                if method != "GET":
                    return 405, {}, {"error": "GET only"}
                record = scheduler.job_record(job_id)
            if record is None:
                return 404, {}, {"error": f"no such job {job_id!r}"}
            return 200, {}, record
        return 404, {}, {"error": f"no such route {path!r}"}


async def _serve_async(scheduler: CampaignScheduler, host: str,
                       port: int) -> int:
    server = ServiceServer(scheduler, host, port)
    bound_host, bound_port = await server.start()
    # Announce the bound endpoint on stdout (flushed) so wrappers and
    # tests binding port 0 can discover the ephemeral port.
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, scheduler.drain, signal.Signals(signum).name
            )
        except (NotImplementedError, RuntimeError):
            pass  # Platforms without signal support still serve.
    try:
        await scheduler.run_async()
    finally:
        await server.stop()
    return 0


def serve(
    journal: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 2,
    capacity: int = 256,
    lease_seconds: float = 120.0,
    heartbeat_seconds: float = 1.0,
    heartbeat_misses: int = 3,
    cell_retries: int = 2,
    retry_backoff: Optional[float] = None,
    chaos: Optional[str] = None,
) -> int:
    """Run the campaign service until drained; returns the exit code."""
    from repro.runtime.supervisor import DEFAULT_RETRY_BACKOFF

    scheduler = CampaignScheduler(
        journal,
        jobs=jobs,
        capacity=capacity,
        lease_seconds=lease_seconds,
        heartbeat_seconds=heartbeat_seconds,
        heartbeat_misses=heartbeat_misses,
        cell_retries=cell_retries,
        retry_backoff=(DEFAULT_RETRY_BACKOFF if retry_backoff is None
                       else retry_backoff),
        chaos=chaos,
    )
    return asyncio.run(_serve_async(scheduler, host, port))
