"""The fault-tolerant campaign service.

A long-running localhost service that accepts campaign grid jobs over a
stdlib HTTP JSON API and runs them under a robustness-first scheduler:
time-bounded cell leases, worker heartbeats, missed-heartbeat revocation,
deterministic same-seed retries with quarantine, bounded-queue admission
control with backpressure, graceful SIGTERM/SIGINT drain, and a
crash-consistent JSONL journal that makes ``kill -9`` + restart
byte-identical to an uninterrupted run.

Layers (each importable on its own):

* :mod:`repro.service.spec` — job specs, validation, grid decomposition;
* :mod:`repro.service.worker` — the per-lease worker process entry point;
* :mod:`repro.service.scheduler` — leases, heartbeats, retries, recovery;
* :mod:`repro.service.server` — the asyncio HTTP face (``repro serve``);
* :mod:`repro.service.client` — the urllib client (``repro submit`` …).

See ``docs/service.md`` for the API reference, the lease/heartbeat state
machine, the failure-handling matrix, and the recovery guarantees.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import (
    Backpressure,
    CampaignScheduler,
    ServiceDraining,
    replay_service_journal,
)
from repro.service.server import ServiceServer, serve
from repro.service.spec import JobSpec
from repro.service.worker import lease_worker_main

__all__ = [
    "Backpressure",
    "CampaignScheduler",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceDraining",
    "ServiceServer",
    "lease_worker_main",
    "replay_service_journal",
    "serve",
]
