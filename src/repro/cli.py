"""Command-line interface for the GQS reproduction.

Usage (also available as ``python -m repro``):

    repro campaign --engine falkordb --minutes 5 [--tester GQS] [--out r.json]
                   [--seeds K --jobs N] [--events LOG] [--resume LOG]
                   [--metrics] [--coverage] [--triage] [--bundles DIR]
                   [--reduce] [--cell-timeout S] [--cell-retries N]
                   [--chaos P,SEED] [--step-budget S]
                   [--engine-mode interpreted|compiled|dual]
    repro compare  --engine falkordb --minutes 2 [--jobs N] [--resume LOG]
                   [--metrics] [--coverage] [--triage] [--bundles DIR]
                   [--reduce] [--cell-timeout S] [--cell-retries N]
                   [--chaos P,SEED] [--step-budget S]
                   [--engine-mode interpreted|compiled|dual]
    repro stats    events.jsonl [--format text|json]
    repro trace    events.jsonl [--export chrome [--out trace.json]]
    repro watch    events.jsonl [--once] [--interval S]
    repro report   events.jsonl [--out report.html] [--title T]
    repro coverage events.jsonl
    repro bugs     events.jsonl [--format text|json]
    repro replay   bundle.json [bundle2.json ...]
    repro reduce   bundle.json|DIR [...] [--jobs N] [--replay-budget R]
                   [--step-budget S]
    repro table    2|3|4|5|6
    repro figure   10|11|12|13|14|15|18
    repro synthesize --seed 7 [--engine neo4j]
    repro calibrate [--n 200]

``repro run`` is an alias for ``repro campaign`` (mirroring common driver
CLIs).  Campaign grids fan out over a process pool (``--jobs``) and
checkpoint every completed (tester, engine, seed) cell to a JSONL event log,
so an interrupted run restarts from where it left off (``--resume``).

With ``--metrics`` the observability layer (:mod:`repro.obs`) is switched on
for the run: counters, histograms, and spans are collected and written into
the event stream as ``metrics`` / ``span`` events, which ``repro stats`` and
``repro trace`` render afterwards.  ``repro watch`` follows a *live* log
(torn-line-tolerant incremental tailing, refresh-in-place view); ``repro
report`` writes a self-contained static HTML report; ``--format json`` and
``--export chrome`` produce machine-readable exports
(:mod:`repro.obs.export`).  ``--coverage`` and ``--triage`` switch
on the second tier — query-feature coverage and bug-signature triage
snapshots (``coverage`` / ``triage`` events, rendered by ``repro coverage``
/ ``repro bugs``) — and ``--bundles DIR`` makes the flight recorder write
one replayable repro bundle per new bug signature (``repro replay``).  With
``--reduce`` every recorded bundle is additionally minimized in place
through the delta-debugging subsystem (``*.min.json``, :mod:`repro.reduce`)
— ``repro reduce`` runs the same minimization after the fact over existing
bundles or whole bundle directories.  None of these perturb the RNG streams
— results are byte-identical with or without the flags.

Grid robustness (:mod:`repro.runtime.supervisor`): ``--cell-timeout``
watchdogs each cell, ``--cell-retries`` retries failed cells with
deterministic backoff before quarantining them (the grid completes with
explicit holes), ``--step-budget`` caps evaluation steps per judgement
(a blown budget is a ``harness_error`` event, never a false bug), and
``--chaos P[,SEED]`` deterministically injects worker crashes/hangs/errors
and event-log tail truncation to exercise the supervisor itself.  See
``docs/robustness.md``.

``--engine-mode`` selects the target engines' execution core
(:mod:`repro.engine.plan`): ``interpreted`` (the reference evaluator,
default), ``compiled`` (operator pipelines with indexes and a plan cache),
or ``dual`` (run both and raise on any divergence — the differential
self-check).  Campaign results are identical across modes; see
``docs/execution.md``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_engine_mode_argument(parser: argparse.ArgumentParser) -> None:
    """``--engine-mode`` flag shared by campaign and compare."""
    parser.add_argument(
        "--engine-mode", default="interpreted",
        choices=["interpreted", "compiled", "dual"],
        help="execution core for the target engines: the reference "
             "interpreter, compiled operator pipelines, or dual "
             "(both, raising on any divergence)",
    )


def _add_adaptive_argument(parser: argparse.ArgumentParser) -> None:
    """``--adaptive[=STRATEGY]`` flag shared by campaign and compare."""
    parser.add_argument(
        "--adaptive", nargs="?", const="epsilon", default=None,
        choices=["epsilon", "ucb"], metavar="STRATEGY",
        help="coverage-guided adaptive synthesis: feed feature-tag and "
             "signature-novelty feedback into the synthesizer via an "
             "explore/exploit schedule (epsilon-decay greedy by default, "
             "or UCB1); deterministic given the cell seed",
    )


def _add_stateful_argument(parser: argparse.ArgumentParser) -> None:
    """``--stateful[=RATIO]`` flag shared by campaign and compare."""
    parser.add_argument(
        "--stateful", nargs="?", const=0.5, default=None, type=float,
        metavar="RATIO",
        help="state-aware write-workload synthesis (GQS only): interleave "
             "write statements (CREATE/MERGE/SET/DELETE/REMOVE) with reads "
             "at the given write ratio (default 0.5) and check post-write "
             "state against a lockstep shadow graph",
    )


def _add_supervisor_arguments(parser: argparse.ArgumentParser) -> None:
    """Cell-supervisor robustness flags shared by campaign and compare."""
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock watchdog per grid cell; a hung cell is "
             "terminated and counted as a failed attempt",
    )
    parser.add_argument(
        "--cell-retries", type=int, default=0, metavar="N",
        help="retry a failed cell up to N times (same seed, exponential "
             "backoff) before quarantining it",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="P[,SEED]",
        help="deterministically inject worker crashes/hangs/errors and "
             "event-log tail truncation with probability P (supervisor "
             "self-test; campaign results are unaffected)",
    )
    parser.add_argument(
        "--step-budget", type=int, default=None, metavar="S",
        help="evaluation step budget per judgement; a blown budget is "
             "recorded as a harness_error, never a bug",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GQS: testing graph databases with synthesized queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign", aliases=["run"],
        help="run one tester against one engine",
    )
    campaign.add_argument("--engine", default="falkordb",
                          choices=["neo4j", "memgraph", "kuzu", "falkordb"])
    campaign.add_argument("--tester", default="GQS",
                          choices=["GQS", "GDsmith", "GDBMeter", "Gamera",
                                   "GQT", "GRev"])
    campaign.add_argument("--minutes", type=float, default=5.0,
                          help="simulated minutes of testing")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--gate-scale", type=float, default=1.0,
                          help="<1 compresses fault latency")
    campaign.add_argument("--out", default=None,
                          help="write the campaign result as JSON")
    campaign.add_argument("--seeds", type=int, default=1,
                          help="replicate the campaign over K derived seeds")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the seed replicates")
    campaign.add_argument("--events", default=None,
                          help="append the JSONL event stream to this path")
    campaign.add_argument("--resume", default=None,
                          help="resume completed cells from this event log")
    campaign.add_argument("--metrics", action="store_true",
                          help="collect metrics and spans into the event log")
    campaign.add_argument("--coverage", action="store_true",
                          help="collect query-feature coverage events")
    campaign.add_argument("--triage", action="store_true",
                          help="collect bug-signature triage events")
    campaign.add_argument("--bundles", default=None, metavar="DIR",
                          help="write one repro bundle per new bug signature")
    campaign.add_argument("--reduce", action="store_true",
                          help="minimize each recorded bundle (*.min.json); "
                               "requires --bundles")
    _add_engine_mode_argument(campaign)
    _add_adaptive_argument(campaign)
    _add_stateful_argument(campaign)
    _add_supervisor_arguments(campaign)

    compare = sub.add_parser("compare", help="all six testers, same budget")
    compare.add_argument("--engine", default="falkordb",
                         choices=["neo4j", "memgraph", "kuzu", "falkordb"])
    compare.add_argument("--minutes", type=float, default=2.0)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the tester grid")
    compare.add_argument("--format", default="text",
                         choices=["text", "json"],
                         help="text table (default) or machine-readable "
                              "JSON rows")
    compare.add_argument("--events", default=None,
                         help="append the JSONL event stream to this path")
    compare.add_argument("--resume", default=None,
                         help="resume completed cells from this event log")
    compare.add_argument("--metrics", action="store_true",
                         help="collect metrics and spans into the event log")
    compare.add_argument("--coverage", action="store_true",
                         help="collect query-feature coverage events")
    compare.add_argument("--triage", action="store_true",
                         help="collect bug-signature triage events")
    compare.add_argument("--bundles", default=None, metavar="DIR",
                         help="write one repro bundle per new bug signature")
    compare.add_argument("--reduce", action="store_true",
                         help="minimize each recorded bundle (*.min.json); "
                              "requires --bundles")
    _add_engine_mode_argument(compare)
    _add_adaptive_argument(compare)
    _add_stateful_argument(compare)
    _add_supervisor_arguments(compare)

    stats = sub.add_parser(
        "stats", help="render metrics from a recorded event log"
    )
    stats.add_argument("events", help="JSONL event log written with --metrics")
    stats.add_argument("--format", default="text", choices=["text", "json"],
                       help="text tables (default) or machine-readable JSON")

    trace = sub.add_parser(
        "trace", help="render the span tree from a recorded event log"
    )
    trace.add_argument("events", help="JSONL event log written with --metrics")
    trace.add_argument("--export", default=None, choices=["chrome"],
                       help="emit Chrome trace-event JSON (chrome://tracing) "
                            "instead of the text tree")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the export to PATH instead of stdout")

    watch = sub.add_parser(
        "watch",
        help="follow a (possibly still growing) event log live",
    )
    watch.add_argument("events", help="JSONL event log of a running campaign")
    watch.add_argument("--once", action="store_true",
                       help="render one snapshot and exit (for scripting)")
    watch.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="poll/refresh interval (default: 2s)")
    watch.add_argument("--format", default="text", choices=["text", "json"],
                       help="terminal view (default) or machine-readable "
                            "JSON (stats_json shapes + live watch state); "
                            "without --once, emits one JSON line per poll")

    report = sub.add_parser(
        "report",
        help="write a self-contained static HTML report from an event log",
    )
    report.add_argument("events", help="JSONL event log of a finished run")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: the log path with .html)")
    report.add_argument("--title", default=None,
                        help="report title (default: derived from the log)")

    coverage = sub.add_parser(
        "coverage", help="render query-feature coverage from an event log"
    )
    coverage.add_argument(
        "events", help="JSONL event log written with --coverage"
    )

    bugs = sub.add_parser(
        "bugs", help="render the distinct-bug table from an event log"
    )
    bugs.add_argument("events", help="JSONL event log written with --triage")
    bugs.add_argument("--format", default="text", choices=["text", "json"],
                      help="text table (default) or machine-readable JSON")

    replay = sub.add_parser(
        "replay", help="replay flight-recorder repro bundle(s)"
    )
    replay.add_argument("bundles", nargs="+",
                        help="bundle JSON file(s) written with --bundles")

    reduce = sub.add_parser(
        "reduce",
        help="minimize repro bundle(s) via signature-preserving ddmin",
    )
    reduce.add_argument(
        "sources", nargs="+",
        help="bundle JSON file(s) and/or directories of bundles",
    )
    reduce.add_argument("--jobs", type=int, default=1,
                        help="worker processes (one bundle per task)")
    reduce.add_argument(
        "--replay-budget", type=int, default=None, metavar="R",
        help="cap replica executions per bundle (default: unbounded)",
    )
    reduce.add_argument(
        "--step-budget", type=int, default=None, metavar="S",
        help="evaluation step budget per replay (a blown budget rejects "
             "the candidate instead of hanging the reduction)",
    )

    table = sub.add_parser("table", help="regenerate a table from the paper")
    table.add_argument("id", type=int, choices=[2, 3, 4, 5, 6])
    table.add_argument("--seed", type=int, default=0)
    table.add_argument("--jobs", type=int, default=1,
                       help="worker processes (tables 3, 4 and 6)")

    figure = sub.add_parser("figure", help="regenerate a figure from the paper")
    figure.add_argument("id", type=int, choices=[10, 11, 12, 13, 14, 15, 18])
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the underlying campaigns")

    synthesize = sub.add_parser(
        "synthesize", help="synthesize one query and show its ground truth"
    )
    synthesize.add_argument("--seed", type=int, default=7)
    synthesize.add_argument("--engine", default="neo4j",
                            choices=["neo4j", "memgraph", "kuzu", "falkordb"])
    synthesize.add_argument("--gremlin", action="store_true",
                            help="also translate the query to Gremlin (§7)")

    calibrate = sub.add_parser(
        "calibrate", help="print per-fault trigger rates per generator"
    )
    calibrate.add_argument("--n", type=int, default=200)

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant campaign service (HTTP JSON API)",
    )
    serve.add_argument("journal",
                       help="JSONL journal path; an existing journal is "
                            "replayed so a restarted service resumes "
                            "exactly where the dead one stopped")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port; the "
                            "bound endpoint is printed on startup)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="concurrent lease-worker processes")
    serve.add_argument("--capacity", type=int, default=256,
                       help="max outstanding (pending+leased) cells before "
                            "admission answers 429 + Retry-After")
    serve.add_argument("--lease-seconds", type=float, default=120.0,
                       help="hard wall-clock deadline per cell lease")
    serve.add_argument("--heartbeat-seconds", type=float, default=1.0,
                       help="worker heartbeat interval")
    serve.add_argument("--heartbeat-misses", type=int, default=3,
                       help="consecutive silent intervals before the lease "
                            "is revoked as missed_heartbeat")
    serve.add_argument("--cell-retries", type=int, default=2,
                       help="failed attempts per cell before quarantine "
                            "(same seed, exponential backoff)")
    serve.add_argument("--retry-backoff", type=float, default=None,
                       metavar="SECONDS", help="base retry backoff")
    serve.add_argument("--chaos", default=None, metavar="P[,SEED]",
                       help="deterministically inject worker crashes/hangs/"
                            "errors, heartbeat stalls and journal tail "
                            "truncation (self-test; results unaffected)")

    submit = sub.add_parser(
        "submit", help="submit a campaign grid job to a running service"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service endpoint (see `repro serve`)")
    submit.add_argument("--tester", action="append", dest="testers",
                        choices=["GQS", "GDsmith", "GDBMeter", "Gamera",
                                 "GQT", "GRev"],
                        help="repeatable; default GQS")
    submit.add_argument("--engine", action="append", dest="engines",
                        choices=["neo4j", "memgraph", "kuzu", "falkordb"],
                        help="repeatable; default falkordb")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--seeds", type=int, default=1,
                        help="K seeds starting at --seed")
    submit.add_argument("--minutes", type=float, default=2.0,
                        help="simulated minutes per cell")
    submit.add_argument("--gate-scale", type=float, default=1.0)
    submit.add_argument("--metrics", action="store_true",
                        help="record metrics into the service journal")
    submit.add_argument("--coverage", action="store_true")
    submit.add_argument("--triage", action="store_true")
    submit.add_argument("--spec", default=None, metavar="PATH",
                        help="submit a raw JSON job spec instead of flags")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes; exits 3 when "
                             "any cell was quarantined")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds")
    _add_engine_mode_argument(submit)
    _add_adaptive_argument(submit)
    _add_stateful_argument(submit)

    jobs = sub.add_parser("jobs", help="list jobs on a running service")
    jobs.add_argument("--url", default="http://127.0.0.1:8765")
    jobs.add_argument("--job", default=None, metavar="ID",
                      help="show one job with per-cell detail")
    jobs.add_argument("--format", default="text", choices=["text", "json"])

    cancel = sub.add_parser(
        "cancel", help="cancel a job (or drain the whole service)"
    )
    cancel.add_argument("job", nargs="?", default=None, metavar="ID")
    cancel.add_argument("--url", default="http://127.0.0.1:8765")
    cancel.add_argument("--drain", action="store_true",
                        help="graceful drain: stop admissions and leasing, "
                             "finish in-flight cells, then exit")
    return parser


def _cmd_campaign(args) -> int:
    from repro.experiments import run_campaign_grid, tester_supports
    from repro.experiments.campaign import run_tool_campaign, split_fault_counts

    if not tester_supports(args.tester, args.engine):
        print(f"{args.tester} does not support {args.engine}", file=sys.stderr)
        return 2
    if args.reduce and not args.bundles:
        print("--reduce requires --bundles DIR", file=sys.stderr)
        return 2
    chaos = _parse_chaos(args)
    if args.chaos and chaos is None:
        return 2
    budget_seconds = args.minutes * 60.0

    supervised = (args.cell_timeout is not None or args.cell_retries
                  or chaos is not None)
    if args.seeds <= 1 and not args.resume and not supervised:
        from contextlib import nullcontext

        from repro.obs import observed

        events = None
        if args.events:
            from repro.runtime import EventLog

            events = EventLog(args.events, record_spans=args.metrics)
        scope = observed() if args.metrics else nullcontext()
        with scope:
            result = run_tool_campaign(
                args.tester, args.engine, budget_seconds=budget_seconds,
                seed=args.seed, gate_scale=args.gate_scale, events=events,
                record_coverage=args.coverage, record_triage=args.triage,
                bundle_dir=args.bundles, reduce_bundles=args.reduce,
                step_budget=args.step_budget,
                execution_mode=args.engine_mode,
                adaptive=args.adaptive,
                stateful=args.stateful,
            )
        if events is not None:
            events.close()
        results = {(args.tester, args.engine, args.seed): result}
    else:
        # Replicate fan-out: K derived seeds over N workers, resumable,
        # supervised (sandbox, watchdog, retries, quarantine, chaos).
        results = run_campaign_grid(
            (args.tester,), (args.engine,),
            seeds=range(args.seed, args.seed + args.seeds),
            budget_seconds=budget_seconds, gate_scale=args.gate_scale,
            derive_seeds=args.seeds > 1, jobs=args.jobs,
            events_path=args.events or args.resume, resume_path=args.resume,
            record_metrics=args.metrics, record_coverage=args.coverage,
            record_triage=args.triage, bundle_dir=args.bundles,
            reduce_bundles=args.reduce,
            cell_timeout=args.cell_timeout, cell_retries=args.cell_retries,
            chaos=chaos, step_budget=args.step_budget,
            execution_mode=args.engine_mode,
            adaptive=args.adaptive,
            stateful=args.stateful,
        )

    all_faults: List[str] = []
    for (_tester, _engine, seed), result in results.items():
        logic, other = split_fault_counts(result.detected_faults)
        print(
            f"{args.tester} on {args.engine} (seed {seed}): "
            f"{result.queries_run} queries, "
            f"{logic + other} distinct bugs ({logic} logic), "
            f"{result.false_positive_count} false positives"
        )
        for fault_id in result.detected_faults:
            print(f"  - {fault_id}")
            if fault_id not in all_faults:
                all_faults.append(fault_id)
    if len(results) > 1:
        logic, other = split_fault_counts(all_faults)
        print(f"union over {len(results)} seeds: "
              f"{logic + other} distinct bugs ({logic} logic)")
    if args.triage:
        # Signature-deduplicated view of the raw discrepancy stream.
        from repro.experiments.campaign import distinct_bug_summary

        for tester, entry in distinct_bug_summary(results).items():
            print(f"{tester}: {entry['distinct']} distinct signature(s) "
                  f"over {entry['reports']} discrepancy report(s)")
            for sig, count in entry["signatures"].items():
                print(f"  {sig}  ×{count}")
    if args.out:
        from repro.core.reporting import save_campaign

        merged = None
        for result in results.values():
            merged = result if merged is None else merged.merge(result)
        save_campaign(merged, args.out)
        print(f"campaign written to {args.out}")
    return _grid_exit_code(
        results, (args.tester,), (args.engine,),
        range(args.seed, args.seed + args.seeds),
        derive_seeds=args.seeds > 1,
    )


def _grid_exit_code(results, testers, engines, seeds, *,
                    derive_seeds=False) -> int:
    """0 when the grid is whole, 3 when quarantine left holes.

    The documented exit-code contract (docs/robustness.md): a grid that
    *completed* but is missing cells — retries exhausted, cells
    quarantined — must not look like success to CI.  Holes are computed
    against the same decomposition that scheduled the grid, so resumed
    and derived-seed runs are judged against exactly the cells they owed.
    """
    from repro.experiments.campaign import campaign_grid_cells

    expected = campaign_grid_cells(testers, engines, seeds=seeds,
                                   derive_seeds=derive_seeds)
    holes = [cell.key for cell in expected if cell.key not in results]
    if not holes:
        return 0
    labels = ", ".join("/".join(str(part) for part in key)
                       for key in holes[:6])
    if len(holes) > 6:
        labels += f", ... and {len(holes) - 6} more"
    print(
        f"warning: {len(holes)} grid cell(s) quarantined or missing "
        f"({labels}); exiting 3",
        file=sys.stderr,
    )
    return 3


def _cmd_compare(args) -> int:
    from repro.experiments import run_campaign_grid
    from repro.experiments.campaign import (
        TESTER_NAMES,
        distinct_bug_summary,
        split_fault_counts,
    )

    if args.reduce and not args.bundles:
        print("--reduce requires --bundles DIR", file=sys.stderr)
        return 2
    chaos = _parse_chaos(args)
    if args.chaos and chaos is None:
        return 2
    grid = run_campaign_grid(
        TESTER_NAMES, (args.engine,), seeds=(args.seed,),
        budget_seconds=args.minutes * 60.0, jobs=args.jobs,
        events_path=args.events or args.resume, resume_path=args.resume,
        record_metrics=args.metrics, record_coverage=args.coverage,
        record_triage=args.triage, bundle_dir=args.bundles,
        reduce_bundles=args.reduce,
        cell_timeout=args.cell_timeout, cell_retries=args.cell_retries,
        chaos=chaos, step_budget=args.step_budget,
        execution_mode=args.engine_mode,
        adaptive=args.adaptive,
        stateful=args.stateful,
    )
    by_tool = {tool: result for (tool, _e, _s), result in grid.items()}
    # "distinct" deduplicates the raw report stream by bug signature —
    # "bugs" counts injected faults (white-box), "reports" every
    # discrepancy the tester surfaced (including false positives).
    dedup = distinct_bug_summary(grid)
    rows = []
    for tool in TESTER_NAMES:
        result = by_tool.get(tool)
        if result is None:
            rows.append({"tester": tool, "completed": False})
            continue
        logic, other = split_fault_counts(result.detected_faults)
        entry = dedup.get(tool, {"reports": 0, "distinct": 0})
        rows.append({
            "tester": tool,
            "completed": True,
            "queries": result.queries_run,
            "bugs": logic + other,
            "logic": logic,
            "false_positives": result.false_positive_count,
            "reports": entry["reports"],
            "distinct": entry["distinct"],
        })
    exit_code = _grid_exit_code(grid, TESTER_NAMES, (args.engine,),
                                (args.seed,))
    if args.format == "json":
        import json

        from repro.obs.export import compare_json

        print(json.dumps(compare_json(args.engine, rows, seed=args.seed),
                         indent=2, sort_keys=True))
        return exit_code
    print(f"{'tester':>9s} {'queries':>8s} {'bugs':>5s} {'logic':>6s} "
          f"{'FPs':>5s} {'reports':>8s} {'distinct':>9s}")
    for row in rows:
        if not row["completed"]:
            print(f"{row['tester']:>9s} {'-':>8s}")
            continue
        print(
            f"{row['tester']:>9s} {row['queries']:8d} {row['bugs']:5d} "
            f"{row['logic']:6d} {row['false_positives']:5d} "
            f"{row['reports']:8d} {row['distinct']:9d}"
        )
    return exit_code


def _parse_chaos(args):
    """Parse --chaos (None when absent or invalid; invalid prints why)."""
    if not args.chaos:
        return None
    from repro.runtime import ChaosConfig

    try:
        return ChaosConfig.parse(args.chaos)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None


def _load_events(path: str) -> Optional[list]:
    from pathlib import Path

    from repro.core.reporting import load_event_stream

    if not Path(path).exists():
        print(f"no such event log: {path}", file=sys.stderr)
        return None
    return load_event_stream(path)


def _warn_skipped(events) -> None:
    """Warn when the log lost lines to truncation/tearing — and say where.

    Each torn line is pinned to its byte offset and length (from
    ``EventStream.skipped_lines``) so an operator can inspect the damage
    with ``dd``/``tail -c`` instead of guessing.
    """
    skipped = getattr(events, "skipped", 0)
    if skipped:
        print(
            f"warning: {skipped} torn/undecodable line(s) skipped — "
            "the log was truncated mid-write; totals may undercount",
            file=sys.stderr,
        )
        torn = list(getattr(events, "skipped_lines", ()))
        for entry in torn[:8]:
            print(
                f"  torn line at byte offset {entry['offset']} "
                f"({entry['length']} byte(s))",
                file=sys.stderr,
            )
        if len(torn) > 8:
            print(f"  ... and {len(torn) - 8} more", file=sys.stderr)


def _cmd_stats(args) -> int:
    import json

    from repro.obs import render_stats
    from repro.obs.export import stats_json

    events = _load_events(args.events)
    if events is None:
        return 2
    _warn_skipped(events)
    if args.format == "json":
        print(json.dumps(
            stats_json(
                events,
                skipped=getattr(events, "skipped", 0),
                torn=list(getattr(events, "skipped_lines", ())),
            ),
            indent=2, sort_keys=True,
        ))
        return 0
    print(render_stats(events))
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import render_trace

    events = _load_events(args.events)
    if events is None:
        return 2
    if args.export == "chrome":
        import json

        from repro.obs.export import chrome_trace

        payload = json.dumps(chrome_trace(events), indent=2, sort_keys=True)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(payload + "\n", encoding="utf-8")
            print(f"chrome trace written to {args.out}")
        else:
            print(payload)
        return 0
    print(render_trace(events))
    return 0


def _cmd_watch(args) -> int:
    import json
    import time

    from pathlib import Path

    from repro.obs.follow import EventFollower, render_watch, watch_json

    if args.once and not Path(args.events).exists():
        print(f"no such event log: {args.events}", file=sys.stderr)
        return 2
    follower = EventFollower(args.events)
    if args.once:
        follower.poll()
        if args.format == "json":
            print(json.dumps(watch_json(follower), indent=2,
                             sort_keys=True))
        else:
            print(render_watch(follower))
        return 0
    interval = max(args.interval, 0.05)
    last_queries = 0
    last_time = time.monotonic()
    rate = None
    try:
        while True:
            follower.poll()
            now = time.monotonic()
            if now > last_time:
                rate = (follower.total_queries - last_queries) / (
                    now - last_time
                )
            last_queries, last_time = follower.total_queries, now
            if args.format == "json":
                # One compact snapshot per line: a machine-tailable feed.
                print(json.dumps(watch_json(follower, rate=rate),
                                 sort_keys=True, separators=(",", ":")))
                sys.stdout.flush()
            else:
                # Refresh in place: home the cursor, repaint, clear the rest.
                frame = render_watch(follower, rate=rate)
                sys.stdout.write("\x1b[H" + frame + "\x1b[J\n")
                sys.stdout.flush()
            if follower.finished:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_report(args) -> int:
    from pathlib import Path

    from repro.obs.export import html_report

    events = _load_events(args.events)
    if events is None:
        return 2
    _warn_skipped(events)
    source = Path(args.events)
    out = Path(args.out) if args.out else source.with_suffix(".html")
    title = args.title or f"repro campaign report — {source.name}"
    out.write_text(
        html_report(events, title=title,
                    skipped=getattr(events, "skipped", 0)),
        encoding="utf-8",
    )
    print(f"report written to {out}")
    return 0


def _cmd_coverage(args) -> int:
    from repro.obs import render_coverage

    events = _load_events(args.events)
    if events is None:
        return 2
    print(render_coverage(events))
    return 0


def _cmd_bugs(args) -> int:
    from repro.obs import render_bugs

    events = _load_events(args.events)
    if events is None:
        return 2
    if args.format == "json":
        import json

        from repro.obs.export import bugs_json

        print(json.dumps(bugs_json(events), indent=2, sort_keys=True))
        return 0
    print(render_bugs(events))
    return 0


def _cmd_replay(args) -> int:
    from pathlib import Path

    from repro.obs import replay_bundle

    failures = 0
    for path in args.bundles:
        if not Path(path).exists():
            print(f"no such bundle: {path}", file=sys.stderr)
            return 2
        try:
            outcome = replay_bundle(path)
        except ValueError as exc:
            # Malformed/truncated bundle JSON: one-line diagnostic naming
            # the file and parse position, not an unhandled traceback.
            print(str(exc), file=sys.stderr)
            return 2
        print(f"== {path} ==")
        print(outcome.describe())
        if not outcome.reproduced:
            failures += 1
            diverged = [
                side
                for side, match in (
                    ("expected", outcome.expected_matches),
                    ("actual", outcome.actual_matches),
                )
                if not match
            ]
            print(
                f"{path}: {' and '.join(diverged)} side(s) "
                "diverged from the recording",
                file=sys.stderr,
            )
    if failures:
        print(f"{failures} bundle(s) FAILED to reproduce", file=sys.stderr)
        return 1
    return 0


def _cmd_reduce(args) -> int:
    from pathlib import Path

    from repro.reduce import ReductionRunner, iter_bundle_paths

    for source in args.sources:
        if not Path(source).exists():
            print(f"no such bundle or directory: {source}", file=sys.stderr)
            return 2
    paths = iter_bundle_paths(args.sources)
    if not paths:
        print("no bundles found", file=sys.stderr)
        return 2
    # Pre-flight every bundle so a malformed file is one diagnostic line
    # up front, not a traceback out of a worker process mid-reduction.
    from repro.obs.recorder import load_bundle

    for path in paths:
        try:
            load_bundle(path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    runner = ReductionRunner(jobs=args.jobs,
                             replay_budget=args.replay_budget,
                             step_budget=args.step_budget)
    failures = 0
    for outcome in runner.run(args.sources):
        if not outcome.reproduced:
            failures += 1
            print(
                f"{outcome.source}: does not replay to its recorded "
                "signature — not reduced",
                file=sys.stderr,
            )
            continue
        before, after = outcome.original, outcome.reduced
        print(
            f"{outcome.source}: {outcome.signature}\n"
            f"  nodes {before['nodes']} -> {after['nodes']}, "
            f"relationships {before['relationships']} -> "
            f"{after['relationships']}, "
            f"properties {before['properties']} -> {after['properties']}, "
            f"query {before['query_bytes']}B -> {after['query_bytes']}B "
            f"({outcome.oracle_replays} replays, "
            f"{outcome.rounds} round(s))\n"
            f"  -> {outcome.min_path}"
        )
    if failures:
        print(f"{failures} bundle(s) FAILED to reproduce", file=sys.stderr)
        return 1
    return 0


def _cmd_table(args) -> int:
    from repro import experiments as E

    if args.id == 2:
        print(E.render_table(E.table2(), "Table 2"))
    elif args.id == 3:
        campaigns = E.run_full_gqs_campaigns(seed=args.seed, jobs=args.jobs)
        print(E.render_table(E.table3(campaigns), "Table 3"))
    elif args.id == 4:
        campaigns = E.run_full_gqs_campaigns(seed=args.seed, jobs=args.jobs)
        data = E.table4(campaigns)
        print(E.render_table(data["missed"], "Table 4"))
        latency_rows = [
            {"GDB": engine,
             "avg latency (yrs)": round(values["avg"], 1),
             "max latency (yrs)": round(values["max"], 1)}
            for engine, values in data["latency"].items()
        ]
        print(E.render_table(latency_rows, "Table 4 — missed-bug latency"))
    elif args.id == 5:
        print(E.render_table(E.table5(n_queries=250, seed=args.seed), "Table 5"))
    elif args.id == 6:
        rows, _campaigns = E.table6(seed=args.seed, jobs=args.jobs)
        print(E.render_table(rows, "Table 6"))
    return 0


def _cmd_figure(args) -> int:
    from repro import experiments as E

    if args.id == 18:
        _rows, campaigns = E.table6(seed=args.seed, jobs=args.jobs)
        for engine, series in E.figure18(campaigns).items():
            print(E.render_series(series, f"Figure 18 — {engine}"))
        return 0

    campaigns = E.run_full_gqs_campaigns(seed=args.seed, jobs=args.jobs)
    records = E.collect_trigger_records(campaigns)
    if args.id == 10:
        for engine, counts in E.figure10(records).items():
            print(E.render_kv({k: v for k, v in counts.items() if v},
                              f"Figure 10 — {engine}"))
        for engine, series in E.figure10_throughput().items():
            print(E.render_kv(series, f"Figure 10 — {engine} q/s by steps"))
    elif args.id == 11:
        print(E.render_histogram(E.figure11(records), "Figure 11"))
    elif args.id == 12:
        print(E.render_histogram(E.figure12(records), "Figure 12"))
    elif args.id == 13:
        print(E.render_histogram(E.figure13(records), "Figure 13"))
    elif args.id == 14:
        print(E.render_histogram(E.figure14(records), "Figure 14"))
    elif args.id == 15:
        print(E.render_histogram(E.figure15(records), "Figure 15"))
    return 0


def _cmd_synthesize(args) -> int:
    from repro.core import QuerySynthesizer
    from repro.core.runner import synthesizer_config_for
    from repro.cypher import print_query
    from repro.gdb import create_engine
    from repro.graph import GraphGenerator

    schema, graph = GraphGenerator(seed=args.seed).generate_with_schema()
    engine = create_engine(args.engine)
    synthesizer = QuerySynthesizer(
        graph, rng=random.Random(args.seed),
        config=synthesizer_config_for(engine),
    )
    result = synthesizer.synthesize()
    print("expected result set:")
    for alias, value in zip(result.expected.columns, result.ground_truth.row()):
        print(f"  {alias} = {value!r}")
    print(f"rows expected: {len(result.expected)}")
    print(f"\nquery ({result.n_steps} clauses):")
    print(print_query(result.query))
    if args.gremlin:
        from repro.cypher.gremlin import UnsupportedForGremlin, translate_query

        print("\nGremlin translation (§7):")
        try:
            print(translate_query(result.query))
        except UnsupportedForGremlin as exc:
            print(f"  not translatable: {exc}")
    return 0


def _cmd_calibrate(args) -> int:
    import importlib.util
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "scripts" / "calibrate_faults.py"
    spec = importlib.util.spec_from_file_location("calibrate_faults", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main(args.n)
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    if args.chaos:
        from repro.runtime import ChaosConfig

        try:
            ChaosConfig.parse(args.chaos)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    return serve(
        args.journal,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        capacity=args.capacity,
        lease_seconds=args.lease_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
        heartbeat_misses=args.heartbeat_misses,
        cell_retries=args.cell_retries,
        retry_backoff=args.retry_backoff,
        chaos=args.chaos,
    )


def _service_client(url):
    from repro.service import ServiceClient

    return ServiceClient(url)


def _cmd_submit(args) -> int:
    from repro.service import ServiceError

    if args.spec:
        import json
        from pathlib import Path

        try:
            spec = json.loads(Path(args.spec).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"cannot read spec {args.spec}: {exc}", file=sys.stderr)
            return 2
    else:
        spec = {
            "testers": args.testers or ["GQS"],
            "engines": args.engines or ["falkordb"],
            "seeds": list(range(args.seed, args.seed + max(1, args.seeds))),
            "budget_seconds": args.minutes * 60.0,
            "gate_scale": args.gate_scale,
            "derive_seeds": args.seeds > 1,
            "execution_mode": args.engine_mode,
            "adaptive": args.adaptive,
            "stateful": args.stateful,
            "record_metrics": args.metrics,
            "record_coverage": args.coverage,
            "record_triage": args.triage,
        }
    client = _service_client(args.url)
    try:
        record = client.submit(spec)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        # 429/503 are availability refusals (exit 4), not usage errors.
        return 4 if exc.status in (429, 503) else 2
    except OSError as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 4
    counts = record["counts"]
    print(f"{record['job']} accepted: "
          f"{sum(counts.values())} cell(s) ({counts['done']} already done)")
    if not args.wait:
        return 0
    try:
        record = client.wait(record["job"], timeout=args.timeout)
    except (ServiceError, OSError, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 4
    counts = record["counts"]
    print(f"{record['job']} {record['status']}: {counts['done']} done, "
          f"{counts['quarantined']} quarantined, "
          f"{counts['cancelled']} cancelled")
    return 3 if counts["quarantined"] else 0


def _cmd_jobs(args) -> int:
    import json

    from repro.service import ServiceError

    client = _service_client(args.url)
    try:
        if args.job:
            payload = client.job(args.job)
        else:
            payload = {"jobs": client.jobs()}
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 4
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.job:
        counts = payload["counts"]
        print(f"{payload['job']}: {payload['status']} "
              f"({counts['done']}/{len(payload['cells'])} done, "
              f"{counts['quarantined']} quarantined)")
        for cell in payload["cells"]:
            label = f"{cell['tester']}/{cell['engine']}/{cell['seed']}"
            print(f"  {label:<28s} {cell['status']:<14s} "
                  f"queries {cell['queries']:>6d}  "
                  f"attempts {cell['attempts']}")
        return 0
    if not payload["jobs"]:
        print("no jobs")
        return 0
    for record in payload["jobs"]:
        counts = record["counts"]
        total = sum(counts.values())
        print(f"{record['job']:<10s} {record['status']:<10s} "
              f"{counts['done']}/{total} done, "
              f"{counts['pending']} pending, {counts['leased']} leased, "
              f"{counts['quarantined']} quarantined")
    return 0


def _cmd_cancel(args) -> int:
    from repro.service import ServiceError

    if not args.drain and not args.job:
        print("cancel: give a job ID or --drain", file=sys.stderr)
        return 2
    client = _service_client(args.url)
    try:
        if args.drain:
            client.drain()
            print("service draining")
            return 0
        record = client.cancel(args.job)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot reach service at {args.url}: {exc}", file=sys.stderr)
        return 4
    counts = record["counts"]
    print(f"{record['job']} cancelled: {counts['cancelled']} cell(s) "
          f"dropped, {counts['done']} completed result(s) kept")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "campaign": _cmd_campaign,
        "run": _cmd_campaign,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "watch": _cmd_watch,
        "report": _cmd_report,
        "coverage": _cmd_coverage,
        "bugs": _cmd_bugs,
        "replay": _cmd_replay,
        "reduce": _cmd_reduce,
        "table": _cmd_table,
        "figure": _cmd_figure,
        "synthesize": _cmd_synthesize,
        "calibrate": _cmd_calibrate,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "cancel": _cmd_cancel,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-print; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
