"""Synthesis subsystems beyond the read-only GQS core.

``repro.synth.state`` holds the state-aware write-workload synthesizer and
its state-tracking differential oracle (the Dinkel direction from
PAPERS.md).  The read-only synthesizer stays in :mod:`repro.core`.
"""
