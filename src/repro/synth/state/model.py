"""Dinkel-style state model backing the stateful synthesizer.

The model owns the *shadow graph*: a private copy of the round's initial
graph that executes every accepted statement through the same reference
executor the engines use.  Because engine and shadow start from copies of
one graph and run identical statement sequences, id allocation stays in
lockstep — which is what makes the state digest a sound oracle
(:mod:`repro.synth.state.oracle`).

On top of the shadow the model tracks the evolving vocabulary: labels,
relationship types, and property keys present in the current state plus
the names minted by prior writes.  Statement builders draw from these pools
so every generated statement is valid against the *current* state, not the
initial graph — the core Dinkel property.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.engine.binding import ResultSet
from repro.engine.executor import Executor, default_procedures
from repro.graph.model import Node, PropertyGraph
from repro.synth.state.oracle import state_summary

__all__ = ["StateModel"]

# Minted vocabulary uses a dedicated prefix so synthesized names never
# collide with generator-produced ones.
_LABEL_PREFIX = "WLabel"
_TYPE_PREFIX = "W_REL"
_KEY_PREFIX = "wkey"

# Anchor/assignment values must survive the print->parse->evaluate round
# trip exactly; floats and collections are excluded on purpose.
_LITERAL_TYPES = (bool, int, str)


def _is_anchor_value(value: Any) -> bool:
    return isinstance(value, _LITERAL_TYPES)


class StateModel:
    """Live symbol table + shadow graph for one stateful graph round."""

    def __init__(
        self,
        initial_graph: PropertyGraph,
        *,
        enforce_rel_uniqueness: bool = True,
        supports_call_procedures: bool = True,
    ):
        self.shadow = initial_graph.copy()
        self._executor = Executor(
            self.shadow,
            enforce_rel_uniqueness=enforce_rel_uniqueness,
            procedures=default_procedures()
            if supports_call_procedures
            else {},
        )
        self._minted_labels = 0
        self._minted_types = 0
        self._minted_keys = 0
        self.statements_applied = 0
        # The read synthesizer's pin predicates (§3.4) require a unique
        # literal "id" property on every element, which the graph generator
        # mints at build time.  Writes must keep that invariant: created
        # elements draw fresh values from this counter, and SET/REMOVE
        # never touch the "id" key.
        ids = [
            value
            for element in list(self.shadow.nodes())
            + list(self.shadow.relationships())
            for value in [element.properties.get("id")]
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        self._next_id = (max(ids) + 1) if ids else 0

    # -- state evolution ----------------------------------------------------

    def apply(self, tree) -> ResultSet:
        """Execute one accepted statement against the shadow graph."""
        result = self._executor.execute(tree)
        self.statements_applied += 1
        return result

    def summary(self) -> dict:
        """The reference (expected) state snapshot after the last apply."""
        return state_summary(self.shadow)

    # -- vocabulary pools ---------------------------------------------------

    def labels(self) -> List[str]:
        """Labels present in the *current* state (sorted, deterministic)."""
        return self.shadow.labels()

    def relationship_types(self) -> List[str]:
        return self.shadow.relationship_types()

    def mint_label(self) -> str:
        self._minted_labels += 1
        return f"{_LABEL_PREFIX}{self._minted_labels}"

    def mint_type(self) -> str:
        self._minted_types += 1
        return f"{_TYPE_PREFIX}{self._minted_types}"

    def mint_key(self) -> str:
        self._minted_keys += 1
        return f"{_KEY_PREFIX}{self._minted_keys}"

    def next_id(self) -> int:
        """A fresh value for a created element's ``id`` pin property."""
        value = self._next_id
        self._next_id += 1
        return value

    # -- anchors ------------------------------------------------------------

    def pick_node(self, rng: random.Random) -> Optional[Node]:
        """A deterministic random node of the current state, if any."""
        nodes = self.shadow.nodes_sorted()
        if not nodes:
            return None
        return rng.choice(nodes)

    def anchor_for(
        self, node: Node, rng: random.Random
    ) -> Tuple[Tuple[str, ...], Optional[Tuple[str, Any]]]:
        """How to select *node* in a MATCH: ``(labels, property pair)``.

        Prefers one label plus one literal-valued property (selective but
        not necessarily unique — every statement applies to all matches,
        deterministically on both sides); degrades to label-only or
        property-only anchors for bare nodes.
        """
        labels = tuple(sorted(node.labels)[:1])
        candidates = sorted(
            (key, value)
            for key, value in node.properties.items()
            if _is_anchor_value(value)
        )
        pair = rng.choice(candidates) if candidates else None
        return labels, pair
