"""Write-statement builders: one function per statement family.

Each builder takes the :class:`StateModel` and the cell RNG and returns a
complete, *valid-by-construction* ``ast.Query`` — valid against the model's
current shadow state, never the initial graph.  Builders that need an
existing element (SET, REMOVE, DELETE, relationship CREATE) anchor it with
a ``MATCH`` on a label and/or a literal-valued property of a concrete
shadow node; the anchor may match several elements, which is fine — the
statement then applies to all of them, identically on the engine and the
shadow.

Anchored statements deliberately avoid expression obfuscation: the point
of a write is to mutate state the oracle can track, and the reduction
pipeline prefers minimal statements anyway.  Reads interleaved by the
synthesizer keep the full §3.5 expression machinery.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.cypher import ast
from repro.graph.model import Node
from repro.synth.state.model import StateModel

__all__ = [
    "build_create",
    "build_merge",
    "build_set",
    "build_delete",
    "build_remove",
    "build_statement",
    "valid_kinds",
]


def _props(pairs: List[Tuple[str, Any]]) -> Optional[ast.MapLiteral]:
    if not pairs:
        return None
    return ast.MapLiteral(
        tuple((key, ast.Literal(value)) for key, value in pairs)
    )


def _unique_anchor_match(node: Node, variable: str) -> Optional[ast.Match]:
    """A MATCH pinned to exactly one node via its unique ``id`` property.

    CREATE executes once per matched row, so its anchor must be unique —
    a broader anchor would fan out into several new elements sharing one
    literal ``id`` map, breaking the pin-predicate invariant the read
    synthesizer depends on.
    """
    id_value = node.properties.get("id")
    if isinstance(id_value, bool) or not isinstance(id_value, (int, str)):
        return None
    return ast.Match(
        patterns=(
            ast.PathPattern(
                nodes=(
                    ast.NodePattern(
                        variable=variable,
                        properties=_props([("id", id_value)]),
                    ),
                ),
            ),
        ),
    )


def _anchor_match(
    model: StateModel, node: Node, rng: random.Random, variable: str
) -> ast.Match:
    labels, pair = model.anchor_for(node, rng)
    return ast.Match(
        patterns=(
            ast.PathPattern(
                nodes=(
                    ast.NodePattern(
                        variable=variable,
                        labels=labels,
                        properties=_props([pair] if pair else []),
                    ),
                ),
            ),
        ),
    )


def _fresh_value(model: StateModel, rng: random.Random) -> Any:
    roll = rng.random()
    if roll < 0.5:
        return rng.randrange(100)
    if roll < 0.8:
        return f"w{rng.randrange(1000)}"
    return rng.random() < 0.5


def _label_for(model: StateModel, rng: random.Random) -> str:
    labels = model.labels()
    if labels and rng.random() < 0.6:
        return rng.choice(labels)
    return model.mint_label()


def _type_for(model: StateModel, rng: random.Random) -> str:
    types = model.relationship_types()
    if types and rng.random() < 0.6:
        return rng.choice(types)
    return model.mint_type()


def _mutable_keys(node: Node) -> List[str]:
    # "id" is the pin-predicate property every element must keep
    # (repro.synth.state.model); writes never reassign or remove it.
    return sorted(key for key in node.properties if key != "id")


def _key_for(node: Optional[Node], model: StateModel, rng: random.Random) -> str:
    keys = _mutable_keys(node) if node is not None else []
    if keys and rng.random() < 0.6:
        return rng.choice(keys)
    return model.mint_key()


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def build_create(model: StateModel, rng: random.Random) -> ast.Query:
    """``CREATE`` a fresh node, optionally wired to an anchored node."""
    label = _label_for(model, rng)
    key = model.mint_key()
    new_node = ast.NodePattern(
        variable="n",
        labels=(label,),
        properties=_props(
            [("id", model.next_id()), (key, _fresh_value(model, rng))]
        ),
    )
    anchor = model.pick_node(rng)
    wire = anchor is not None and rng.random() < 0.5
    match = _unique_anchor_match(anchor, "a") if wire else None
    if match is not None:
        # MATCH (a {id: ...}) CREATE (a)-[:T {id: ...}]->(n:Label {id: ..., key: value})
        rel = ast.RelationshipPattern(
            types=(_type_for(model, rng),),
            direction=ast.OUT,
            properties=_props([("id", model.next_id())]),
        )
        create = ast.Create(
            patterns=(
                ast.PathPattern(
                    nodes=(ast.NodePattern(variable="a"), new_node),
                    relationships=(rel,),
                ),
            ),
        )
        return ast.Query(clauses=(match, create))
    return ast.Query(
        clauses=(ast.Create(patterns=(ast.PathPattern(nodes=(new_node,)),)),)
    )


def build_merge(model: StateModel, rng: random.Random) -> ast.Query:
    """``MERGE`` that deterministically matches or creates a single node."""
    anchor = model.pick_node(rng)
    if anchor is not None and rng.random() < 0.5:
        # Match arm: re-state an existing node's anchor, so MERGE matches.
        labels, pair = model.anchor_for(anchor, rng)
        node = ast.NodePattern(
            variable="m",
            labels=labels,
            properties=_props([pair] if pair else []),
        )
    else:
        # Create arm: a minted label cannot exist yet, so MERGE creates.
        node = ast.NodePattern(
            variable="m",
            labels=(model.mint_label(),),
            properties=_props(
                [
                    ("id", model.next_id()),
                    (model.mint_key(), _fresh_value(model, rng)),
                ]
            ),
        )
    return ast.Query(clauses=(ast.Merge(pattern=ast.PathPattern(nodes=(node,))),))


def build_set(model: StateModel, rng: random.Random) -> Optional[ast.Query]:
    """``MATCH ... SET x.key = value`` on an anchored node."""
    target = model.pick_node(rng)
    if target is None:
        return None
    match = _anchor_match(model, target, rng, "x")
    items = [
        ast.SetItem(
            subject="x",
            key=_key_for(target, model, rng),
            value=ast.Literal(_fresh_value(model, rng)),
        )
    ]
    if rng.random() < 0.3:
        items.append(
            ast.SetItem(
                subject="x",
                key=model.mint_key(),
                value=ast.Literal(_fresh_value(model, rng)),
            )
        )
    return ast.Query(clauses=(match, ast.SetClause(items=tuple(items))))


def build_delete(model: StateModel, rng: random.Random) -> Optional[ast.Query]:
    """``DETACH DELETE`` an anchored node, or plain ``DELETE`` a relationship.

    Node deletions always detach: the reference executor (correctly) raises
    on plain DELETE of a connected node, and a harness-raised error is not
    a bug the oracle should see.
    """
    rels = sorted(model.shadow.relationships(), key=lambda rel: rel.id)
    if rels and rng.random() < 0.4:
        rel = rng.choice(rels)
        start = model.shadow.node(rel.start)
        match = _anchor_match(model, start, rng, "a")
        path = ast.PathPattern(
            nodes=(
                ast.NodePattern(
                    variable="a",
                    labels=match.patterns[0].nodes[0].labels,
                    properties=match.patterns[0].nodes[0].properties,
                ),
                ast.NodePattern(variable="b"),
            ),
            relationships=(
                ast.RelationshipPattern(
                    variable="r", types=(rel.type,), direction=ast.OUT
                ),
            ),
        )
        return ast.Query(
            clauses=(
                ast.Match(patterns=(path,)),
                ast.Delete(expressions=(ast.Variable("r"),), detach=False),
            ),
        )
    target = model.pick_node(rng)
    if target is None:
        return None
    match = _anchor_match(model, target, rng, "x")
    return ast.Query(
        clauses=(
            match,
            ast.Delete(expressions=(ast.Variable("x"),), detach=True),
        ),
    )


def build_remove(model: StateModel, rng: random.Random) -> Optional[ast.Query]:
    """``MATCH ... REMOVE x.key`` (or ``REMOVE x:Label``) on an anchor."""
    target = model.pick_node(rng)
    if target is None:
        return None
    match = _anchor_match(model, target, rng, "x")
    keys = _mutable_keys(target)
    if target.labels and (not keys or rng.random() < 0.3):
        label = rng.choice(sorted(target.labels))
        item = ast.RemoveItem(subject="x", label=label)
    else:
        key = rng.choice(keys) if keys else model.mint_key()
        item = ast.RemoveItem(subject="x", key=key)
    return ast.Query(clauses=(match, ast.Remove(items=(item,))))


_BUILDERS = {
    "create": build_create,
    "merge": build_merge,
    "set": build_set,
    "delete": build_delete,
    "remove": build_remove,
}


def valid_kinds(model: StateModel) -> List[str]:
    """Statement kinds that are valid against the current shadow state."""
    if model.shadow.node_count == 0:
        return ["create", "merge"]
    return ["create", "merge", "set", "delete", "remove"]


def build_statement(kind: str, model: StateModel, rng: random.Random):
    """Dispatch to a builder; returns None when the state can't support it."""
    return _BUILDERS[kind](model, rng)
