"""The state-tracking differential oracle.

After every write statement the shadow graph (reference state) and the
engine's live graph should be byte-for-byte identical: both start from a
copy of the same initial graph and execute the same statement sequence
through the same reference executor, so node/relationship id allocation is
deterministic on both sides.  Any divergence is therefore a bug — either an
injected state-corruption fault (:mod:`repro.gdb.state_effects`) or a real
defect in the engine's write path.

The comparison is a deterministic *state digest*: SHA-256 over the graph's
canonical JSON serialization (``to_dict`` is id-sorted and JSON-safe).  A
divergent digest becomes a ``kind="state"`` discrepancy, the stateful
counterpart of the read-only oracle's ``"logic"`` kind.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.graph.model import PropertyGraph

__all__ = ["state_digest", "state_summary", "compare_states"]


def state_digest(graph: PropertyGraph) -> str:
    """Deterministic digest of the full graph state (truncated SHA-256)."""
    payload = json.dumps(
        graph.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def state_summary(graph: PropertyGraph) -> Dict[str, Any]:
    """The snapshot the oracle compares (and bundles/replays persist)."""
    return {
        "nodes": graph.node_count,
        "relationships": graph.relationship_count,
        "digest": state_digest(graph),
    }


def compare_states(
    engine_graph: PropertyGraph, shadow: PropertyGraph
) -> Optional[str]:
    """Return a human-readable divergence description, or None if in sync.

    Counts are reported before the digest so triage shapes stay stable for
    the common corruptions (phantom node, dangling relationship); a pure
    property/label corruption shows up as a digest-only divergence.
    """
    actual = state_summary(engine_graph)
    expected = state_summary(shadow)
    if actual == expected:
        return None
    parts = []
    if actual["nodes"] != expected["nodes"]:
        parts.append(
            f"node count {actual['nodes']} != expected {expected['nodes']}"
        )
    if actual["relationships"] != expected["relationships"]:
        parts.append(
            f"relationship count {actual['relationships']} != expected "
            f"{expected['relationships']}"
        )
    parts.append(
        f"state digest {actual['digest']} != expected {expected['digest']}"
    )
    return "post-write state diverged: " + "; ".join(parts)
