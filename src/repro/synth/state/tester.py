"""The stateful GQS tester: write workloads under the campaign kernel.

``StatefulGQSTester`` keeps the GQS name (grids, support matrices, and
triage keys stay stable) and the restart-per-graph session policy, but
replaces the per-graph proposal stream with a deterministic statement
sequence from :class:`StatefulSynthesizer`:

* **reads** are judged exactly like read-only GQS — constructive expected
  result, zero-false-positive comparison;
* **writes** are judged by the state-tracking oracle: the statement is
  applied to the shadow graph, and a divergent engine state (deterministic
  digest, :mod:`repro.synth.state.oracle`) becomes a ``kind="state"``
  report.

After any error or state report the round is *poisoned*: the engine's
state can no longer be trusted to match the shadow, so the proposal stream
ends and the next graph round starts from a fresh pair.  That keeps every
recorded sequence a straight prefix-closed replay: initial graph plus the
statements executed, the last one being the discrepant statement — exactly
what a gqs-bundle v2 stores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.core.oracle import check_result
from repro.core.runner import GQSTester
from repro.cypher.analysis import analyze, clause_types_in
from repro.engine.errors import CypherError, DatabaseCrash, ResourceExhausted
from repro.gdb.engines import GraphDatabase
from repro.runtime.protocol import Judgement
from repro.runtime.results import BugReport, CampaignResult
from repro.synth.state.model import StateModel
from repro.synth.state.oracle import compare_states
from repro.synth.state.synthesizer import StatefulSynthesizer, StatementProposal

__all__ = ["StatefulGQSTester"]


@dataclass
class _Round:
    """Book-keeping for one graph round of a stateful session."""

    model: StateModel
    initial_graph: Any                       # pristine PropertyGraph
    statements: List[str] = field(default_factory=list)
    poisoned: bool = False


class StatefulGQSTester(GQSTester):
    """GQS extended with state-aware write workloads (Dinkel direction)."""

    def __init__(
        self,
        stateful_ratio: float = 0.5,
        statements_per_graph: int = 12,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.stateful_ratio = float(stateful_ratio)
        self.statements_per_graph = statements_per_graph
        self._round: Optional[_Round] = None

    # -- TesterProtocol ---------------------------------------------------

    def proposals(
        self, engine: GraphDatabase, graph, schema, rng: random.Random
    ) -> Iterator[StatementProposal]:
        model = StateModel(
            graph,
            enforce_rel_uniqueness=engine.dialect.enforces_rel_uniqueness,
            supports_call_procedures=engine.dialect.supports_call_procedures,
        )
        synthesizer = StatefulSynthesizer(
            model,
            rng,
            config=self._synthesizer_config,
            weights=self._weights,
            stateful_ratio=self.stateful_ratio,
        )
        self._round = _Round(model=model, initial_graph=graph)
        count = rng.randint(
            max(2, self.statements_per_graph // 2), self.statements_per_graph
        )
        for _statement in range(count):
            if self._round.poisoned:
                return
            yield synthesizer.propose()

    def judge(
        self,
        engine: GraphDatabase,
        synthesis: StatementProposal,
        graph,
        rng: random.Random,
        result: CampaignResult,
    ) -> Judgement:
        round_ = self._round
        query_text = synthesis.text
        result.sim_seconds += engine.cost_of(synthesis.query)
        round_.statements.append(query_text)

        report: Optional[BugReport] = None
        try:
            actual = engine.execute(synthesis.query)
        except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
            # Engine state after an aborted statement is unknowable; end
            # the round so the shadow never drifts silently.
            round_.poisoned = True
            fault = engine.last_fired_fault
            report = BugReport(
                tester=self.name,
                engine=engine.name,
                kind="error",
                detail=f"{type(exc).__name__}: {exc}",
                query_text=query_text,
                fault_id=fault.fault_id if fault else None,
                sim_time=result.sim_seconds,
                n_steps=synthesis.n_steps,
            )
        except BaseException:
            # Harness conditions (blown evaluation budget) interrupt the
            # lockstep protocol mid-statement; poison before re-raising.
            round_.poisoned = True
            raise
        else:
            if synthesis.is_write:
                round_.model.apply(synthesis.query)
                divergence = compare_states(engine.graph, round_.model.shadow)
                if divergence is not None:
                    # The differential stops being meaningful once the
                    # engine's state is corrupt; end the round here too.
                    round_.poisoned = True
                    fault = engine.last_fired_fault
                    report = BugReport(
                        tester=self.name,
                        engine=engine.name,
                        kind="state",
                        detail=divergence,
                        query_text=query_text,
                        fault_id=fault.fault_id if fault else None,
                        sim_time=result.sim_seconds,
                        n_steps=synthesis.n_steps,
                    )
            else:
                verdict = check_result(synthesis.expected, actual)
                if not verdict.passed:
                    fault = engine.last_fired_fault
                    report = BugReport(
                        tester=self.name,
                        engine=engine.name,
                        kind="logic",
                        detail=verdict.reason,
                        query_text=query_text,
                        fault_id=fault.fault_id if fault else None,
                        sim_time=result.sim_seconds,
                        n_steps=synthesis.n_steps,
                    )

        if report is None:
            return Judgement()

        statement_index = len(round_.statements) - 1
        statement_kind = synthesis.statement_kind

        def make_trigger_record() -> Dict[str, Any]:
            metrics = analyze(synthesis.query)
            return {
                "fault_id": report.fault_id,
                "engine": engine.name,
                "query_text": query_text,
                "n_steps": synthesis.n_steps,
                "patterns": metrics.patterns,
                "depth": metrics.expression_depth,
                "clauses": metrics.clauses,
                "dependencies": metrics.dependencies,
                "clause_names": clause_types_in(synthesis.query),
                "kind": report.kind,
                "graph_nodes": graph.node_count if graph else None,
                "graph_relationships": (
                    graph.relationship_count if graph else None
                ),
                "ground_truth_size": len(synthesis.ground_truth),
                # Stateful-session extras.
                "statement_index": statement_index,
                "statement_kind": statement_kind,
            }

        return Judgement(report=report, trigger_record=make_trigger_record)

    def sequence_context(self, engine: GraphDatabase) -> Optional[Dict[str, Any]]:
        """The v2 bundle payload for the current round's sequence."""
        round_ = self._round
        if round_ is None or not round_.statements:
            return None
        return {
            "statements": list(round_.statements),
            "graph": round_.initial_graph,
        }
