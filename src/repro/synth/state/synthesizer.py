"""The stateful synthesizer: writes interleaved with reads.

Each call to :meth:`StatefulSynthesizer.propose` flips a weighted coin
(``stateful_ratio``) between a write statement — built by
:mod:`repro.synth.state.statements` against the current shadow state — and
a read query, synthesized by the unchanged read-only
:class:`repro.core.synthesizer.QuerySynthesizer` *over the shadow graph*.
Reads therefore arrive with a constructively-established expected result
that is correct for the current state, so the read-only differential
oracle applies verbatim inside a stateful session.

The write mix is governed by the ``stateful_*_weight`` knobs on
:class:`SynthesizerConfig`, renormalized over the kinds valid for the
current state (an empty shadow can only CREATE/MERGE), which keeps the
adaptive policy's multiplicative scaling meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from repro.core.ground_truth import select_ground_truth
from repro.core.synthesizer import (
    QuerySynthesizer,
    SynthesisResult,
    SynthesizerConfig,
)
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.synth.state.model import StateModel
from repro.synth.state.statements import build_statement, valid_kinds

__all__ = ["StatementProposal", "StatefulSynthesizer"]


@dataclass
class StatementProposal:
    """One statement of a stateful session, write or read.

    Duck-type compatible with :class:`SynthesisResult` where the campaign
    plumbing cares (``query`` for coverage tagging, ``n_steps`` for
    reports); writes carry no expected rows — their oracle is the
    post-write state digest.
    """

    query: Union[ast.Query, ast.UnionQuery]
    text: str
    kind: str                       # "write" | "read"
    statement_kind: str             # "create" | ... | "read"
    expected: Any = None            # ResultSet for reads, None for writes
    ground_truth: List[Any] = field(default_factory=list)
    n_steps: int = 1
    scheduled_steps: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class StatefulSynthesizer:
    """Generates a deterministic statement stream over an evolving state."""

    def __init__(
        self,
        model: StateModel,
        rng: random.Random,
        config: Optional[SynthesizerConfig] = None,
        weights=None,
        stateful_ratio: float = 0.5,
    ):
        self.model = model
        self.rng = rng
        self.config = config or SynthesizerConfig()
        if weights is not None:
            self.config = weights.apply_synthesizer(self.config)
        self.weights = None  # already folded into config above
        self.stateful_ratio = max(0.0, min(1.0, stateful_ratio))

    # ------------------------------------------------------------------

    def propose(self) -> StatementProposal:
        """The next statement, valid against the current shadow state."""
        if self.model.shadow.node_count == 0 or (
            self.rng.random() < self.stateful_ratio
        ):
            return self._propose_write()
        return self._propose_read()

    # -- writes ---------------------------------------------------------

    def _write_kind(self) -> str:
        kinds = valid_kinds(self.model)
        weights = [
            getattr(self.config, f"stateful_{kind}_weight") for kind in kinds
        ]
        total = sum(weights)
        if total <= 0:
            return kinds[0]
        roll = self.rng.random() * total
        for kind, weight in zip(kinds, weights):
            roll -= weight
            if roll <= 0:
                return kind
        return kinds[-1]

    def _propose_write(self) -> StatementProposal:
        tree = None
        kind = "create"
        for _attempt in range(4):
            kind = self._write_kind()
            tree = build_statement(kind, self.model, self.rng)
            if tree is not None:
                break
        if tree is None:
            # Builders only decline on an empty state; CREATE never does.
            kind = "create"
            tree = build_statement("create", self.model, self.rng)
        return StatementProposal(
            query=tree,
            text=print_query(tree),
            kind="write",
            statement_kind=kind,
            n_steps=len(tree.clauses),
        )

    # -- reads ----------------------------------------------------------

    def _propose_read(self) -> StatementProposal:
        # A fresh synthesizer per read keeps its pattern/expression caches
        # honest against the evolving shadow graph.
        synthesizer = QuerySynthesizer(
            self.model.shadow, rng=self.rng, config=self.config
        )
        ground_truth = select_ground_truth(
            self.model.shadow, self.rng, synthesizer.config.max_ground_truth
        )
        synthesis: SynthesisResult = synthesizer.synthesize(ground_truth)
        return StatementProposal(
            query=synthesis.query,
            text=print_query(synthesis.query),
            kind="read",
            statement_kind="read",
            expected=synthesis.expected,
            ground_truth=synthesis.ground_truth,
            n_steps=synthesis.n_steps,
            scheduled_steps=synthesis.scheduled_steps,
        )
