"""State-aware write-workload synthesis (the Dinkel direction).

Public surface:

* :class:`StateModel` — shadow graph + evolving vocabulary,
* :class:`StatefulSynthesizer` / :class:`StatementProposal` — the
  deterministic write/read statement stream,
* :class:`StatefulGQSTester` — the campaign tester with the
  state-tracking differential oracle,
* :func:`state_digest` / :func:`state_summary` / :func:`compare_states` —
  the oracle primitives shared with replay (:mod:`repro.obs.recorder`).

See ``docs/state.md`` for the full design.
"""

from repro.synth.state.model import StateModel
from repro.synth.state.oracle import compare_states, state_digest, state_summary
from repro.synth.state.synthesizer import StatefulSynthesizer, StatementProposal
from repro.synth.state.tester import StatefulGQSTester

__all__ = [
    "StateModel",
    "StatefulSynthesizer",
    "StatementProposal",
    "StatefulGQSTester",
    "compare_states",
    "state_digest",
    "state_summary",
]
