"""Search pattern construction and mutation (paper §3.4).

To synthesize a MATCH clause introducing a planned set of graph elements,
GQS:

1. collects *base patterns* — paths through the graph containing the
   elements to introduce;
2. mutates them against patterns used in previous clauses, via three
   strategies keyed on where the shared element sits (concatenation,
   branching, cross recombination);
3. encodes the mutated paths as Cypher search patterns, optionally adding
   labels/types and dropping relationship directions;
4. constructs ``WHERE`` predicates that pin the match to exactly the
   intended subgraph (Figure 6), verified against the reference matcher;
5. substitutes the predicates' property accesses with distinguishing nested
   expressions (§3.5 / Algorithm 2).

The resulting clause matches exactly one assignment — the invariant the
ground-truth bookkeeping relies on.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.expressions import ExpressionFactory
from repro.cypher import ast
from repro.engine.matcher import Matcher
from repro.graph.model import Node, PropertyGraph, Relationship

__all__ = ["GraphPath", "SynthesizedMatch", "PatternBuilder"]

Element = Tuple[str, int]  # ("node"|"rel", id)


@dataclass
class GraphPath:
    """A concrete path: node ids joined by (relationship id, forward?) hops.

    ``forward=True`` means the relationship's start is the left node of the
    hop.  Paths always align with the graph, which keeps every mutated
    pattern satisfiable (§3.4: "the mutated patterns … naturally retain
    alignment to the graph").
    """

    node_ids: List[int]
    rels: List[Tuple[int, bool]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.node_ids) != len(self.rels) + 1:
            raise ValueError("path arity mismatch")

    def __len__(self) -> int:
        return len(self.rels)

    def rel_ids(self) -> Set[int]:
        return {rel_id for rel_id, _forward in self.rels}

    def elements(self) -> List[Element]:
        out: List[Element] = [("node", self.node_ids[0])]
        for index, (rel_id, _forward) in enumerate(self.rels):
            out.append(("rel", rel_id))
            out.append(("node", self.node_ids[index + 1]))
        return out

    def reverse(self) -> "GraphPath":
        return GraphPath(
            list(reversed(self.node_ids)),
            [(rel_id, not forward) for rel_id, forward in reversed(self.rels)],
        )

    def split_at(self, node_index: int) -> Tuple["GraphPath", "GraphPath"]:
        """Split into two paths sharing node ``node_index``."""
        left = GraphPath(self.node_ids[: node_index + 1], self.rels[:node_index])
        right = GraphPath(self.node_ids[node_index:], self.rels[node_index:])
        return left, right

    def concat(self, other: "GraphPath") -> "GraphPath":
        """Join two paths where self ends at other's first node."""
        if self.node_ids[-1] != other.node_ids[0]:
            raise ValueError("paths do not share an endpoint")
        return GraphPath(
            self.node_ids + other.node_ids[1:], self.rels + other.rels
        )


@dataclass
class SynthesizedMatch:
    """The output of one MATCH synthesis step."""

    patterns: Tuple[ast.PathPattern, ...]
    where: Optional[ast.Expression]
    bindings: Dict[str, Any]          # every pattern variable -> graph element
    new_variables: List[str]          # variables not previously in scope
    paths: List[GraphPath]            # for future mutations
    pin_count: int = 0                # predicates added for uniqueness


class PatternBuilder:
    """Builds uniquely-matching, mutation-rich MATCH clauses."""

    def __init__(
        self,
        graph: PropertyGraph,
        rng: random.Random,
        expressions: Optional[ExpressionFactory] = None,
        id_property: str = "id",
        max_hops: int = 3,
        obfuscation_depth: int = 3,
        label_probability: float = 0.5,
        undirected_probability: float = 0.3,
        mutation_probability: float = 0.85,
        extra_predicate_probability: float = 0.5,
        split_probability: float = 0.65,
    ):
        self.graph = graph
        self.rng = rng
        self.expressions = expressions or ExpressionFactory(graph, rng)
        self.id_property = id_property
        self.max_hops = max_hops
        self.obfuscation_depth = obfuscation_depth
        self.label_probability = label_probability
        self.undirected_probability = undirected_probability
        self.mutation_probability = mutation_probability
        self.extra_predicate_probability = extra_predicate_probability
        self.split_probability = split_probability
        self._matcher = Matcher(graph, enforce_rel_uniqueness=True)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def build_match(
        self,
        introduce: Sequence[Tuple[str, Element]],
        scope: Dict[str, Any],
        previous_paths: Sequence[GraphPath],
        helper_start: int = 0,
        add_uniqueness_predicates: bool = False,
    ) -> SynthesizedMatch:
        """Synthesize patterns introducing *introduce*, referencing *scope*.

        ``introduce`` maps planned variables to graph elements; ``scope``
        maps in-scope variables to their bound elements (nodes/relationships
        only).  ``add_uniqueness_predicates`` emits explicit ``r1 <> r2``
        terms for dialects that do not enforce relationship uniqueness (§4).
        """
        rng = self.rng
        planned: Dict[Element, str] = {elem: var for var, elem in introduce}
        scope_elements: Dict[Element, str] = {}
        for var, value in scope.items():
            if isinstance(value, Node):
                scope_elements.setdefault(("node", value.id), var)
            elif isinstance(value, Relationship):
                scope_elements.setdefault(("rel", value.id), var)

        # 1-2. Base paths + mutations.
        paths = self._collect_paths(list(planned), previous_paths)
        # Split long paths at interior nodes into comma patterns sharing a
        # variable (the §3.4 cross-mutation encoding).  Semantics are
        # unchanged — the shared variable joins the subpatterns — but the
        # query exercises a different planner path.
        paths = self._split_paths(paths)

        # 3. Variable assignment & encoding.
        bindings: Dict[str, Any] = {}
        new_variables: List[str] = []
        helper_counter = itertools.count(helper_start)
        element_to_var: Dict[Element, str] = {}

        def assign_var(element: Element) -> str:
            if element in element_to_var:
                return element_to_var[element]
            # Planned variables take priority: an element that is already in
            # scope under another name must still be introduced under its
            # planned variable (the pin predicates keep the match unique).
            if element in planned:
                var = planned[element]
            elif element in scope_elements:
                var = scope_elements[element]
            else:
                prefix = "m" if element[0] == "node" else "e"
                var = f"{prefix}{next(helper_counter)}"
            element_to_var[element] = var
            if var not in scope:
                new_variables.append(var)
            value = (
                self.graph.node(element[1])
                if element[0] == "node"
                else self.graph.relationship(element[1])
            )
            bindings[var] = value
            return var

        patterns = tuple(self._encode_path(path, assign_var) for path in paths)

        # 4. Disambiguating predicates (Figure 6).
        where_terms: List[ast.Expression] = []
        if add_uniqueness_predicates:
            where_terms.extend(self._uniqueness_terms(patterns))
        pin_count = self._pin_to_unique(
            patterns, scope, bindings, element_to_var, where_terms
        )

        # Extra, truthful predicates for additional complexity.  Predicates
        # over variables bound in *earlier* clauses create exactly the
        # cross-clause data dependencies §3.3 aims for.
        for var, value in list(bindings.items()):
            probability = self.extra_predicate_probability
            if var in scope:
                probability *= 1.5
            if rng.random() < probability:
                term = self._truthful_predicate(var, value)
                if term is not None:
                    where_terms.append(term)

        where = _conjoin(where_terms)
        return SynthesizedMatch(
            patterns=patterns,
            where=where,
            bindings=bindings,
            new_variables=new_variables,
            paths=paths,
            pin_count=pin_count,
        )

    # ------------------------------------------------------------------
    # Path collection and mutation
    # ------------------------------------------------------------------

    def _collect_paths(
        self,
        elements: List[Element],
        previous_paths: Sequence[GraphPath],
    ) -> List[GraphPath]:
        rng = self.rng
        used_rels: Set[int] = set()
        paths: List[GraphPath] = []
        covered: Set[Element] = set()

        for element in elements:
            if element in covered:
                continue
            base = self._base_path(element, used_rels)
            if base is None:
                continue
            mutated = base
            if previous_paths and rng.random() < self.mutation_probability:
                candidate = self._mutate(base, previous_paths, used_rels)
                if candidate is not None:
                    mutated = candidate
            if isinstance(mutated, list):
                accepted = mutated
            else:
                accepted = [mutated]
            for path in accepted:
                used_rels.update(path.rel_ids())
                covered.update(path.elements())
                paths.append(path)

        # An element can remain uncovered only when it has no usable path
        # (e.g. an isolated node): fall back to a singleton pattern.
        for element in elements:
            if element not in covered:
                if element[0] == "node":
                    paths.append(GraphPath([element[1]]))
                    covered.add(element)
                else:
                    rel = self.graph.relationship(element[1])
                    if rel.id not in used_rels:
                        path = GraphPath([rel.start, rel.end], [(rel.id, True)])
                        used_rels.add(rel.id)
                        paths.append(path)
                        covered.update(path.elements())
        return paths

    def _split_paths(self, paths: List[GraphPath]) -> List[GraphPath]:
        """Randomly split multi-hop paths at interior nodes."""
        out: List[GraphPath] = []
        queue = list(paths)
        while queue:
            path = queue.pop()
            if len(path) >= 2 and self.rng.random() < self.split_probability:
                split_index = self.rng.randint(1, len(path) - 1)
                left, right = path.split_at(split_index)
                queue.append(left)
                queue.append(right)
            else:
                out.append(path)
        return out

    def _base_path(self, element: Element, used_rels: Set[int]) -> Optional[GraphPath]:
        """A short random walk through the graph containing *element*."""
        rng = self.rng
        if element[0] == "node":
            path = GraphPath([element[1]])
        else:
            rel = self.graph.relationship(element[1])
            if rel.id in used_rels:
                return None
            path = GraphPath([rel.start, rel.end], [(rel.id, True)])

        for _ in range(rng.randint(0, self.max_hops)):
            extended = self._extend_once(path, used_rels | path.rel_ids())
            if extended is None:
                break
            path = extended
        return path

    def _extend_once(
        self, path: GraphPath, blocked: Set[int]
    ) -> Optional[GraphPath]:
        """Append one hop at a random end of the path."""
        rng = self.rng
        at_end = rng.random() < 0.5
        anchor = path.node_ids[-1] if at_end else path.node_ids[0]
        candidates = [
            rel for rel in self.graph.touching(anchor) if rel.id not in blocked
        ]
        if not candidates:
            return None
        rel = rng.choice(candidates)
        far = rel.other_end(anchor)
        forward_from_anchor = rel.start == anchor
        if at_end:
            return GraphPath(
                path.node_ids + [far], path.rels + [(rel.id, forward_from_anchor)]
            )
        return GraphPath(
            [far] + path.node_ids, [(rel.id, not forward_from_anchor)] + path.rels
        )

    def _mutate(
        self,
        base: GraphPath,
        previous_paths: Sequence[GraphPath],
        used_rels: Set[int],
    ):
        """Apply one of the three §3.4 strategies against a previous path."""
        rng = self.rng
        candidates = list(previous_paths)
        rng.shuffle(candidates)
        for previous in candidates:
            if previous.rel_ids() & (used_rels | base.rel_ids()):
                continue  # would duplicate a relationship within this MATCH
            shared = self._shared_nodes(base, previous)
            if not shared:
                continue
            node_id = rng.choice(shared)
            base_pos = base.node_ids.index(node_id)
            prev_pos = previous.node_ids.index(node_id)
            base_at_end = base_pos in (0, len(base.node_ids) - 1)
            prev_at_end = prev_pos in (0, len(previous.node_ids) - 1)

            if base_at_end and prev_at_end:
                # Strategy 1: concatenation.
                left = base if base_pos == len(base.node_ids) - 1 else base.reverse()
                right = previous if prev_pos == 0 else previous.reverse()
                return left.concat(right)
            if base_at_end != prev_at_end:
                # Strategy 2: branching — two linear patterns sharing the node.
                if base_at_end:
                    trunk, branch_source, split_pos = previous, base, prev_pos
                else:
                    trunk, branch_source, split_pos = base, previous, base_pos
                branch = (
                    branch_source
                    if branch_source.node_ids[0] == node_id
                    else branch_source.reverse()
                )
                return [trunk, branch]
            # Strategy 3: cross — split both at the shared node and recombine.
            base_left, base_right = base.split_at(base_pos)
            prev_left, prev_right = previous.split_at(prev_pos)
            halves = [base_left.reverse(), base_right, prev_left.reverse(), prev_right]
            halves = [half for half in halves if len(half) > 0]
            rng.shuffle(halves)
            combined: List[GraphPath] = []
            while halves:
                first = halves.pop()
                if halves:
                    second = halves.pop()
                    combined.append(first.reverse().concat(second))
                else:
                    combined.append(first)
            return combined
        return None

    @staticmethod
    def _shared_nodes(a: GraphPath, b: GraphPath) -> List[int]:
        seen = set(a.node_ids)
        return [node_id for node_id in b.node_ids if node_id in seen]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _encode_path(self, path: GraphPath, assign_var) -> ast.PathPattern:
        rng = self.rng
        nodes: List[ast.NodePattern] = []
        for node_id in path.node_ids:
            var = assign_var(("node", node_id))
            labels: Tuple[str, ...] = ()
            node = self.graph.node(node_id)
            if node.labels and rng.random() < self.label_probability:
                count = rng.randint(1, min(2, len(node.labels)))
                labels = tuple(rng.sample(sorted(node.labels), count))
            nodes.append(ast.NodePattern(var, labels))

        rels: List[ast.RelationshipPattern] = []
        for rel_id, forward in path.rels:
            var = assign_var(("rel", rel_id))
            rel = self.graph.relationship(rel_id)
            types: Tuple[str, ...] = ()
            if rng.random() < self.label_probability:
                types = (rel.type,)
            if rng.random() < self.undirected_probability:
                direction = ast.BOTH
            else:
                direction = ast.OUT if forward else ast.IN
            rels.append(ast.RelationshipPattern(var, types, direction))
        return ast.PathPattern(tuple(nodes), tuple(rels))

    # ------------------------------------------------------------------
    # Disambiguation (Figure 6) and predicate complexification
    # ------------------------------------------------------------------

    def _pin_to_unique(
        self,
        patterns: Tuple[ast.PathPattern, ...],
        scope: Dict[str, Any],
        bindings: Dict[str, Any],
        element_to_var: Dict[Element, str],
        where_terms: List[ast.Expression],
        match_budget: int = 64,
    ) -> int:
        """Add pin predicates until the patterns match exactly one subgraph."""
        row = {
            var: value
            for var, value in scope.items()
            if isinstance(value, (Node, Relationship))
        }
        pinned: Set[str] = set()
        pin_count = 0

        while True:
            matches = list(
                itertools.islice(self._matcher.match(patterns, row), match_budget)
            )
            ambiguous = self._ambiguous_variable(matches, bindings, pinned)
            if ambiguous is None:
                break
            where_terms.append(self._pin_predicate(ambiguous, bindings[ambiguous]))
            pinned.add(ambiguous)
            pin_count += 1
            # Apply the pin by binding the variable directly for the next
            # matcher round (equivalent to the predicate, but cheaper).
            row[ambiguous] = bindings[ambiguous]
        return pin_count

    def _ambiguous_variable(
        self,
        matches: List[Dict[str, Any]],
        bindings: Dict[str, Any],
        pinned: Set[str],
    ) -> Optional[str]:
        """A variable whose assignment differs across matches, if any."""
        if len(matches) <= 1 and matches:
            # Single match: confirm it is the intended one; if not, pin the
            # first deviating variable.
            for var, intended in bindings.items():
                actual = matches[0].get(var)
                if actual is None or actual.id != intended.id or type(actual) is not type(intended):
                    if var not in pinned:
                        return var
            return None
        if not matches:
            # The intended assignment exists by construction, so an empty
            # match list can only mean the budget interplay removed it;
            # pin everything remaining to converge.
            for var in bindings:
                if var not in pinned:
                    return var
            return None
        for var, intended in bindings.items():
            if var in pinned:
                continue
            for match in matches:
                actual = match.get(var)
                if actual is None or actual.id != intended.id:
                    return var
        # All variables agree across every match — duplicates are identical.
        return None

    def _draw_depth(self) -> int:
        """A random nesting depth; zero when nesting is disabled."""
        if self.obfuscation_depth < 1:
            return 0
        return self.rng.randint(1, self.obfuscation_depth)

    def _pin_predicate(self, var: str, element: Any) -> ast.Expression:
        """``var.id = <id>``, optionally obfuscated with Algorithm 2."""
        rng = self.rng
        id_value = element.properties.get(self.id_property)
        if id_value is None:
            raise ValueError(
                f"element {element!r} lacks the {self.id_property!r} property "
                f"required for pin predicates"
            )
        access: ast.Expression = ast.PropertyAccess(
            ast.Variable(var), self.id_property
        )
        if isinstance(element, Node):
            competitors = [
                node.properties.get(self.id_property)
                for node in self.graph.nodes()
                if node.id != element.id
            ]
        else:
            competitors = [
                rel.properties.get(self.id_property)
                for rel in self.graph.relationships()
                if rel.id != element.id
            ]
        competitors = [value for value in competitors if value is not None]

        expected = id_value
        if rng.random() < 0.7:
            access, expected = self.expressions.obfuscate_property_access(
                access, id_value, competitors, self._draw_depth()
            )
        rhs = self.expressions.constant_expression(
            expected, rng.randint(0, self.obfuscation_depth)
        )
        return ast.Binary("=", access, rhs)

    def _truthful_predicate(self, var: str, element: Any) -> Optional[ast.Expression]:
        """A predicate over *var* that is true for its intended binding."""
        rng = self.rng
        from repro.graph import values as V

        names = [
            name
            for name, value in element.properties.items()
            if V.ternary_equals(value, value) is True
        ]
        if not names:
            return None
        name = rng.choice(names)
        value = element.properties[name]
        access: ast.Expression = ast.PropertyAccess(ast.Variable(var), name)

        if isinstance(element, Node):
            pool = [
                node.properties.get(name)
                for node in self.graph.nodes()
                if node.id != element.id
            ]
        else:
            pool = [
                rel.properties.get(name)
                for rel in self.graph.relationships()
                if rel.id != element.id
            ]
        pool = [item for item in pool if item is not None]

        expected = value
        if rng.random() < 0.5:
            access, expected = self.expressions.obfuscate_property_access(
                access, value, pool, self._draw_depth()
            )

        # Either an equality or (for comparable types) a true inequality.
        if isinstance(expected, (int, float)) and not isinstance(expected, bool) \
                and rng.random() < 0.4:
            op = rng.choice(["<=", ">="])
            slack = rng.randint(0, 100)
            bound = expected + slack if op == "<=" else expected - slack
            rhs = self.expressions.constant_expression(
                bound, rng.randint(0, self.obfuscation_depth)
            )
            return ast.Binary(op, access, rhs)
        if isinstance(expected, str) and rng.random() < 0.4:
            op = rng.choice(["STARTS WITH", "ENDS WITH", "CONTAINS"])
            if op == "STARTS WITH":
                fragment = expected[: rng.randint(0, len(expected))]
            elif op == "ENDS WITH":
                fragment = expected[len(expected) - rng.randint(0, len(expected)):]
            else:
                if expected:
                    start = rng.randrange(len(expected) + 1)
                    end = rng.randint(start, len(expected))
                    fragment = expected[start:end]
                else:
                    fragment = ""
            return ast.Binary(op, access, ast.Literal(fragment))
        rhs = self.expressions.constant_expression(
            expected, rng.randint(0, self.obfuscation_depth)
        )
        return ast.Binary("=", access, rhs)

    def _uniqueness_terms(
        self, patterns: Tuple[ast.PathPattern, ...]
    ) -> List[ast.Expression]:
        """``r1 <> r2`` predicates for dialects without rel uniqueness (§4)."""
        rel_vars: List[str] = []
        for pattern in patterns:
            for rel in pattern.relationships:
                if rel.variable:
                    rel_vars.append(rel.variable)
        terms: List[ast.Expression] = []
        for left, right in itertools.combinations(sorted(set(rel_vars)), 2):
            terms.append(
                ast.Binary("<>", ast.Variable(left), ast.Variable(right))
            )
        return terms


def _conjoin(terms: List[ast.Expression]) -> Optional[ast.Expression]:
    """AND-join predicate terms as a balanced tree, or None when empty.

    Balancing keeps the conjunction's contribution to expression depth
    logarithmic in the number of terms, so the nesting-depth metric reflects
    the deliberately nested sub-expressions rather than predicate count.
    """
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    middle = len(terms) // 2
    return ast.Binary(
        "AND", _conjoin(terms[:middle]), _conjoin(terms[middle:])
    )
