"""Operation scheduling across synthesis steps (paper §3.3, Algorithm 1).

The scheduler consumes the constraint DAG and assigns operations to steps:
repeatedly scan the remaining operations, pick zero-indegree operations whose
clause type aligns with the current step (random inclusion), then consider
their weakly-related successors for co-location (Algorithm 1 lines 7-11).
Every step also records the referenceable variables available to later steps
(Algorithm 1 line 14).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.core.operations import ConstraintGraph, OpKind, Operation

__all__ = ["ScheduledStep", "schedule"]


@dataclass
class ScheduledStep:
    """One synthesis step: its operations, clause family, and Var[i]."""

    operations: List[Operation]
    clause_kinds: FrozenSet[str]
    referenceable: List[str] = field(default_factory=list)

    def ops_of_kind(self, kind: str) -> List[Operation]:
        return [op for op in self.operations if op.kind == kind]


def _align(current: Optional[FrozenSet[str]], op: Operation) -> Optional[FrozenSet[str]]:
    """Intersection of clause families; None if incompatible."""
    if current is None:
        return op.clause_kinds
    merged = current & op.clause_kinds
    return merged if merged else None


def schedule(
    graph: ConstraintGraph,
    rng: random.Random,
    include_probability: float = 0.6,
) -> List[ScheduledStep]:
    """Run Algorithm 1: distribute all operations over steps.

    ``include_probability`` is the rand() gate of line 5; lower values
    spread operations over more steps (more clauses in the final query).
    The procedure always makes progress: if a pass selects nothing, the
    first eligible operation is forced in.
    """
    steps: List[ScheduledStep] = []
    referenceable: List[str] = []

    while len(graph) > 0:
        step_ops: List[Operation] = []
        step_kinds: Optional[FrozenSet[str]] = None

        for op in list(graph.operations):
            if op in step_ops:
                continue
            if graph.indegree(op) != 0:
                continue
            merged = _align(step_kinds, op)
            if merged is None:
                continue
            if rng.random() >= include_probability:
                continue
            step_ops.append(op)
            step_kinds = merged
            # Algorithm 1 lines 7-11: weakly-related successors may share
            # the step when this op is their only remaining predecessor.
            for weak in graph.weak_related[op]:
                if weak in step_ops:
                    continue
                # Algorithm 1 requires deg-(o') = 1 with o as the sole
                # remaining predecessor; we accept the slight generalization
                # where every predecessor is already in this step *and*
                # relates weakly (a strict predecessor forbids sharing).
                predecessors = graph.predecessors(weak)
                if predecessors - set(step_ops):
                    continue
                if any(weak not in graph.weak_related[pred] for pred in predecessors):
                    continue
                merged_weak = _align(step_kinds, weak)
                if merged_weak is None:
                    continue
                if rng.random() >= include_probability:
                    continue
                step_ops.append(weak)
                step_kinds = merged_weak

        if not step_ops:
            # Force progress deterministically.
            for op in graph.operations:
                if graph.indegree(op) == 0:
                    step_ops.append(op)
                    step_kinds = op.clause_kinds
                    break
            else:  # pragma: no cover - validate_acyclic prevents this
                raise RuntimeError("constraint graph is stuck (cycle?)")

        # Var[i] = ref_vars(Var[i-1], Step[i]): add introduced variables,
        # drop removed ones.
        introduced = [
            op.variable
            for op in step_ops
            if op.kind
            in (OpKind.ELEMENT_ADD, OpKind.ALIAS_ADD, OpKind.LIST_EXPAND, OpKind.PROP_ACCESS)
        ]
        removed = {
            op.variable
            for op in step_ops
            if op.kind
            in (OpKind.ELEMENT_REMOVE, OpKind.ALIAS_REMOVE, OpKind.LIST_TRUNCATE)
        }
        referenceable = [
            name for name in referenceable if name not in removed
        ] + [name for name in introduced if name not in removed]

        graph.remove(step_ops)
        steps.append(
            ScheduledStep(
                operations=step_ops,
                clause_kinds=step_kinds or frozenset(),
                referenceable=list(referenceable),
            )
        )

    return steps
