"""The GQS testing loop (paper §3.1 workflow, steps 1-4, iterated).

One iteration: generate a random graph, load it into the GDB under test
(with a restart, for reproducibility), select an expected result set,
synthesize a query, execute it, and compare against the ground truth.
Subsequent iterations randomly either synthesize another query for the same
ground truth, select a new ground truth over the same graph, or start over
with a fresh graph — exactly the three continuation choices the paper
describes.

Campaigns run against a simulated wall clock driven by the engines' cost
model, which is how the 24-hour experiments (§5.4.4) are reproduced without
24 real hours.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.ground_truth import select_ground_truth
from repro.core.oracle import check_result
from repro.core.synthesizer import QuerySynthesizer, SynthesizerConfig
from repro.cypher.analysis import analyze, clause_types_in
from repro.cypher.printer import print_query
from repro.engine.errors import CypherError, DatabaseCrash, ResourceExhausted
from repro.gdb.engines import GraphDatabase
from repro.graph.generator import GeneratorConfig, GraphGenerator

__all__ = ["BugReport", "CampaignResult", "GQSTester", "synthesizer_config_for"]


@dataclass
class BugReport:
    """One reported discrepancy (or crash/hang/exception)."""

    tester: str
    engine: str
    kind: str                  # "logic" | "error"
    detail: str
    query_text: str
    fault_id: Optional[str]    # white-box accounting; None => false positive
    sim_time: float
    n_steps: int = 0

    @property
    def is_false_positive(self) -> bool:
        return self.fault_id is None


@dataclass
class CampaignResult:
    """Aggregated outcome of one testing campaign."""

    tester: str
    engine: str
    queries_run: int = 0
    sim_seconds: float = 0.0
    reports: List[BugReport] = field(default_factory=list)
    timeline: List[Tuple[float, str]] = field(default_factory=list)
    # Per bug-triggering query metadata, for the §5.3 analyses.
    trigger_records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def detected_faults(self) -> List[str]:
        seen: List[str] = []
        for report in self.reports:
            if report.fault_id and report.fault_id not in seen:
                seen.append(report.fault_id)
        return seen

    @property
    def false_positive_count(self) -> int:
        return sum(1 for report in self.reports if report.is_false_positive)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult(self.tester, f"{self.engine}+{other.engine}")
        merged.queries_run = self.queries_run + other.queries_run
        merged.sim_seconds = max(self.sim_seconds, other.sim_seconds)
        merged.reports = self.reports + other.reports
        merged.timeline = sorted(self.timeline + other.timeline)
        merged.trigger_records = self.trigger_records + other.trigger_records
        return merged


def synthesizer_config_for(engine: GraphDatabase, **overrides) -> SynthesizerConfig:
    """Dialect-aware synthesizer configuration (paper §4)."""
    config = SynthesizerConfig(
        supports_call_procedures=engine.dialect.supports_call_procedures,
        needs_uniqueness_predicates=not engine.dialect.enforces_rel_uniqueness,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class GQSTester:
    """The GQS approach packaged as a campaign-running tester."""

    name = "GQS"

    def __init__(
        self,
        generator_config: Optional[GeneratorConfig] = None,
        synthesizer_overrides: Optional[Dict[str, Any]] = None,
        queries_per_ground_truth: int = 4,
        ground_truths_per_graph: int = 3,
    ):
        self.generator_config = generator_config or GeneratorConfig()
        self.synthesizer_overrides = synthesizer_overrides or {}
        self.queries_per_ground_truth = queries_per_ground_truth
        self.ground_truths_per_graph = ground_truths_per_graph

    def run(
        self,
        engine: GraphDatabase,
        budget_seconds: float,
        seed: int = 0,
        max_queries: Optional[int] = None,
    ) -> CampaignResult:
        """Run a (simulated-time-budgeted) GQS campaign against *engine*."""
        rng = random.Random(seed)
        result = CampaignResult(self.name, engine.name)
        config = synthesizer_config_for(engine, **self.synthesizer_overrides)
        seen_faults: set = set()

        while result.sim_seconds < budget_seconds:
            if max_queries is not None and result.queries_run >= max_queries:
                break
            # Step 1: initialization — a fresh random graph, engine restart.
            generator = GraphGenerator(
                seed=rng.randrange(2**32), config=self.generator_config
            )
            schema, graph = generator.generate_with_schema()
            engine.load_graph(graph, schema, restart=True)
            synthesizer = QuerySynthesizer(graph, rng=rng, config=config)

            for _gt in range(rng.randint(1, self.ground_truths_per_graph)):
                # Step 2: establish the ground truth.
                ground_truth = select_ground_truth(
                    graph, rng, synthesizer.config.max_ground_truth
                )
                for _q in range(rng.randint(1, self.queries_per_ground_truth)):
                    if result.sim_seconds >= budget_seconds:
                        break
                    if max_queries is not None and result.queries_run >= max_queries:
                        break
                    # Step 3: synthesize a query for this ground truth.
                    synthesis = synthesizer.synthesize(ground_truth)
                    self._run_one(engine, synthesis, result, seen_faults, graph)
                    if engine.crashed:
                        engine.restart()
                        engine.load_graph(graph, schema, restart=True)
        return result

    # -- single test execution -------------------------------------------

    def _run_one(self, engine, synthesis, result, seen_faults, graph=None) -> None:
        query_text = print_query(synthesis.query)
        result.queries_run += 1
        result.sim_seconds += engine.cost_of(synthesis.query)

        report: Optional[BugReport] = None
        try:
            actual = engine.execute(synthesis.query)
        except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
            # Step 4 (error case): crashes/hangs/exceptions are detected at
            # no extra oracle cost.
            fault = engine.last_fired_fault
            report = BugReport(
                tester=self.name,
                engine=engine.name,
                kind="error",
                detail=f"{type(exc).__name__}: {exc}",
                query_text=query_text,
                fault_id=fault.fault_id if fault else None,
                sim_time=result.sim_seconds,
                n_steps=synthesis.n_steps,
            )
        else:
            # Step 4: validate against the ground truth.
            verdict = check_result(synthesis.expected, actual)
            if not verdict.passed:
                fault = engine.last_fired_fault
                report = BugReport(
                    tester=self.name,
                    engine=engine.name,
                    kind="logic",
                    detail=verdict.reason,
                    query_text=query_text,
                    fault_id=fault.fault_id if fault else None,
                    sim_time=result.sim_seconds,
                    n_steps=synthesis.n_steps,
                )

        if report is None:
            return
        result.reports.append(report)
        if report.fault_id and report.fault_id not in seen_faults:
            seen_faults.add(report.fault_id)
            result.timeline.append((report.sim_time, report.fault_id))
            metrics = analyze(synthesis.query)
            result.trigger_records.append(
                {
                    "fault_id": report.fault_id,
                    "engine": engine.name,
                    "query_text": query_text,
                    "n_steps": synthesis.n_steps,
                    "patterns": metrics.patterns,
                    "depth": metrics.expression_depth,
                    "clauses": metrics.clauses,
                    "dependencies": metrics.dependencies,
                    "clause_names": clause_types_in(synthesis.query),
                    "kind": report.kind,
                    # §5.1: the paper observes all bugs trigger on small
                    # graphs and small expected result sets.
                    "graph_nodes": graph.node_count if graph else None,
                    "graph_relationships": (
                        graph.relationship_count if graph else None
                    ),
                    "ground_truth_size": len(synthesis.ground_truth),
                }
            )
