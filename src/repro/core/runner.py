"""The GQS tester (paper §3.1 workflow, steps 1-4, iterated).

One iteration: generate a random graph, load it into the GDB under test
(with a restart, for reproducibility), select an expected result set,
synthesize a query, execute it, and compare against the ground truth.
Subsequent iterations randomly either synthesize another query for the same
ground truth, select a new ground truth over the same graph, or start over
with a fresh graph — exactly the three continuation choices the paper
describes.

The campaign loop itself lives in :class:`repro.runtime.CampaignKernel`;
this module contributes GQS's side of the :class:`TesterProtocol`: the
restart-per-graph session policy, the ground-truth-driven proposal stream,
and the zero-false-positive oracle judgement.  ``BugReport`` and
``CampaignResult`` are re-exported from :mod:`repro.runtime.results` for
backwards compatibility.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, Optional

from repro.core.ground_truth import select_ground_truth
from repro.core.oracle import check_result
from repro.core.synthesizer import QuerySynthesizer, SynthesizerConfig
from repro.cypher.analysis import analyze, clause_types_in
from repro.cypher.printer import print_query
from repro.engine.errors import CypherError, DatabaseCrash, ResourceExhausted
from repro.gdb.engines import GraphDatabase
from repro.graph.generator import GeneratorConfig
from repro.runtime.protocol import Judgement, SessionPolicy, TesterProtocol
from repro.runtime.results import BugReport, CampaignResult

__all__ = ["BugReport", "CampaignResult", "GQSTester", "synthesizer_config_for"]


def synthesizer_config_for(engine: GraphDatabase, **overrides) -> SynthesizerConfig:
    """Dialect-aware synthesizer configuration (paper §4)."""
    config = SynthesizerConfig(
        supports_call_procedures=engine.dialect.supports_call_procedures,
        needs_uniqueness_predicates=not engine.dialect.enforces_rel_uniqueness,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class GQSTester(TesterProtocol):
    """The GQS approach packaged as a campaign-running tester."""

    name = "GQS"
    # Restart per graph: reproducible instances, at the cost of never
    # reaching the long-session accumulation crashes (§5.4.4).
    session = SessionPolicy.restart_each_graph()

    def __init__(
        self,
        generator_config: Optional[GeneratorConfig] = None,
        synthesizer_overrides: Optional[Dict[str, Any]] = None,
        queries_per_ground_truth: int = 4,
        ground_truths_per_graph: int = 3,
    ):
        self.generator_config = generator_config or GeneratorConfig()
        self._base_generator_config = self.generator_config
        self.synthesizer_overrides = synthesizer_overrides or {}
        self.queries_per_ground_truth = queries_per_ground_truth
        self.ground_truths_per_graph = ground_truths_per_graph
        self._synthesizer_config: Optional[SynthesizerConfig] = None
        self._weights = None

    # -- TesterProtocol ---------------------------------------------------

    def campaign_begin(self, engine: GraphDatabase, rng: random.Random) -> None:
        self._synthesizer_config = synthesizer_config_for(
            engine, **self.synthesizer_overrides
        )

    def apply_weights(self, weights) -> None:
        """Adopt a policy-issued weight profile for the next graph round.

        Graph-shape bumps rewrite ``generator_config`` from the declared
        base (profiles replace, never stack); synthesizer knobs are applied
        per-round inside :meth:`proposals` so the dialect-aware base config
        from :meth:`campaign_begin` stays pristine.
        """
        self._weights = weights
        self.generator_config = weights.apply_generator(
            self._base_generator_config
        )

    def proposals(
        self, engine: GraphDatabase, graph, schema, rng: random.Random
    ) -> Iterator[Any]:
        """Step 2 + 3: ground truths over this graph, then queries for each."""
        synthesizer = QuerySynthesizer(
            graph, rng=rng, config=self._synthesizer_config,
            weights=self._weights,
        )
        for _gt in range(rng.randint(1, self.ground_truths_per_graph)):
            ground_truth = select_ground_truth(
                graph, rng, synthesizer.config.max_ground_truth
            )
            for _q in range(rng.randint(1, self.queries_per_ground_truth)):
                yield synthesizer.synthesize(ground_truth)

    def judge(
        self,
        engine: GraphDatabase,
        synthesis,
        graph,
        rng: random.Random,
        result: CampaignResult,
    ) -> Judgement:
        """Step 4: execute and validate against the established ground truth."""
        query_text = print_query(synthesis.query)
        result.sim_seconds += engine.cost_of(synthesis.query)

        report: Optional[BugReport] = None
        try:
            actual = engine.execute(synthesis.query)
        except (DatabaseCrash, ResourceExhausted, CypherError) as exc:
            # Step 4 (error case): crashes/hangs/exceptions are detected at
            # no extra oracle cost.
            fault = engine.last_fired_fault
            report = BugReport(
                tester=self.name,
                engine=engine.name,
                kind="error",
                detail=f"{type(exc).__name__}: {exc}",
                query_text=query_text,
                fault_id=fault.fault_id if fault else None,
                sim_time=result.sim_seconds,
                n_steps=synthesis.n_steps,
            )
        else:
            verdict = check_result(synthesis.expected, actual)
            if not verdict.passed:
                fault = engine.last_fired_fault
                report = BugReport(
                    tester=self.name,
                    engine=engine.name,
                    kind="logic",
                    detail=verdict.reason,
                    query_text=query_text,
                    fault_id=fault.fault_id if fault else None,
                    sim_time=result.sim_seconds,
                    n_steps=synthesis.n_steps,
                )

        if report is None:
            return Judgement()

        def make_trigger_record() -> Dict[str, Any]:
            metrics = analyze(synthesis.query)
            return {
                "fault_id": report.fault_id,
                "engine": engine.name,
                "query_text": query_text,
                "n_steps": synthesis.n_steps,
                "patterns": metrics.patterns,
                "depth": metrics.expression_depth,
                "clauses": metrics.clauses,
                "dependencies": metrics.dependencies,
                "clause_names": clause_types_in(synthesis.query),
                "kind": report.kind,
                # §5.1: the paper observes all bugs trigger on small
                # graphs and small expected result sets.
                "graph_nodes": graph.node_count if graph else None,
                "graph_relationships": (
                    graph.relationship_count if graph else None
                ),
                "ground_truth_size": len(synthesis.ground_truth),
            }

        return Judgement(report=report, trigger_record=make_trigger_record)
