"""Campaign persistence: bug reports, campaign results, event streams.

The paper's artifact ships its bug reports (query, expected result, actual
result, affected engine) as the unit of communication with developers; this
module provides the same artifact as JSON, plus round-tripping so stored
campaigns can be re-analyzed (e.g. re-rendering the §5.3 figures without
re-running the campaign).

It also owns the JSONL serialization of the :mod:`repro.runtime` event
stream.  A grid run appends one ``cell_complete`` event (embedding the full
campaign via :func:`campaign_to_dict`) per finished (tester, engine, seed)
cell; :func:`completed_cells_from_events` recovers those checkpoints so an
interrupted grid resumes from the last completed cell.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.core.runner import BugReport, CampaignResult

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "campaign_to_dict",
    "campaign_from_dict",
    "save_campaign",
    "load_campaign",
    "event_to_json_line",
    "save_event_stream",
    "EventStream",
    "load_event_stream",
    "completed_cells_from_events",
]


def report_to_dict(report: BugReport) -> Dict[str, Any]:
    """JSON-ready representation of one bug report."""
    return {
        "tester": report.tester,
        "engine": report.engine,
        "kind": report.kind,
        "detail": report.detail,
        "query": report.query_text,
        "fault_id": report.fault_id,
        "sim_time": report.sim_time,
        "n_steps": report.n_steps,
    }


def report_from_dict(data: Dict[str, Any]) -> BugReport:
    return BugReport(
        tester=data["tester"],
        engine=data["engine"],
        kind=data["kind"],
        detail=data["detail"],
        query_text=data["query"],
        fault_id=data.get("fault_id"),
        sim_time=data.get("sim_time", 0.0),
        n_steps=data.get("n_steps", 0),
    )


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """JSON-ready representation of a full campaign."""
    return {
        "tester": result.tester,
        "engine": result.engine,
        "queries_run": result.queries_run,
        "sim_seconds": result.sim_seconds,
        "reports": [report_to_dict(report) for report in result.reports],
        "timeline": [[when, fault_id] for when, fault_id in result.timeline],
        "trigger_records": result.trigger_records,
        "harness_errors": result.harness_errors,
    }


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    result = CampaignResult(data["tester"], data["engine"])
    result.queries_run = data["queries_run"]
    result.sim_seconds = data["sim_seconds"]
    result.reports = [report_from_dict(item) for item in data["reports"]]
    result.timeline = [(when, fault_id) for when, fault_id in data["timeline"]]
    result.trigger_records = list(data.get("trigger_records", []))
    result.harness_errors = data.get("harness_errors", 0)
    return result


def save_campaign(result: CampaignResult, path: Union[str, Path]) -> None:
    """Write a campaign to *path* as JSON."""
    Path(path).write_text(
        json.dumps(campaign_to_dict(result), indent=2, sort_keys=True)
    )


def load_campaign(path: Union[str, Path]) -> CampaignResult:
    """Read a campaign previously written by :func:`save_campaign`."""
    return campaign_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Event streams (the repro.runtime JSONL checkpoint format)
# ---------------------------------------------------------------------------


def event_to_json_line(event: Dict[str, Any]) -> str:
    """One event as a single compact JSON line (no newline appended)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def save_event_stream(
    events: Iterable[Dict[str, Any]], path: Union[str, Path], append: bool = False
) -> None:
    """Write *events* to *path* as JSONL."""
    mode = "a" if append else "w"
    with Path(path).open(mode, encoding="utf-8") as handle:
        for event in events:
            handle.write(event_to_json_line(event) + "\n")


class EventStream(List[Dict[str, Any]]):
    """A loaded event list that also remembers how many lines were torn.

    Behaves exactly like the plain list every existing caller expects;
    ``skipped`` carries the count of undecodable (torn/truncated) lines and
    ``skipped_lines`` pins each one down (``{"offset": byte_offset,
    "length": bytes}``) so consumers such as ``repro stats`` can say *where*
    the log lost data instead of silently under-counting.
    """

    skipped: int = 0
    skipped_lines: List[Dict[str, int]] = []


def load_event_stream(path: Union[str, Path]) -> EventStream:
    """Read a JSONL event stream, skipping blank/truncated trailing lines.

    Tolerating a torn final line matters: resumable logs are written by
    runs that may be killed mid-write.  Every skipped line is recorded on
    the returned :class:`EventStream` with its byte offset and length
    (``.skipped_lines``); ``.skipped`` keeps the plain count.
    """
    events = EventStream()
    skipped_lines: List[Dict[str, int]] = []
    offset = 0
    lines = Path(path).read_bytes().split(b"\n")
    # A final line with no terminating newline is a write in progress (or
    # the stump of one killed mid-write): never parse it, even when it
    # happens to be complete JSON — the live follower buffers exactly the
    # same bytes, keeping loader and follower byte-for-byte in agreement.
    tail = lines.pop()
    for raw in lines:
        line = raw.strip()
        if line:
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                skipped_lines.append(
                    {"offset": offset, "length": len(raw)}
                )
        offset += len(raw) + 1
    if tail.strip():
        skipped_lines.append({"offset": offset, "length": len(tail)})
    events.skipped = len(skipped_lines)
    events.skipped_lines = skipped_lines
    return events


def completed_cells_from_events(
    events: Iterable[Dict[str, Any]],
) -> Dict[Tuple[str, str, int], CampaignResult]:
    """Recover checkpointed grid cells from an event stream.

    Returns ``{(tester, engine, seed): CampaignResult}`` for every
    ``cell_complete`` event (the last occurrence wins, so a log holding
    several partial runs resumes from the freshest checkpoint).
    """
    done: Dict[Tuple[str, str, int], CampaignResult] = {}
    for event in events:
        if event.get("event") != "cell_complete":
            continue
        key = (event["tester"], event["engine"], event["seed"])
        done[key] = campaign_from_dict(event["campaign"])
    return done
