"""Campaign persistence: serialize bug reports and campaign results.

The paper's artifact ships its bug reports (query, expected result, actual
result, affected engine) as the unit of communication with developers; this
module provides the same artifact as JSON, plus round-tripping so stored
campaigns can be re-analyzed (e.g. re-rendering the §5.3 figures without
re-running the campaign).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.runner import BugReport, CampaignResult

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "campaign_to_dict",
    "campaign_from_dict",
    "save_campaign",
    "load_campaign",
]


def report_to_dict(report: BugReport) -> Dict[str, Any]:
    """JSON-ready representation of one bug report."""
    return {
        "tester": report.tester,
        "engine": report.engine,
        "kind": report.kind,
        "detail": report.detail,
        "query": report.query_text,
        "fault_id": report.fault_id,
        "sim_time": report.sim_time,
        "n_steps": report.n_steps,
    }


def report_from_dict(data: Dict[str, Any]) -> BugReport:
    return BugReport(
        tester=data["tester"],
        engine=data["engine"],
        kind=data["kind"],
        detail=data["detail"],
        query_text=data["query"],
        fault_id=data.get("fault_id"),
        sim_time=data.get("sim_time", 0.0),
        n_steps=data.get("n_steps", 0),
    )


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """JSON-ready representation of a full campaign."""
    return {
        "tester": result.tester,
        "engine": result.engine,
        "queries_run": result.queries_run,
        "sim_seconds": result.sim_seconds,
        "reports": [report_to_dict(report) for report in result.reports],
        "timeline": [[when, fault_id] for when, fault_id in result.timeline],
        "trigger_records": result.trigger_records,
    }


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    result = CampaignResult(data["tester"], data["engine"])
    result.queries_run = data["queries_run"]
    result.sim_seconds = data["sim_seconds"]
    result.reports = [report_from_dict(item) for item in data["reports"]]
    result.timeline = [(when, fault_id) for when, fault_id in data["timeline"]]
    result.trigger_records = list(data.get("trigger_records", []))
    return result


def save_campaign(result: CampaignResult, path: Union[str, Path]) -> None:
    """Write a campaign to *path* as JSON."""
    Path(path).write_text(
        json.dumps(campaign_to_dict(result), indent=2, sort_keys=True)
    )


def load_campaign(path: Union[str, Path]) -> CampaignResult:
    """Read a campaign previously written by :func:`save_campaign`."""
    return campaign_from_dict(json.loads(Path(path).read_text()))
