"""Complex expression generation (paper §3.5).

Two generators live here:

* :meth:`ExpressionFactory.constant_expression` builds an arbitrarily nested
  expression that *evaluates to a given value* — the adaptation of GDsmith's
  value-constrained generation the paper describes ("convert the value
  constraint into respective sub-constraints for the parameters … repeat
  recursively").
* :meth:`ExpressionFactory.obfuscate_property_access` implements
  **Algorithm 2**: starting from a property access used in a disambiguating
  predicate, repeatedly wrap it in expression templates while checking that
  the wrapped expression still *distinguishes* the intended element's value
  from every competing element's value.  The result keeps filtering the same
  subgraph while exercising functions and operators.
"""

from __future__ import annotations

import random
import string
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.cypher import ast
from repro.engine.errors import CypherError
from repro.engine.evaluator import Evaluator
from repro.graph import values as V
from repro.graph.model import PropertyGraph

__all__ = ["ExpressionFactory", "type_of_value"]


def type_of_value(value: Any) -> str:
    """The template type bucket of a Cypher value."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "BOOLEAN"
    if isinstance(value, int):
        return "INTEGER"
    if isinstance(value, float):
        return "FLOAT"
    if isinstance(value, str):
        return "STRING"
    if isinstance(value, list):
        return "LIST"
    return "ANY"


def _lit(value: Any) -> ast.Expression:
    if isinstance(value, list):
        return ast.ListLiteral(tuple(_lit(item) for item in value))
    if isinstance(value, dict):
        return ast.MapLiteral(tuple((k, _lit(v)) for k, v in value.items()))
    return ast.Literal(value)


# A wrapping template: given the inner expression, produce the outer one.
_Template = Callable[[ast.Expression], ast.Expression]


class ExpressionFactory:
    """Random yet value-controlled expression synthesis."""

    def __init__(
        self,
        graph: PropertyGraph,
        rng: random.Random,
        use_comprehensions: bool = True,
    ):
        self.graph = graph
        self.rng = rng
        # Disabled for the §7 Gremlin setup, which cannot translate them.
        self.use_comprehensions = use_comprehensions
        self._evaluator = Evaluator(graph)

    # ------------------------------------------------------------------
    # Value-constrained generation (GDsmith-style, adapted)
    # ------------------------------------------------------------------

    def constant_expression(self, value: Any, depth: int) -> ast.Expression:
        """An expression with no free variables that evaluates to *value*."""
        if depth <= 0:
            return _lit(value)
        builders = self._constant_builders(value)
        if not builders:
            return _lit(value)
        builder = self.rng.choice(builders)
        expr = builder(value, depth)
        return expr

    def _constant_builders(self, value: Any):
        rng = self.rng
        generic = [self._via_case, self._via_coalesce, self._via_head,
                   self._via_index]
        if self.use_comprehensions:
            generic.append(self._via_comprehension)

        if value is None:
            return [lambda v, d: ast.Literal(None), self._via_coalesce]
        if isinstance(value, bool):
            return generic + [self._bool_not_not, self._bool_identity_ops,
                              self._bool_from_comparison]
        if isinstance(value, int):
            return generic + [self._int_sum, self._int_difference,
                              self._int_via_size, self._int_via_tostring]
        if isinstance(value, float):
            return generic + [self._float_sum, self._float_via_tofloat]
        if isinstance(value, str):
            return generic + [self._str_concat_split, self._str_via_left,
                              self._str_via_substring, self._str_via_replace]
        if isinstance(value, list):
            return [self._list_itemwise, self._list_via_concat, self._via_case,
                    self._via_head]
        return []

    # -- generic wrappers ------------------------------------------------

    def _via_case(self, value: Any, depth: int) -> ast.Expression:
        # CASE WHEN <true-expr> THEN <value> ELSE <decoy> END
        condition = self.constant_expression(True, depth - 1)
        then = self.constant_expression(value, depth - 1)
        decoy = _lit(self._random_literal())
        return ast.CaseExpression(
            None, (ast.CaseAlternative(condition, then),), decoy
        )

    def _via_coalesce(self, value: Any, depth: int) -> ast.Expression:
        inner = self.constant_expression(value, depth - 1)
        return ast.FunctionCall("coalesce", (ast.Literal(None), inner))

    def _via_head(self, value: Any, depth: int) -> ast.Expression:
        inner = self.constant_expression(value, depth - 1)
        decoy = _lit(self._random_literal())
        return ast.FunctionCall("head", (ast.ListLiteral((inner, decoy)),))

    def _via_index(self, value: Any, depth: int) -> ast.Expression:
        # ([v, decoy])[0] — exercises list indexing in the engine.
        inner = self.constant_expression(value, depth - 1)
        decoy = _lit(self._random_literal())
        return ast.ListIndex(ast.ListLiteral((inner, decoy)), _lit(0))

    def _via_comprehension(self, value: Any, depth: int) -> ast.Expression:
        # head([x IN [v, decoy] | x]) — exercises list comprehensions.
        inner = self.constant_expression(value, depth - 1)
        decoy = _lit(self._random_literal())
        variable = f"lc{self.rng.randint(0, 9)}"
        comprehension = ast.ListComprehension(
            variable,
            ast.ListLiteral((inner, decoy)),
            None,
            ast.Variable(variable),
        )
        return ast.FunctionCall("head", (comprehension,))

    # -- booleans ----------------------------------------------------------

    def _bool_not_not(self, value: bool, depth: int) -> ast.Expression:
        inner = self.constant_expression(value, depth - 1)
        return ast.Unary("NOT", ast.Unary("NOT", inner))

    def _bool_identity_ops(self, value: bool, depth: int) -> ast.Expression:
        inner = self.constant_expression(value, depth - 1)
        if self.rng.random() < 0.5:
            return ast.Binary("AND", inner, self.constant_expression(True, depth - 1))
        return ast.Binary("OR", inner, self.constant_expression(False, depth - 1))

    def _bool_from_comparison(self, value: bool, depth: int) -> ast.Expression:
        a = self.rng.randint(-50, 50)
        b = self.rng.randint(-50, 50)
        op = self.rng.choice(["<", "<=", ">", ">=", "=", "<>"])
        verdict = {
            "<": a < b, "<=": a <= b, ">": a > b,
            ">=": a >= b, "=": a == b, "<>": a != b,
        }[op]
        comparison = ast.Binary(
            op,
            self.constant_expression(a, depth - 1),
            self.constant_expression(b, depth - 1),
        )
        if verdict == value:
            return comparison
        return ast.Unary("NOT", comparison)

    # -- integers ----------------------------------------------------------

    def _int_sum(self, value: int, depth: int) -> ast.Expression:
        part = self.rng.randint(-100, 100)
        return ast.Binary(
            "+",
            self.constant_expression(part, depth - 1),
            self.constant_expression(value - part, depth - 1),
        )

    def _int_difference(self, value: int, depth: int) -> ast.Expression:
        part = self.rng.randint(-100, 100)
        return ast.Binary(
            "-",
            self.constant_expression(value + part, depth - 1),
            self.constant_expression(part, depth - 1),
        )

    def _int_via_size(self, value: int, depth: int) -> ast.Expression:
        if not 0 <= value <= 5:
            return self._int_sum(value, depth)
        items = tuple(_lit(self._random_literal()) for _ in range(value))
        return ast.FunctionCall("size", (ast.ListLiteral(items),))

    def _int_via_tostring(self, value: int, depth: int) -> ast.Expression:
        inner = self.constant_expression(str(value), depth - 1)
        return ast.FunctionCall("toInteger", (inner,))

    # -- floats ------------------------------------------------------------

    def _float_sum(self, value: float, depth: int) -> ast.Expression:
        # Floating-point addition is not exactly invertible; only use the
        # decomposition when `part + (value - part)` reconstructs the value
        # bit-for-bit, otherwise fall back to a repr round trip.
        part = float(self.rng.randint(-50, 50))
        remainder = value - part
        if part + remainder != value:
            return self._float_via_tofloat(value, depth)
        return ast.Binary(
            "+",
            self.constant_expression(part, depth - 1),
            self.constant_expression(remainder, depth - 1),
        )

    def _float_via_tofloat(self, value: float, depth: int) -> ast.Expression:
        return ast.FunctionCall(
            "toFloat", (self.constant_expression(repr(value), depth - 1),)
        )

    # -- strings -------------------------------------------------------------

    def _str_concat_split(self, value: str, depth: int) -> ast.Expression:
        if len(value) < 2:
            return self._str_via_left(value, depth)
        cut = self.rng.randint(1, len(value) - 1)
        return ast.Binary(
            "+",
            self.constant_expression(value[:cut], depth - 1),
            self.constant_expression(value[cut:], depth - 1),
        )

    def _str_via_left(self, value: str, depth: int) -> ast.Expression:
        suffix = self._random_word()
        padded = self.constant_expression(value + suffix, depth - 1)
        return ast.FunctionCall("left", (padded, _lit(len(value))))

    def _str_via_substring(self, value: str, depth: int) -> ast.Expression:
        prefix = self._random_word()
        padded = self.constant_expression(prefix + value, depth - 1)
        return ast.FunctionCall(
            "substring", (padded, _lit(len(prefix)))
        )

    def _str_via_replace(self, value: str, depth: int) -> ast.Expression:
        # Occasionally emit replace(v, '', w): our reference treats an empty
        # search string as identity (§4 / Figure 9 — the construct that hangs
        # the real Memgraph).
        if self.rng.random() < 0.2:
            return ast.FunctionCall(
                "replace",
                (
                    self.constant_expression(value, depth - 1),
                    _lit(""),
                    _lit(self._random_word()),
                ),
            )
        # replace(marker-injected form, marker, '') == value.
        marker = "#"
        while marker in value:
            marker += "#"
        position = self.rng.randint(0, len(value))
        injected = value[:position] + marker + value[position:]
        return ast.FunctionCall(
            "replace",
            (self.constant_expression(injected, depth - 1), _lit(marker), _lit("")),
        )

    # -- lists ----------------------------------------------------------------

    def _list_itemwise(self, value: list, depth: int) -> ast.Expression:
        return ast.ListLiteral(
            tuple(self.constant_expression(item, depth - 1) for item in value)
        )

    def _list_via_concat(self, value: list, depth: int) -> ast.Expression:
        if not value:
            return ast.FunctionCall("tail", (ast.ListLiteral((_lit(0),)),))
        cut = self.rng.randint(0, len(value))
        return ast.Binary(
            "+",
            self._list_itemwise(value[:cut], depth),
            self._list_itemwise(value[cut:], depth),
        )

    # ------------------------------------------------------------------
    # Algorithm 2: distinguishing replacement of property accesses
    # ------------------------------------------------------------------

    def obfuscate_property_access(
        self,
        access: ast.Expression,
        target_value: Any,
        competitor_values: Sequence[Any],
        depth: int,
        attempts_per_level: int = 8,
    ) -> Tuple[ast.Expression, Any]:
        """Wrap *access* in up to *depth* nested templates (Algorithm 2).

        ``target_value`` is the value of the property on the intended
        element (the set ``S1``); ``competitor_values`` are the values on
        the elements the predicate must rule out (``S2``).  Each accepted
        nesting level must keep the evaluation results of the two sets
        disjoint (line 8 of Algorithm 2).  Returns the final expression and
        the value it takes on the intended element.
        """
        expr = access
        value = target_value
        others = list(competitor_values)

        for _level in range(depth):
            accepted = False
            for _attempt in range(attempts_per_level):
                template = self._pick_template(type_of_value(value))
                if template is None:
                    break
                try:
                    new_value = self._eval_template(template, value)
                    new_others = [
                        self._eval_template(template, other) for other in others
                    ]
                except CypherError:
                    continue
                # The wrapped access ends up in an equality predicate, so
                # its value on the intended element must be reflexively
                # equal to itself: `[1, null] = [1, null]` is null in
                # Cypher, which would silently drop the intended match.
                if V.ternary_equals(new_value, new_value) is not True:
                    continue
                target_key = V.equivalence_key(new_value)
                other_keys = {
                    V.equivalence_key(other) for other in new_others
                }
                if target_key in other_keys:
                    continue  # template cannot differentiate S1 from S2
                expr = template(expr)
                value = new_value
                others = new_others
                accepted = True
                break
            if not accepted:
                # Line 14: depth decreases regardless; with no usable
                # template at this type we simply stop early.
                continue
        return expr, value

    def _eval_template(self, template: _Template, value: Any) -> Any:
        """Evaluate a template instantiated with a concrete value."""
        return self._evaluator.evaluate(template(_lit(value)), {})

    def _pick_template(self, value_type: str) -> Optional[_Template]:
        """Draw a wrapping template accepting a parameter of *value_type*."""
        rng = self.rng
        templates: List[_Template] = []

        # NOTE: every random operand is drawn *now* and bound via default
        # arguments.  A template is applied twice — once on a literal to
        # compute the expected value, once on the real property access — and
        # both applications must produce the same constants.
        if value_type in ("INTEGER", "FLOAT"):
            constant = rng.randint(1, 9)
            divisor = rng.choice([2, 3, 4])
            modulus = rng.randint(5, 50)
            templates.extend(
                [
                    lambda e, c=constant: ast.Binary("+", e, _lit(c)),
                    lambda e, c=constant: ast.Binary("-", e, _lit(c)),
                    lambda e, c=constant: ast.Binary("*", e, _lit(c)),
                    lambda e: ast.Unary("-", e),
                    lambda e: ast.FunctionCall("abs", (e,)),
                    lambda e: ast.FunctionCall("sign", (e,)),
                    lambda e: ast.FunctionCall("exp", (e,)),
                    lambda e: ast.FunctionCall("toString", (e,)),
                    lambda e: ast.FunctionCall("toFloat", (e,)),
                    lambda e, d=divisor: ast.Binary("/", e, _lit(d)),
                ]
            )
            if value_type == "FLOAT":
                templates.extend(
                    [
                        lambda e: ast.FunctionCall("round", (e,)),
                        lambda e: ast.FunctionCall("floor", (e,)),
                        lambda e: ast.FunctionCall("ceil", (e,)),
                    ]
                )
            else:
                templates.append(
                    lambda e, m=modulus: ast.Binary("%", e, _lit(m))
                )
        elif value_type == "STRING":
            word = self._random_word()
            needle = self._random_word()
            replacement = self._random_word()
            separator = self._random_word()
            templates.extend(
                [
                    lambda e, w=word: ast.Binary("+", e, _lit(w)),
                    lambda e, w=word: ast.Binary("+", _lit(w), e),
                    lambda e: ast.FunctionCall("reverse", (e,)),
                    lambda e: ast.FunctionCall("toUpper", (e,)),
                    lambda e: ast.FunctionCall("toLower", (e,)),
                    lambda e: ast.FunctionCall("trim", (e,)),
                    lambda e, w=word: ast.FunctionCall(
                        "ltrim", (ast.Binary("+", _lit(" "), e),)
                    ),
                    lambda e: ast.FunctionCall("rtrim", (e,)),
                    lambda e: ast.FunctionCall("char_length", (e,)),
                    lambda e: ast.FunctionCall("size", (e,)),
                    lambda e, n=needle, r=replacement: ast.FunctionCall(
                        "replace", (e, _lit(n), _lit(r))
                    ),
                    lambda e, s=separator: ast.FunctionCall("split", (e, _lit(s))),
                    lambda e, w=word: ast.Binary(
                        "STARTS WITH", ast.Binary("+", e, _lit(w)), e
                    ),
                ]
            )
        elif value_type == "BOOLEAN":
            flip = rng.random() < 0.5
            then_value = rng.randint(0, 9)
            else_value = rng.randint(10, 19)
            templates.extend(
                [
                    lambda e: ast.Unary("NOT", e),
                    lambda e: ast.FunctionCall("toString", (e,)),
                    lambda e, f=flip: ast.Binary("XOR", e, _lit(f)),
                    lambda e, t=then_value, z=else_value: ast.CaseExpression(
                        None,
                        (ast.CaseAlternative(e, _lit(t)),),
                        _lit(z),
                    ),
                ]
            )
        elif value_type == "LIST":
            extra = self._random_literal()
            templates.extend(
                [
                    lambda e: ast.FunctionCall("size", (e,)),
                    lambda e: ast.FunctionCall("head", (e,)),
                    lambda e: ast.FunctionCall("last", (e,)),
                    lambda e: ast.FunctionCall("reverse", (e,)),
                    lambda e: ast.FunctionCall("tail", (e,)),
                    lambda e: ast.FunctionCall("isEmpty", (e,)),
                    lambda e, x=extra: ast.Binary(
                        "+", e, ast.ListLiteral((_lit(x),))
                    ),
                ]
            )
        if not templates:
            return None
        return rng.choice(templates)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _random_word(self, max_len: int = 8) -> str:
        alphabet = string.ascii_letters + string.digits
        return "".join(
            self.rng.choice(alphabet) for _ in range(self.rng.randint(1, max_len))
        )

    def _random_literal(self) -> Any:
        roll = self.rng.random()
        if roll < 0.4:
            return self.rng.randint(-(2**31), 2**31 - 1)
        if roll < 0.6:
            return self._random_word()
        if roll < 0.75:
            return self.rng.random() < 0.5
        if roll < 0.9:
            return round(self.rng.uniform(-1e3, 1e3), 3)
        return None
