"""The GQS test oracle (paper §3.1, step 4).

After executing the synthesized query on the GDB under test, any discrepancy
between the actual result set and the expected result set (the ground truth)
indicates a logic bug.  Comparison is bag-based over Cypher value
equivalence; column names and order must match, since the synthesizer fixes
the output aliases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.binding import ResultSet

__all__ = ["OracleVerdict", "check_result"]


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one ground-truth comparison."""

    passed: bool
    reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def check_result(expected: ResultSet, actual: ResultSet) -> OracleVerdict:
    """Compare the actual result against the established ground truth."""
    if list(actual.columns) != list(expected.columns):
        return OracleVerdict(
            False,
            f"column mismatch: expected {expected.columns}, got {actual.columns}",
        )
    if len(actual) != len(expected):
        return OracleVerdict(
            False,
            f"row count mismatch: expected {len(expected)}, got {len(actual)}",
        )
    if not expected.same_rows(actual):
        return OracleVerdict(False, "row values differ from ground truth")
    return OracleVerdict(True)
