"""GQS core: ground truth, operation scheduling, and query synthesis."""

from repro.core.expressions import ExpressionFactory
from repro.core.ground_truth import (
    GroundTruth,
    GroundTruthEntry,
    build_constraint_graph,
    select_ground_truth,
)
from repro.core.operations import ConstraintGraph, OpKind, Operation
from repro.core.oracle import OracleVerdict, check_result
from repro.core.patterns import GraphPath, PatternBuilder
from repro.core.scheduler import ScheduledStep, schedule
from repro.core.synthesizer import (
    QuerySynthesizer,
    SynthesisResult,
    SynthesizerConfig,
)

__all__ = [
    "GroundTruth",
    "GroundTruthEntry",
    "select_ground_truth",
    "build_constraint_graph",
    "ConstraintGraph",
    "OpKind",
    "Operation",
    "ScheduledStep",
    "schedule",
    "GraphPath",
    "PatternBuilder",
    "ExpressionFactory",
    "QuerySynthesizer",
    "SynthesisResult",
    "SynthesizerConfig",
    "OracleVerdict",
    "check_result",
]
