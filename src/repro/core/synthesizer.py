"""Stepwise query synthesis (paper §3, step 3 of the workflow).

Given a graph and an expected result set, the synthesizer:

1. seeds the operation DAG (:mod:`repro.core.ground_truth`),
2. schedules operations into steps (:mod:`repro.core.scheduler`, Algorithm 1),
3. realizes each step as a concrete clause — MATCH/OPTIONAL MATCH via the
   pattern builder (§3.4), UNWIND/CALL for list expansion, WITH/RETURN for
   projections — threading cross-step variable references throughout,
4. emits the final query plus the expected :class:`ResultSet`.

Soundness invariant: at every step the synthesizer knows the exact bag of
rows the intermediate table holds, represented as

    rows = {uniform env} x cartesian(varying alias lists) x multiplier

MATCH clauses are pinned to a unique assignment, so only UNWIND (and the
CALL expansion) introduce per-row variation, and only DISTINCT / WHERE /
LIMIT refinements change the multiplier.  The expected result therefore
never requires executing the query — it is established constructively, which
is exactly the paper's ground-truth argument.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.core.expressions import ExpressionFactory
from repro.core.ground_truth import (
    GroundTruth,
    PlanSeed,
    build_constraint_graph,
    select_ground_truth,
)
from repro.core.operations import OpKind, Operation
from repro.core.patterns import PatternBuilder
from repro.core.scheduler import ScheduledStep, schedule
from repro.cypher import ast
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherError
from repro.engine.evaluator import Evaluator
from repro.obs import DEFAULT_COUNT_EDGES, PROBE
from repro.graph import values as V
from repro.graph.model import Node, PropertyGraph, Relationship

__all__ = ["SynthesizerConfig", "SynthesisResult", "QuerySynthesizer"]


@dataclass
class SynthesizerConfig:
    """Tuning knobs of the synthesizer (paper §5.1 defaults)."""

    max_ground_truth: int = 6
    include_probability: float = 0.7       # Algorithm 1 rand()
    expression_depth: int = 3              # nesting depth D of §3.5
    extra_elements: int = 5
    extra_aliases: int = 4
    extra_lists: int = 1
    optional_match_probability: float = 0.25
    call_probability: float = 0.15
    union_probability: float = 0.08
    distinct_probability: float = 0.2
    order_by_probability: float = 0.35
    limit_probability: float = 0.15
    where_with_probability: float = 0.5
    plain_truncation_probability: float = 0.2  # leave multiplicity in place
    count_star_alias_probability: float = 0.15
    max_list_length: int = 4
    use_list_comprehensions: bool = True
    # Dialect switches (see repro.gdb.dialects).
    supports_call_procedures: bool = True
    needs_uniqueness_predicates: bool = False
    # Write-statement mix for stateful sessions (repro.synth.state); the
    # weights are relative and renormalized over the kinds that are valid
    # against the current shadow state.  Adaptive arms scale them like any
    # other probability knob.
    stateful_create_weight: float = 0.35
    stateful_merge_weight: float = 0.2
    stateful_set_weight: float = 0.2
    stateful_delete_weight: float = 0.15
    stateful_remove_weight: float = 0.1


@dataclass
class SynthesisResult:
    """A synthesized query together with its established ground truth."""

    query: Union[ast.Query, ast.UnionQuery]
    expected: ResultSet
    ground_truth: GroundTruth
    n_steps: int                      # number of clauses emitted
    scheduled_steps: int              # number of Algorithm 1 steps


def _is_literal_value(value: Any) -> bool:
    """Whether *value* can be spelled as a Cypher literal (no elements)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, list):
        return all(_is_literal_value(item) for item in value)
    if isinstance(value, dict):
        return all(_is_literal_value(item) for item in value.values())
    return False


class _TableModel:
    """Symbolic model of the intermediate table (see module docstring)."""

    def __init__(self) -> None:
        self.env: Dict[str, Any] = {}
        self.varying: Dict[str, List[Any]] = {}
        self.multiplier: int = 1
        self.zombies: Set[str] = set()    # columns present but unplanned
        self.helpers: Set[str] = set()    # pattern helper variables

    def columns(self) -> List[str]:
        return list(self.env) + list(self.varying)

    def graph_scope(self) -> Dict[str, Any]:
        """Uniform columns bound to graph elements (for the matcher)."""
        return {
            name: value
            for name, value in self.env.items()
            if isinstance(value, (Node, Relationship))
        }

    def row_count(self) -> int:
        count = self.multiplier
        for items in self.varying.values():
            count *= len(items)
        return count


class QuerySynthesizer:
    """Synthesizes complex Cypher queries from an expected result set."""

    def __init__(
        self,
        graph: PropertyGraph,
        rng: Optional[random.Random] = None,
        config: Optional[SynthesizerConfig] = None,
        weights=None,
    ):
        self.graph = graph
        self.rng = rng or random.Random()
        self.config = config or SynthesizerConfig()
        if weights is not None:
            # A policy-issued WeightProfile (repro.runtime.adapt) rewrites
            # a *copy* of the config, so the caller's config object — often
            # shared across graph rounds — is never mutated.
            self.config = weights.apply_synthesizer(self.config)
        self.weights = weights
        self.expressions = ExpressionFactory(
            graph, self.rng,
            use_comprehensions=self.config.use_list_comprehensions,
        )
        self.evaluator = Evaluator(graph)
        self.builder = PatternBuilder(
            graph,
            self.rng,
            expressions=self.expressions,
            obfuscation_depth=self.config.expression_depth,
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def synthesize(
        self, ground_truth: Optional[GroundTruth] = None
    ) -> SynthesisResult:
        """Synthesize one query; optionally reuse an existing ground truth."""
        if not PROBE.on:
            return self._synthesize(ground_truth)
        with PROBE.tracer.span("synthesize"):
            result = self._synthesize(ground_truth)
        PROBE.metrics.counter("synth.queries").inc()
        PROBE.metrics.histogram(
            "synth.steps", edges=DEFAULT_COUNT_EDGES
        ).observe(result.n_steps)
        return result

    def _synthesize(
        self, ground_truth: Optional[GroundTruth]
    ) -> SynthesisResult:
        rng = self.rng
        if ground_truth is None:
            ground_truth = select_ground_truth(
                self.graph, rng, self.config.max_ground_truth
            )
        result = self._synthesize_single(ground_truth)
        if rng.random() < self.config.union_probability:
            other = self._synthesize_single(ground_truth)
            union_all = rng.random() < 0.5
            query = ast.UnionQuery(result.query, other.query, all=union_all)
            if union_all:
                rows = list(result.expected.rows) + list(other.expected.rows)
                expected = ResultSet(result.expected.columns, rows)
            else:
                expected = ResultSet(
                    result.expected.columns, [ground_truth.row()]
                )
            return SynthesisResult(
                query=query,
                expected=expected,
                ground_truth=ground_truth,
                n_steps=result.n_steps + other.n_steps,
                scheduled_steps=result.scheduled_steps + other.scheduled_steps,
            )
        return result

    # ------------------------------------------------------------------
    # Single-query synthesis
    # ------------------------------------------------------------------

    def _synthesize_single(self, ground_truth: GroundTruth) -> SynthesisResult:
        rng = self.rng
        cfg = self.config
        seed = build_constraint_graph(
            self.graph,
            ground_truth,
            rng,
            extra_elements=cfg.extra_elements,
            extra_aliases=cfg.extra_aliases,
            extra_lists=cfg.extra_lists,
        )
        steps = schedule(seed.graph, rng, cfg.include_probability)

        model = _TableModel()
        clauses: List[ast.Clause] = []
        previous_paths: List = []
        helper_counter = itertools.count(0)
        accessed: Dict[int, str] = {}  # ground-truth index -> alias in env

        for index, step in enumerate(steps):
            is_last = index == len(steps) - 1
            family = self._clause_family(step)
            if family == "MATCH":
                clause = self._realize_match(step, seed, model, previous_paths, helper_counter)
                clauses.append(clause)
            elif family == "UNWIND":
                clauses.extend(self._realize_expansions(step, seed, model))
            else:
                clause = self._realize_projection(
                    step, seed, model, accessed, as_return=is_last
                )
                if clause is not None:
                    clauses.append(clause)

        if not clauses or not isinstance(clauses[-1], ast.Return):
            clauses.append(self._final_return(ground_truth, model, accessed))

        expected_rows = [ground_truth.row()] * max(model.multiplier, 0)
        expected = ResultSet(ground_truth.columns(), expected_rows)
        query = ast.Query(tuple(clauses))
        return SynthesisResult(
            query=query,
            expected=expected,
            ground_truth=ground_truth,
            n_steps=len(clauses),
            scheduled_steps=len(steps),
        )

    @staticmethod
    def _clause_family(step: ScheduledStep) -> str:
        kinds = step.clause_kinds
        if "MATCH" in kinds or "OPTIONAL MATCH" in kinds:
            return "MATCH"
        if "UNWIND" in kinds or "CALL" in kinds:
            return "UNWIND"
        return "PROJECTION"

    # ------------------------------------------------------------------
    # MATCH steps
    # ------------------------------------------------------------------

    def _realize_match(
        self,
        step: ScheduledStep,
        seed: PlanSeed,
        model: _TableModel,
        previous_paths: List,
        helper_counter,
    ) -> ast.Match:
        rng = self.rng
        introduce = [
            (op.variable, op.element)
            for op in step.ops_of_kind(OpKind.ELEMENT_ADD)
        ]
        helper_start = next(helper_counter)
        synthesized = self.builder.build_match(
            introduce,
            scope=model.graph_scope(),
            previous_paths=previous_paths,
            helper_start=helper_start,
            add_uniqueness_predicates=self.config.needs_uniqueness_predicates,
        )
        # Reserve helper numbers actually consumed.
        consumed = sum(
            1
            for var in synthesized.new_variables
            if var.startswith(("m", "e")) and var[1:].isdigit()
        )
        for _ in range(consumed):
            next(helper_counter)

        planned_vars = {var for var, _elem in introduce}
        for var, value in synthesized.bindings.items():
            model.env[var] = value
            if var not in planned_vars and var in synthesized.new_variables:
                model.helpers.add(var)
        previous_paths.extend(synthesized.paths)

        optional = rng.random() < self.config.optional_match_probability
        return ast.Match(
            synthesized.patterns, optional=optional, where=synthesized.where
        )

    # ------------------------------------------------------------------
    # UNWIND / CALL steps
    # ------------------------------------------------------------------

    def _realize_expansions(
        self, step: ScheduledStep, seed: PlanSeed, model: _TableModel
    ) -> List[ast.Clause]:
        clauses: List[ast.Clause] = []
        for op in step.ops_of_kind(OpKind.LIST_EXPAND):
            clauses.append(self._realize_one_expansion(op, seed, model))
        return clauses

    def _realize_one_expansion(
        self, op: Operation, seed: PlanSeed, model: _TableModel
    ) -> ast.Clause:
        rng = self.rng
        cfg = self.config
        use_call = (
            cfg.supports_call_procedures
            and rng.random() < cfg.call_probability
            and self.graph.labels()
        )
        if use_call:
            items = [[label] for label in self.graph.labels()]
            model.varying[op.variable] = [label for [label] in items]
            return ast.Call(
                "db.labels", (), ((("label"), op.variable),)
            )

        length = rng.randint(1, cfg.max_list_length)
        item_exprs: List[ast.Expression] = []
        item_values: List[Any] = []
        source_var = seed.list_sources.get(op.variable)
        for position in range(length):
            expr, value = self._list_item(source_var, model, position == 0)
            item_exprs.append(expr)
            item_values.append(value)
        model.varying[op.variable] = item_values
        return ast.Unwind(ast.ListLiteral(tuple(item_exprs)), op.variable)

    def _list_item(
        self, source_var: Optional[str], model: _TableModel, prefer_source: bool
    ) -> Tuple[ast.Expression, Any]:
        """One UNWIND list item: an expression plus its known value."""
        rng = self.rng
        env = model.env
        if (
            source_var
            and source_var in env
            and (prefer_source or rng.random() < 0.5)
        ):
            expr = self._env_expression(source_var, model.env)
            if expr is not None:
                return expr
        value = self.expressions._random_literal()
        depth = rng.randint(0, self.config.expression_depth)
        return self.expressions.constant_expression(value, depth), value

    def _env_expression(
        self, var: str, env: Dict[str, Any]
    ) -> Optional[Tuple[ast.Expression, Any]]:
        """An expression over an in-scope element variable, with its value."""
        rng = self.rng
        bound = env.get(var)
        if not isinstance(bound, (Node, Relationship)):
            return None
        names = [k for k, v in bound.properties.items() if v is not None]
        if not names:
            return None
        name = rng.choice(names)
        expr: ast.Expression = ast.PropertyAccess(ast.Variable(var), name)
        value = bound.properties[name]
        if rng.random() < 0.6:
            expr, value = self.expressions.obfuscate_property_access(
                expr, value, [], self.builder._draw_depth()
            )
        # Occasionally compare against another in-scope property, like the
        # paper's `[n5.k2 <> r3.id, false]` example.
        if rng.random() < 0.3:
            other_vars = [
                other
                for other, val in env.items()
                if other != var and isinstance(val, (Node, Relationship))
            ]
            if other_vars:
                other = rng.choice(other_vars)
                other_el = env[other]
                other_names = [
                    k for k, v in other_el.properties.items() if v is not None
                ]
                if other_names:
                    other_name = rng.choice(other_names)
                    comparison = ast.Binary(
                        "<>",
                        expr,
                        ast.PropertyAccess(ast.Variable(other), other_name),
                    )
                    try:
                        value = self.evaluator.evaluate(comparison, env)
                        return comparison, value
                    except CypherError:
                        pass
        try:
            checked = self.evaluator.evaluate(expr, env)
        except CypherError:
            return None
        return expr, checked

    # ------------------------------------------------------------------
    # WITH / RETURN steps
    # ------------------------------------------------------------------

    def _realize_projection(
        self,
        step: ScheduledStep,
        seed: PlanSeed,
        model: _TableModel,
        accessed: Dict[int, str],
        as_return: bool,
    ) -> Optional[ast.Clause]:
        rng = self.rng
        cfg = self.config

        removed = {
            op.variable
            for op in step.operations
            if op.kind in (OpKind.ELEMENT_REMOVE, OpKind.ALIAS_REMOVE)
        }
        truncations = step.ops_of_kind(OpKind.LIST_TRUNCATE)
        accesses = step.ops_of_kind(OpKind.PROP_ACCESS)
        alias_adds = step.ops_of_kind(OpKind.ALIAS_ADD)

        if as_return:
            return self._realize_return(
                step, seed, model, accessed, removed, truncations, accesses
            )

        # ---- choose truncation modes ----------------------------------
        distinct = False
        where_terms: List[ast.Expression] = []
        plain_truncated: List[str] = []
        must_keep: Set[str] = set()
        for op in truncations:
            alias = op.variable
            items = model.varying.pop(alias, None)
            if items is None:
                # Expansion fell back or already truncated; nothing to do.
                removed.add(alias)
                continue
            mode = self._truncation_mode(items, model)
            if mode == "distinct":
                distinct = True
                removed.add(alias)
            elif mode == "where":
                keep = rng.choice(items)
                where_terms.append(
                    ast.Binary(
                        "=",
                        ast.Variable(alias),
                        self.expressions.constant_expression(
                            keep, rng.randint(0, cfg.expression_depth)
                        ),
                    )
                )
                # The alias survives this clause as a uniform zombie column;
                # it must be projected *now* because the WHERE references it.
                model.env[alias] = keep
                model.zombies.add(alias)
                must_keep.add(alias)
            else:  # plain: drop the column, keep the duplicate rows
                model.multiplier *= len(items)
                plain_truncated.append(alias)
                removed.add(alias)

        # ---- assemble projection items -----------------------------------
        items: List[ast.ProjectionItem] = []
        kept_columns: List[str] = []
        for column in list(model.env):
            if column in removed:
                model.env.pop(column, None)
                model.zombies.discard(column)
                continue
            if column in model.helpers:
                # Helper variables may ride along as extra uniform columns
                # (building further cross-clause references) or die here.
                if rng.random() < 0.5:
                    model.env.pop(column)
                    model.helpers.discard(column)
                    continue
            elif (
                column in model.zombies
                and column not in must_keep
                and rng.random() < 0.5
            ):
                model.env.pop(column)
                model.zombies.discard(column)
                continue
            items.append(ast.ProjectionItem(ast.Variable(column)))
            kept_columns.append(column)
        # Varying aliases not truncated this step must stay projected.
        for alias in model.varying:
            items.append(ast.ProjectionItem(ast.Variable(alias)))
            kept_columns.append(alias)

        # Snapshot the referenceable environment before this clause adds any
        # aliases: WITH items cannot reference sibling aliases created in
        # the same clause.
        pre_clause_env = dict(model.env)

        for op in accesses:
            expr, value, alias = self._access_item(op, seed)
            items.append(ast.ProjectionItem(expr, alias))
            model.env[alias] = value
            accessed[op.ground_truth_index] = alias
            kept_columns.append(alias)

        # Aggregate aliases (count(*)/collect) are only sound when this step
        # did not also expand or truncate lists (the aggregation would then
        # count pre-filter rows); see _alias_expression.  All aggregates in
        # one clause see the same input table, so they share the clause's
        # input multiplier and the collapse to one row happens once.
        aggregation_safe = not truncations and not model.varying and not distinct
        input_multiplier = model.multiplier
        used_aggregate = False
        for op in alias_adds:
            expr, value, is_aggregate = self._alias_expression(
                op.variable, seed, model, aggregation_safe,
                reference_env=pre_clause_env,
                input_multiplier=input_multiplier,
            )
            used_aggregate = used_aggregate or is_aggregate
            items.append(ast.ProjectionItem(expr, op.variable))
            model.env[op.variable] = value
            kept_columns.append(op.variable)
        if used_aggregate:
            model.multiplier = 1

        if not items:
            # WITH requires at least one item; keep a constant zombie.
            filler = f"f{len(model.zombies)}"
            value = rng.randint(0, 9)
            items.append(
                ast.ProjectionItem(
                    self.expressions.constant_expression(value, 1), filler
                )
            )
            model.env[filler] = value
            model.zombies.add(filler)
            kept_columns.append(filler)

        # ---- random refinements ------------------------------------------
        if not distinct and rng.random() < cfg.distinct_probability:
            distinct = True
        if distinct:
            # DISTINCT dedups the projected rows: uniform columns collapse
            # the multiplier; varying aliases keep one row per distinct item.
            model.multiplier = 1
            for alias, values in list(model.varying.items()):
                unique: List[Any] = []
                seen = set()
                for item in values:
                    key = V.equivalence_key(item)
                    if key not in seen:
                        seen.add(key)
                        unique.append(item)
                model.varying[alias] = unique

        order_by: Tuple[ast.OrderItem, ...] = ()
        if kept_columns and rng.random() < cfg.order_by_probability:
            n_keys = min(len(kept_columns), rng.randint(1, 3))
            chosen = rng.sample(kept_columns, n_keys)
            order_by = tuple(
                ast.OrderItem(ast.Variable(column), rng.random() < 0.5)
                for column in chosen
            )

        skip = None
        limit = None
        # LIMIT applies *before* the WHERE subclause, so it is only sound
        # when the projected rows are already uniform — i.e. no varying
        # aliases remain and no WHERE-based truncation happens this step
        # (its rows still differ until the WHERE filters them).
        if (
            not model.varying
            and not must_keep
            and rng.random() < cfg.limit_probability
            and model.multiplier > 0
        ):
            keep = rng.randint(1, model.multiplier)
            limit = ast.Literal(keep)
            model.multiplier = keep

        if rng.random() < cfg.where_with_probability:
            for _ in range(rng.randint(1, 3)):
                term = self._truthful_env_predicate(model, kept_columns)
                if term is not None:
                    where_terms.append(term)

        where = None
        if where_terms:
            where = where_terms[0]
            for term in where_terms[1:]:
                where = ast.Binary("AND", where, term)

        return ast.With(
            tuple(items),
            distinct=distinct,
            order_by=order_by,
            skip=skip,
            limit=limit,
            where=where,
        )

    def _truncation_mode(self, items: List[Any], model: _TableModel) -> str:
        """Pick a sound truncation realization for an expanded list."""
        rng = self.rng
        cfg = self.config
        if rng.random() < cfg.plain_truncation_probability:
            return "plain"
        keys = [V.equivalence_key(item) for item in items]
        items_distinct = len(set(keys)) == len(keys)
        # WHERE-based truncation compares `alias = item`, which requires the
        # kept item to be reflexively equal (no nulls/NaN anywhere).
        no_nulls = all(V.ternary_equals(item, item) is True for item in items)
        if items_distinct and no_nulls and rng.random() < 0.5:
            return "where"
        return "distinct"

    def _access_item(
        self, op: Operation, seed: PlanSeed
    ) -> Tuple[ast.Expression, Any, str]:
        """Realize a ground-truth property access."""
        kind, element_id = op.element
        var = seed.element_vars[op.element]
        expr = ast.PropertyAccess(ast.Variable(var), op.property_name)
        if kind == "node":
            value = self.graph.node(element_id).properties.get(op.property_name)
        else:
            value = self.graph.relationship(element_id).properties.get(
                op.property_name
            )
        return expr, value, op.variable

    def _alias_expression(
        self,
        alias: str,
        seed: PlanSeed,
        model: _TableModel,
        aggregation_safe: bool = False,
        reference_env: Optional[Dict[str, Any]] = None,
        input_multiplier: int = 1,
    ) -> Tuple[ast.Expression, Any, bool]:
        """Realize a supplementary alias (A+).

        ``reference_env`` restricts which variables the alias expression may
        reference; WITH items cannot see sibling aliases created in the same
        clause, so projection steps pass a pre-clause snapshot.  Returns
        ``(expression, value, is_aggregate)``; when an aggregate is used the
        caller collapses the table multiplier to 1 after the clause.
        """
        rng = self.rng
        cfg = self.config
        env = reference_env if reference_env is not None else model.env
        source = seed.alias_sources.get(alias)
        if source is not None and source not in env:
            source = None

        if (
            aggregation_safe
            and cfg.count_star_alias_probability > rng.random()
        ):
            # Aggregation over a table of identical rows: count(*) yields
            # the multiplier, collect(col) yields multiplier copies.
            if rng.random() < 0.6:
                return ast.CountStar(), input_multiplier, True
            uniform = [
                name for name, val in env.items()
                if name not in model.varying
            ]
            if uniform:
                column = rng.choice(uniform)
                return (
                    ast.FunctionCall("collect", (ast.Variable(column),)),
                    [env[column]] * input_multiplier,
                    True,
                )
            return ast.CountStar(), input_multiplier, True

        bound = env.get(source) if source else None
        if isinstance(bound, Relationship) and rng.random() < 0.4:
            roll = rng.random()
            if roll < 0.5:
                name = rng.choice(["startNode", "endNode"])
                node_id = bound.start if name == "startNode" else bound.end
                return (
                    ast.FunctionCall(name, (ast.Variable(source),)),
                    self.graph.node(node_id),
                    False,
                )
            if roll < 0.75:
                return (
                    ast.FunctionCall("type", (ast.Variable(source),)),
                    bound.type,
                    False,
                )
            return (
                ast.FunctionCall("id", (ast.Variable(source),)),
                bound.id,
                False,
            )
        if isinstance(bound, Node) and rng.random() < 0.3:
            roll = rng.random()
            if roll < 0.4:
                return (
                    ast.FunctionCall("labels", (ast.Variable(source),)),
                    sorted(bound.labels),
                    False,
                )
            if roll < 0.7:
                return (
                    ast.FunctionCall("properties", (ast.Variable(source),)),
                    dict(bound.properties),
                    False,
                )
            return (
                ast.FunctionCall("keys", (ast.Variable(source),)),
                sorted(bound.properties.keys()),
                False,
            )
        if isinstance(bound, (Node, Relationship)):
            result = self._env_expression(source, env)
            if result is not None:
                return result[0], result[1], False
        value = self.expressions._random_literal()
        depth = rng.randint(0, cfg.expression_depth)
        return self.expressions.constant_expression(value, depth), value, False

    def _truthful_env_predicate(
        self, model: _TableModel, columns: List[str]
    ) -> Optional[ast.Expression]:
        """A WHERE term over projected columns, true on every row."""
        rng = self.rng
        uniform = [
            column
            for column in columns
            if column in model.env and column not in model.varying
        ]
        if not uniform:
            return None
        column = rng.choice(uniform)
        value = model.env[column]
        if isinstance(value, (Node, Relationship)):
            names = [k for k, v in value.properties.items() if v is not None]
            if not names:
                return None
            name = rng.choice(names)
            subject: ast.Expression = ast.PropertyAccess(
                ast.Variable(column), name
            )
            target = value.properties[name]
        else:
            subject = ast.Variable(column)
            target = value
        if target is None:
            return ast.IsNull(subject)
        if not _is_literal_value(target):
            # Values embedding graph elements (e.g. collect(n) aliases)
            # cannot be expressed as literal constants.
            return None
        rhs = self.expressions.constant_expression(
            target, rng.randint(0, self.config.expression_depth)
        )
        candidate = ast.Binary("=", subject, rhs)
        try:
            verdict = self.evaluator.evaluate(candidate, model.env)
        except CypherError:
            return None
        return candidate if verdict is True else None

    # ------------------------------------------------------------------
    # Final RETURN
    # ------------------------------------------------------------------

    def _realize_return(
        self,
        step: ScheduledStep,
        seed: PlanSeed,
        model: _TableModel,
        accessed: Dict[int, str],
        removed: Set[str],
        truncations: List[Operation],
        accesses: List[Operation],
    ) -> ast.Return:
        """Realize the last scheduled step directly as RETURN."""
        rng = self.rng
        cfg = self.config
        distinct = False

        for op in truncations:
            items = model.varying.pop(op.variable, None)
            if items is None:
                continue
            if (
                all(
                    V.equivalence_key(a) != V.equivalence_key(b)
                    for a, b in itertools.combinations(items, 2)
                )
                and rng.random() >= cfg.plain_truncation_probability
            ):
                distinct = True
            else:
                model.multiplier *= len(items)
        # Any varying alias still alive is simply not projected (plain drop).
        for alias, items in list(model.varying.items()):
            model.multiplier *= len(items)
            model.varying.pop(alias)

        for op in accesses:
            _expr, value, alias = self._access_item(op, seed)
            accessed[op.ground_truth_index] = alias
            model.env[alias] = value

        items: List[ast.ProjectionItem] = []
        for index, entry in enumerate(seed.ground_truth.entries):
            alias = accessed.get(index)
            direct = next(
                (op for op in accesses if op.ground_truth_index == index), None
            )
            if direct is not None:
                expr, _value, alias = self._access_item(direct, seed)
                items.append(ast.ProjectionItem(expr, alias))
            elif alias is not None:
                items.append(ast.ProjectionItem(ast.Variable(alias)))
            else:  # pragma: no cover - scheduling guarantees access happened
                raise RuntimeError(f"ground-truth column {index} never accessed")

        if distinct:
            model.multiplier = 1
        if not distinct and rng.random() < cfg.distinct_probability:
            distinct = True
            model.multiplier = 1

        order_by: Tuple[ast.OrderItem, ...] = ()
        if rng.random() < cfg.order_by_probability:
            item = rng.choice(items)
            column = item.output_name()
            order_by = (ast.OrderItem(ast.Variable(column), rng.random() < 0.5),)

        limit = None
        if rng.random() < cfg.limit_probability and model.multiplier > 0:
            keep = rng.randint(1, model.multiplier)
            limit = ast.Literal(keep)
            model.multiplier = keep

        return ast.Return(
            tuple(items), distinct=distinct, order_by=order_by, limit=limit
        )

    def _final_return(
        self,
        ground_truth: GroundTruth,
        model: _TableModel,
        accessed: Dict[int, str],
    ) -> ast.Return:
        """Append the closing RETURN when the last step was not one."""
        rng = self.rng
        cfg = self.config
        # Drop any leftover varying aliases (plain multiplicity).
        for alias, items in list(model.varying.items()):
            model.multiplier *= len(items)
            model.varying.pop(alias)

        items = []
        for index, entry in enumerate(ground_truth.entries):
            alias = accessed.get(index)
            if alias is None:  # pragma: no cover - scheduling guarantees this
                raise RuntimeError(f"ground-truth column {index} never accessed")
            items.append(ast.ProjectionItem(ast.Variable(alias)))

        distinct = rng.random() < cfg.distinct_probability
        if distinct:
            model.multiplier = 1
        order_by: Tuple[ast.OrderItem, ...] = ()
        if rng.random() < cfg.order_by_probability:
            item = rng.choice(items)
            order_by = (
                ast.OrderItem(ast.Variable(item.output_name()), rng.random() < 0.5),
            )
        limit = None
        if rng.random() < cfg.limit_probability and model.multiplier > 0:
            keep = rng.randint(1, model.multiplier)
            limit = ast.Literal(keep)
            model.multiplier = keep
        return ast.Return(
            tuple(items), distinct=distinct, order_by=order_by, limit=limit
        )
