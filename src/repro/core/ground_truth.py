"""Ground-truth selection and synthesis-plan seeding (paper §3.1-§3.2).

Step 2 of the GQS workflow randomly selects properties of graph elements;
their key-value pairs form the *expected result set*.  This module selects
that set and derives the full collection of essential and supplementary
operations, together with their temporal constraints, ready for the
Algorithm 1 scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.operations import ConstraintGraph, OpKind, Operation
from repro.graph.model import PropertyGraph, PropertyKey

__all__ = ["GroundTruth", "GroundTruthEntry", "select_ground_truth", "PlanSeed", "build_constraint_graph"]


@dataclass(frozen=True)
class GroundTruthEntry:
    """One expected-result column: a property key and its current value."""

    key: PropertyKey
    value: Any
    alias: str


@dataclass
class GroundTruth:
    """The expected result set: an ordered list of key-value pairs.

    ``columns()``/``row()`` give the single expected output row; query
    synthesis may multiply it (e.g. by leaving an UNWIND untruncated), which
    the synthesizer tracks separately.
    """

    entries: List[GroundTruthEntry]

    def columns(self) -> List[str]:
        return [entry.alias for entry in self.entries]

    def row(self) -> Tuple[Any, ...]:
        return tuple(entry.value for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def select_ground_truth(
    graph: PropertyGraph,
    rng: random.Random,
    max_size: int = 6,
    alias_start: int = 0,
) -> GroundTruth:
    """Randomly select up to *max_size* properties as the expected result.

    The paper limits expected result sets to 6 entries and observes all bugs
    triggered with fewer than 5 (§5.1).  Output aliases are drawn from the
    shared ``a<i>`` namespace, continuing from *alias_start*.
    """
    keys = graph.all_property_keys()
    if not keys:
        raise ValueError("graph has no properties to select")
    size = rng.randint(1, min(max_size, len(keys)))
    chosen = rng.sample(keys, size)
    entries = [
        GroundTruthEntry(key, graph.property_value(key), f"a{alias_start + i}")
        for i, key in enumerate(chosen)
    ]
    return GroundTruth(entries)


@dataclass
class PlanSeed:
    """Everything the scheduler needs: the constraint DAG plus bookkeeping.

    ``element_vars`` maps ``(kind, id)`` graph elements to their query
    variable; ``alias_exprs`` records which element variable each
    supplementary alias draws on; ``list_sources`` likewise for list
    expansions.  ``next_alias`` continues the shared alias counter.
    """

    graph: ConstraintGraph
    ground_truth: GroundTruth
    element_vars: Dict[Tuple[str, int], str]
    supplementary_aliases: List[str]
    alias_sources: Dict[str, Optional[str]]
    list_aliases: List[str]
    list_sources: Dict[str, Optional[str]]
    next_alias: int


def build_constraint_graph(
    graph: PropertyGraph,
    ground_truth: GroundTruth,
    rng: random.Random,
    extra_elements: int = 2,
    extra_aliases: int = 2,
    extra_lists: int = 1,
) -> PlanSeed:
    """Derive the operations and constraints of §3.2/§3.3 (Example 3.2).

    Essential operations: for each expected property ``<E, p>``, introduce
    the element (``E+``), access the property (``(E.p)+``), and remove the
    element (``E-``), constrained ``E+ ≺ (E.p)+ ⪯ E-``.  Supplementary
    operations add random extra elements, aliases over them, and list
    expansions, each paired with a removal.
    """
    cg = ConstraintGraph()
    element_vars: Dict[Tuple[str, int], str] = {}
    adds: Dict[Tuple[str, int], Operation] = {}
    removes: Dict[Tuple[str, int], Operation] = {}
    node_counter = 0
    rel_counter = 0

    def var_for(element: Tuple[str, int]) -> str:
        nonlocal node_counter, rel_counter
        if element in element_vars:
            return element_vars[element]
        if element[0] == "node":
            name = f"n{node_counter}"
            node_counter += 1
        else:
            name = f"r{rel_counter}"
            rel_counter += 1
        element_vars[element] = name
        return name

    def ensure_element_ops(element: Tuple[str, int]) -> Tuple[Operation, Operation]:
        """E+ and E- for *element*, created once even if shared."""
        if element in adds:
            return adds[element], removes[element]
        variable = var_for(element)
        add = cg.add_operation(
            Operation(OpKind.ELEMENT_ADD, variable, element=element, essential=True)
        )
        remove = cg.add_operation(
            Operation(OpKind.ELEMENT_REMOVE, variable, element=element, essential=True)
        )
        adds[element] = add
        removes[element] = remove
        return add, remove

    # -- essential operations (category i) ------------------------------
    for index, entry in enumerate(ground_truth.entries):
        element = (entry.key.element_kind, entry.key.element_id)
        add, remove = ensure_element_ops(element)
        access = cg.add_operation(
            Operation(
                OpKind.PROP_ACCESS,
                entry.alias,
                element=element,
                property_name=entry.key.name,
                essential=True,
                ground_truth_index=index,
            )
        )
        cg.add_strict(add, access)     # E+ ≺ (E.p)+
        cg.add_weak(access, remove)    # (E.p)+ ⪯ E-

    # -- supplementary operations (category ii) --------------------------
    next_alias = len(ground_truth.entries)
    node_ids = graph.node_ids()
    rel_ids = graph.relationship_ids()

    def random_element() -> Tuple[str, int]:
        if rel_ids and rng.random() < 0.3:
            return ("rel", rng.choice(rel_ids))
        return ("node", rng.choice(node_ids))

    for _ in range(rng.randint(0, max(0, extra_elements))):
        element = random_element()
        if element in adds:
            continue
        add, remove = ensure_element_ops(element)
        cg.add_weak(add, remove)       # E+ ⪯ E- (nothing forced in between)

    supplementary_aliases: List[str] = []
    alias_sources: Dict[str, Optional[str]] = {}
    for _ in range(rng.randint(0, max(0, extra_aliases))):
        alias = f"a{next_alias}"
        next_alias += 1
        supplementary_aliases.append(alias)
        # The alias binds to an expression over a random element (or over
        # nothing, i.e. a pure constant expression).
        source_element: Optional[Tuple[str, int]] = None
        if adds and rng.random() < 0.7:
            source_element = rng.choice(list(adds))
        elif node_ids and rng.random() < 0.5:
            source_element = random_element()
        alias_add = cg.add_operation(Operation(OpKind.ALIAS_ADD, alias))
        alias_remove = cg.add_operation(Operation(OpKind.ALIAS_REMOVE, alias))
        cg.add_strict(alias_add, alias_remove)  # a+ ≺ a-
        if source_element is not None:
            add, remove = ensure_element_ops(source_element)
            cg.add_strict(add, alias_add)      # N+ ≺ a+
            cg.add_weak(alias_add, remove)     # a+ ⪯ N-
            alias_sources[alias] = element_vars[source_element]
        else:
            alias_sources[alias] = None

    list_aliases: List[str] = []
    list_sources: Dict[str, Optional[str]] = {}
    for _ in range(rng.randint(0, max(0, extra_lists))):
        alias = f"a{next_alias}"
        next_alias += 1
        list_aliases.append(alias)
        source_element = None
        if adds and rng.random() < 0.6:
            source_element = rng.choice(list(adds))
        expand = cg.add_operation(Operation(OpKind.LIST_EXPAND, alias))
        truncate = cg.add_operation(Operation(OpKind.LIST_TRUNCATE, alias))
        cg.add_strict(expand, truncate)            # l+ ≺ l-
        if source_element is not None:
            add, remove = ensure_element_ops(source_element)
            cg.add_strict(add, expand)             # N+ ≺ l+
            cg.add_weak(expand, remove)            # l+ ⪯ N-
            list_sources[alias] = element_vars[source_element]
        else:
            list_sources[alias] = None

    cg.validate_acyclic()
    return PlanSeed(
        graph=cg,
        ground_truth=ground_truth,
        element_vars=element_vars,
        supplementary_aliases=supplementary_aliases,
        alias_sources=alias_sources,
        list_aliases=list_aliases,
        list_sources=list_sources,
        next_alias=next_alias,
    )
