"""Paired add/subtract operations (paper §3.2, Table 1).

GQS decomposes the synthesis task into operations over graph elements,
aliases, and lists:

=========  ====================  ========================
notation   operation             clause
=========  ====================  ========================
E+         introduce elements    (OPTIONAL) MATCH
E-         remove elements       WITH, RETURN
A+         create aliases        WITH, RETURN
A-         remove aliases        WITH, RETURN
L+         expand lists          UNWIND (or CALL ... YIELD)
L-         truncate lists        WITH, RETURN
(E.p)+     access a property     WITH, RETURN
=========  ====================  ========================

*Essential* operations realize the expected result set (element
introduction, property access, and the paired element removals);
*supplementary* operations add unrelated elements, aliases, and lists, each
paired with a removal.  Operations carry the temporal constraints of §3.3:
``O ≺ O'`` (strict: O strictly before O') and ``O ⪯ O'`` (weak: O' may share
O's step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = [
    "OpKind",
    "Operation",
    "ConstraintGraph",
    "MATCH_LIKE",
    "PROJECTION_LIKE",
    "UNWIND_LIKE",
]


class OpKind:
    """Operation kind tags."""

    ELEMENT_ADD = "element_add"          # E+
    ELEMENT_REMOVE = "element_remove"    # E-
    PROP_ACCESS = "prop_access"          # (E.p)+
    ALIAS_ADD = "alias_add"              # A+
    ALIAS_REMOVE = "alias_remove"        # A-
    LIST_EXPAND = "list_expand"          # L+
    LIST_TRUNCATE = "list_truncate"      # L-


# Clause families an operation may be realized in (Table 1).
MATCH_LIKE = frozenset(["MATCH", "OPTIONAL MATCH"])
PROJECTION_LIKE = frozenset(["WITH", "RETURN"])
UNWIND_LIKE = frozenset(["UNWIND", "CALL"])

_CLAUSES_FOR_KIND = {
    OpKind.ELEMENT_ADD: MATCH_LIKE,
    OpKind.ELEMENT_REMOVE: PROJECTION_LIKE,
    OpKind.PROP_ACCESS: PROJECTION_LIKE,
    OpKind.ALIAS_ADD: PROJECTION_LIKE,
    OpKind.ALIAS_REMOVE: PROJECTION_LIKE,
    OpKind.LIST_EXPAND: UNWIND_LIKE,
    OpKind.LIST_TRUNCATE: PROJECTION_LIKE,
}


@dataclass(frozen=True)
class Operation:
    """One schedulable operation.

    ``variable`` is the query variable the operation concerns (a node or
    relationship variable for E± / (E.p)+, an alias name for A± and L±).
    ``element`` identifies the graph element for element operations as a
    ``(kind, id)`` pair; ``property_name`` is set for property accesses;
    ``essential`` marks category-(i) operations tied to the expected result
    set.  ``ground_truth_index`` records which expected-result column a
    property access feeds.
    """

    kind: str
    variable: str
    element: Optional[Tuple[str, int]] = None
    property_name: Optional[str] = None
    essential: bool = False
    ground_truth_index: Optional[int] = None

    @property
    def clause_kinds(self) -> FrozenSet[str]:
        return _CLAUSES_FOR_KIND[self.kind]

    def __str__(self) -> str:
        symbol = {
            OpKind.ELEMENT_ADD: "+",
            OpKind.ELEMENT_REMOVE: "-",
            OpKind.PROP_ACCESS: ".get",
            OpKind.ALIAS_ADD: "+",
            OpKind.ALIAS_REMOVE: "-",
            OpKind.LIST_EXPAND: "+",
            OpKind.LIST_TRUNCATE: "-",
        }[self.kind]
        prop = f".{self.property_name}" if self.property_name else ""
        return f"{self.variable}{prop}{symbol}"


class ConstraintGraph:
    """The DAG of operations and temporal constraints fed to Algorithm 1.

    Nodes are :class:`Operation` instances; edges are the ``≺`` constraints.
    Weak constraints ``O ⪯ O'`` are stored both as DAG edges (so that O' is
    never scheduled *before* O) and in ``weak_related`` (so the scheduler may
    co-locate O' with O in the same step, per Algorithm 1 lines 7-11).
    """

    def __init__(self) -> None:
        self.operations: List[Operation] = []
        self._successors: Dict[Operation, Set[Operation]] = {}
        self._predecessors: Dict[Operation, Set[Operation]] = {}
        self.weak_related: Dict[Operation, Set[Operation]] = {}

    def add_operation(self, op: Operation) -> Operation:
        if op in self._successors:
            raise ValueError(f"duplicate operation {op}")
        self.operations.append(op)
        self._successors[op] = set()
        self._predecessors[op] = set()
        self.weak_related[op] = set()
        return op

    def add_strict(self, before: Operation, after: Operation) -> None:
        """Record ``before ≺ after``."""
        self._successors[before].add(after)
        self._predecessors[after].add(before)

    def add_weak(self, before: Operation, after: Operation) -> None:
        """Record ``before ⪯ after``."""
        self.add_strict(before, after)
        self.weak_related[before].add(after)

    def indegree(self, op: Operation) -> int:
        return len(self._predecessors[op])

    def predecessors(self, op: Operation) -> Set[Operation]:
        return set(self._predecessors[op])

    def remove(self, ops: List[Operation]) -> None:
        """Remove scheduled operations and their incident constraints."""
        for op in ops:
            for succ in self._successors.pop(op):
                self._predecessors[succ].discard(op)
            for pred in self._predecessors.pop(op):
                self._successors[pred].discard(op)
            self.weak_related.pop(op, None)
            self.operations.remove(op)

    def __len__(self) -> int:
        return len(self.operations)

    def validate_acyclic(self) -> None:
        """Raise ValueError if the constraint graph has a cycle."""
        indegrees = {op: self.indegree(op) for op in self.operations}
        queue = [op for op, deg in indegrees.items() if deg == 0]
        visited = 0
        while queue:
            op = queue.pop()
            visited += 1
            for succ in self._successors[op]:
                indegrees[succ] -= 1
                if indegrees[succ] == 0:
                    queue.append(succ)
        if visited != len(self.operations):
            raise ValueError("constraint graph contains a cycle")
