"""Simulated GDBs under test: dialects, fault injection, engines."""

from repro.gdb.catalog import all_faults, build_catalog, faults_for, gqs_scope_faults
from repro.gdb.dialects import DIALECTS, FALKORDB, KUZU, MEMGRAPH, NEO4J, Dialect
from repro.gdb.engines import (
    ALL_ENGINE_NAMES,
    EngineOptions,
    EngineSpec,
    FalkorDBSim,
    GraphDatabase,
    KuzuSim,
    MemgraphSim,
    Neo4jSim,
    ReferenceGDB,
    create_engine,
)
from repro.gdb.faults import Fault, FaultEffect, QueryFeatures, extract_features

__all__ = [
    "Dialect",
    "DIALECTS",
    "NEO4J",
    "MEMGRAPH",
    "KUZU",
    "FALKORDB",
    "GraphDatabase",
    "Neo4jSim",
    "MemgraphSim",
    "KuzuSim",
    "FalkorDBSim",
    "ReferenceGDB",
    "EngineOptions",
    "EngineSpec",
    "create_engine",
    "ALL_ENGINE_NAMES",
    "Fault",
    "FaultEffect",
    "QueryFeatures",
    "extract_features",
    "all_faults",
    "build_catalog",
    "faults_for",
    "gqs_scope_faults",
]
