"""Simulated graph databases under test.

Each engine couples the reference executor with a dialect and a fault
catalog.  Execution proceeds exactly like a production GDB from the tester's
perspective: load a graph, send Cypher (text or AST), get a result set or an
error.  Under the hood, the engine computes the *correct* answer with the
reference executor and then lets the first triggered fault perturb it —
wrong values, missing rows, crashes, hangs.

The ``last_fired_fault`` attribute is a white-box accounting hook: black-box
testers never see it, but the experiment harness uses it to deduplicate
detected discrepancies into distinct bugs, playing the role of the manual
root-cause deduplication the paper performs (§7, Limitations).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import KW_ONLY, dataclass, replace
from time import perf_counter
from typing import Any, Dict, List, Optional, Union

from repro.cypher import ast
from repro.cypher.parser import parse_query
from repro.cypher.printer import print_query
from repro.engine.binding import ResultSet
from repro.engine.envelope import ENVELOPE, evaluation_budget, parked_envelope
from repro.engine.errors import (
    CypherError,
    CypherRuntimeError,
    CypherTypeError,
    DatabaseCrash,
    EvaluationBudgetExceeded,
    PlanDivergenceError,
)
from repro.engine.executor import Executor, default_procedures
from repro.engine.plan import ExecutionContext, PlanCache, build_plan
from repro.gdb.catalog import faults_for
from repro.gdb.dialects import DIALECTS, Dialect
from repro.gdb.faults import Fault, extract_features
from repro.graph import values as V
from repro.graph.model import PropertyGraph
from repro.graph.schema import GraphSchema
from repro.obs import PROBE
from repro.obs.coverage import query_feature_tags
from repro.obs.profile import PROFILE_STEP_CEILING, OperatorProfile

__all__ = [
    "GraphDatabase",
    "Session",
    "Neo4jSim",
    "MemgraphSim",
    "KuzuSim",
    "FalkorDBSim",
    "ReferenceGDB",
    "EngineOptions",
    "EngineSpec",
    "create_engine",
    "ALL_ENGINE_NAMES",
    "EXECUTION_MODES",
]

AnyQuery = Union[str, ast.Query, ast.UnionQuery]

ALL_ENGINE_NAMES = ("neo4j", "memgraph", "kuzu", "falkordb")

# How an engine evaluates the *correct* answer before fault perturbation:
# the reference interpreter, the compiled operator pipeline, or both with a
# differential self-check (any mismatch raises PlanDivergenceError).
EXECUTION_MODES = ("interpreted", "compiled", "dual")


@dataclass(frozen=True)
class EngineOptions:
    """Unified engine tuning knobs (the former scatter of keyword args).

    One frozen value object carries every cross-cutting engine switch:
    fault injection on/off, the §5.4.4 latency-compression ``gate_scale``,
    the default ``restart`` behavior for :meth:`GraphDatabase.load_graph` /
    :meth:`GraphDatabase.session`, and the execution mode.  Everything that
    builds engines — :class:`GraphDatabase` and subclasses,
    :func:`create_engine`, :class:`EngineSpec` — accepts one of these;
    the old keyword arguments remain supported and, when given, override
    the corresponding option field.
    """

    faults_enabled: bool = True
    gate_scale: float = 1.0
    restart: bool = True
    execution_mode: str = "interpreted"

    def __post_init__(self):
        if self.execution_mode not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {self.execution_mode!r}; expected "
                f"one of {EXECUTION_MODES}"
            )

    def merged(
        self,
        *,
        faults_enabled: Optional[bool] = None,
        gate_scale: Optional[float] = None,
        restart: Optional[bool] = None,
        execution_mode: Optional[str] = None,
    ) -> "EngineOptions":
        """A copy with any non-None legacy keyword overrides applied."""
        updates = {
            name: value
            for name, value in (
                ("faults_enabled", faults_enabled),
                ("gate_scale", gate_scale),
                ("restart", restart),
                ("execution_mode", execution_mode),
            )
            if value is not None
        }
        return replace(self, **updates) if updates else self


class Session:
    """A driver-style session bound to one engine and one loaded graph.

    Mirrors how the real GDB Python drivers are used::

        with db.session(graph, schema) as sess:
            result = sess.run("MATCH (n) RETURN n")

    ``run`` delegates to :meth:`GraphDatabase.execute`, so faults, crash
    state, and white-box accounting (``last_fault``) behave exactly as they
    do for direct execution.  Closing the session (or leaving the ``with``
    block) ends it; a closed session refuses further queries, like a real
    driver's.  The engine itself stays loaded — sessions scope *usage*, not
    engine lifetime, matching the paper's long-session semantics (§5.4.4).
    """

    def __init__(self, engine: "GraphDatabase"):
        self._engine = engine
        self._closed = False

    @property
    def engine(self) -> "GraphDatabase":
        return self._engine

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def last_fault(self) -> Optional[Fault]:
        """White-box accounting hook (see ``last_fired_fault``)."""
        return self._engine.last_fired_fault

    def run(self, query: AnyQuery) -> ResultSet:
        """Execute *query* in this session; raises like ``execute``."""
        if self._closed:
            raise CypherRuntimeError("session is closed")
        return self._engine.execute(query)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Session({self._engine.name}, {state})"


class GraphDatabase:
    """Base class for the simulated engines."""

    def __init__(
        self,
        dialect: Dialect,
        faults: Optional[List[Fault]] = None,
        options: Optional[EngineOptions] = None,
        *,
        faults_enabled: Optional[bool] = None,
        gate_scale: Optional[float] = None,
        execution_mode: Optional[str] = None,
    ):
        # The only allowed positional tuning argument is an EngineOptions;
        # the scalar flags stay keyword-only, as before the unification.
        if options is not None and not isinstance(options, EngineOptions):
            raise TypeError(
                f"options must be an EngineOptions, got {options!r}; "
                "pass tuning flags by keyword"
            )
        # Legacy keyword args override the unified options object, so every
        # pre-EngineOptions call site keeps its exact behavior.
        self.options = (options or EngineOptions()).merged(
            faults_enabled=faults_enabled,
            gate_scale=gate_scale,
            execution_mode=execution_mode,
        )
        self.dialect = dialect
        self.name = dialect.name
        self.execution_mode = self.options.execution_mode
        # gate_scale < 1 compresses fault latency: the experiment harness
        # uses it to emulate the paper's months-long full campaign within a
        # benchmark-sized run (documented in EXPERIMENTS.md).
        self.gate_scale = self.options.gate_scale
        self.faults = list(faults) if faults is not None else faults_for(dialect.name)
        self.faults_enabled = self.options.faults_enabled
        self.graph: Optional[PropertyGraph] = None
        self.schema: Optional[GraphSchema] = None
        self.last_fired_fault: Optional[Fault] = None
        # Session-query counter at the moment the last fault fired — the
        # flight recorder stores it so session-gated faults (§5.4.4) refire
        # on replay.
        self.last_fault_session_queries: Optional[int] = None
        self.queries_since_restart = 0
        self.total_queries = 0
        self.crashed = False
        self._executor: Optional[Executor] = None
        # Plans are graph-independent (they resolve the graph through the
        # execution context), so the cache lives for the engine's lifetime
        # and survives load_graph.
        self._plan_cache = PlanCache()
        self._plan_profile: Dict[str, int] = {}
        self._op_profile = OperatorProfile()
        # parse_query and extract_features are pure functions of the query
        # text (ASTs are never mutated after construction), so repeated
        # texts — replays, differential runs, cache-warm campaigns — skip
        # the parse and analysis walks entirely.  Maps text -> (tree,
        # features).
        self._query_cache: "OrderedDict[str, Any]" = OrderedDict()

    # -- lifecycle ------------------------------------------------------

    def restart(self) -> None:
        """Restart the instance: clears session state (and crash status)."""
        self.queries_since_restart = 0
        self.crashed = False

    def load_graph(
        self,
        graph: PropertyGraph,
        schema: Optional[GraphSchema] = None,
        *,
        restart: Optional[bool] = None,
    ) -> None:
        """Load (a copy of) *graph*; optionally restart the instance.

        GQS restarts the engine per graph for reproducibility; long-session
        testers pass ``restart=False`` so engine state accumulates
        (§5.4.4's crash-bug trade-off).  When *restart* is omitted the
        engine's :class:`EngineOptions` default applies.
        """
        if restart is None:
            restart = self.options.restart
        if self.dialect.requires_schema and schema is None:
            raise CypherRuntimeError(
                f"{self.dialect.display_name} requires a schema before "
                f"loading data"
            )
        self.graph = graph.copy()
        self.schema = schema
        self._executor = Executor(
            self.graph,
            enforce_rel_uniqueness=self.dialect.enforces_rel_uniqueness,
            procedures=default_procedures()
            if self.dialect.supports_call_procedures
            else {},
        )
        if restart:
            self.restart()

    def session(
        self,
        graph: Optional[PropertyGraph] = None,
        schema: Optional[GraphSchema] = None,
        *,
        restart: Optional[bool] = None,
    ) -> Session:
        """Open a driver-style :class:`Session`, optionally loading *graph*.

        With *graph* given, it is loaded first (honouring *restart*, the
        §5.4.4 session-accumulation switch); without it, the session runs
        against whatever is already loaded.  ``load_graph``/``execute``
        remain available as thin, session-free access for existing testers.
        """
        if graph is not None:
            self.load_graph(graph, schema, restart=restart)
        return Session(self)

    def spec(self) -> Dict[str, Any]:
        """The JSON-ready recipe that rebuilds this engine configuration.

        Mirrors :class:`EngineSpec`'s fields; the flight recorder embeds it
        in repro bundles so ``repro replay`` can construct a replica with
        the same fault switch and gate scale.
        """
        return {
            "name": self.name,
            "faults_enabled": self.faults_enabled,
            "gate_scale": self.gate_scale,
            "execution_mode": self.execution_mode,
        }

    # -- query execution ----------------------------------------------------

    def execute(self, query: AnyQuery) -> ResultSet:
        """Execute *query*; raises CypherError subclasses on failure."""
        if not PROBE.on:
            return self._execute_guarded(query)
        start = perf_counter()
        try:
            return self._execute_guarded(query)
        finally:
            metrics = PROBE.metrics
            metrics.counter("engine.queries", engine=self.name).inc()
            if self.last_fired_fault is not None:
                metrics.counter(
                    "engine.fault_queries", engine=self.name
                ).inc()
            metrics.histogram(
                "stage.seconds", timing=True, stage="execute"
            ).observe(perf_counter() - start)
            executor = self._executor
            if executor is not None:
                # The matcher/evaluator hot paths count their own calls as
                # plain integer increments (cheap enough for per-row code);
                # the per-query flush turns them into registry counters.
                matcher, evaluator = executor.matcher, executor.evaluator
                if matcher.profile_calls:
                    metrics.counter("matcher.calls").inc(
                        matcher.profile_calls
                    )
                    matcher.profile_calls = 0
                if evaluator.profile_calls:
                    metrics.counter("evaluator.calls").inc(
                        evaluator.profile_calls
                    )
                    evaluator.profile_calls = 0
            if self.execution_mode == "compiled":
                # Dual mode deliberately flushes nothing plan-related: its
                # observable stream must match an interpreted run's exactly.
                for name, value in self._plan_cache.drain().items():
                    metrics.counter(f"plan.{name}").inc(value)
                if self._plan_profile:
                    for operator, count in self._plan_profile.items():
                        metrics.counter(
                            "plan.rows", operator=operator
                        ).inc(count)
                    self._plan_profile.clear()
                if self._op_profile:
                    # Boundary-level operator profile: invocations/steps as
                    # deterministic counters, wall time as a timing
                    # histogram (excluded from deterministic views).
                    self._op_profile.flush(metrics)

    def _execute_guarded(self, query: AnyQuery) -> ResultSet:
        # Recursion guard of the evaluation resource envelope: a synthesized
        # AST deep enough to exhaust the interpreter stack is a harness
        # condition, not engine behavior — surface it as the typed budget
        # error so the campaign kernel records a ``harness_error``, never a
        # false bug.  (Raising *after* the stack unwinds is safe: Python
        # leaves headroom inside the except block.)
        try:
            return self._execute(query)
        except RecursionError as exc:
            raise EvaluationBudgetExceeded(
                f"recursion limit exhausted during evaluation: {exc}"
            ) from exc

    def _execute(self, query: AnyQuery) -> ResultSet:
        if self._executor is None or self.graph is None:
            raise CypherRuntimeError("no graph loaded")
        if self.crashed:
            raise DatabaseCrash(
                f"{self.dialect.display_name} instance is down; restart it"
            )

        if isinstance(query, str):
            text = query
            entry = self._query_cache.get(text)
            tree = entry[0] if entry is not None else parse_query(text)
        else:
            tree = query
            text = print_query(query)
            entry = self._query_cache.get(text)

        self.queries_since_restart += 1
        self.total_queries += 1
        self.last_fired_fault = None
        self.last_fault_session_queries = None

        if entry is not None:
            features = entry[1]
        else:
            features = extract_features(tree, text)
            self._query_cache[text] = (tree, features)
            while len(self._query_cache) > 1024:
                self._query_cache.popitem(last=False)
        self._check_dialect_support(features)

        fired: Optional[Fault] = None
        if self.faults_enabled:
            # Crash/hang/exception faults abort execution before any result
            # is produced, so they take precedence over state faults, which
            # in turn precede logic faults (both fire post-execution).
            ordered = sorted(
                self.faults, key=lambda fault: (fault.is_logic, fault.is_state)
            )
            for fault in ordered:
                if fault.triggers(
                    features, self.queries_since_restart, self.gate_scale
                ):
                    fired = fault
                    break

        if fired is not None and not fired.is_logic and not fired.is_state:
            # Crash/hang/exception faults fire before producing any rows.
            self.last_fired_fault = fired
            self.last_fault_session_queries = self.queries_since_restart
            if fired.category == "crash":
                self.crashed = True
            fired.effect(ResultSet([], []), features.signature_hash())

        # State faults corrupt the graph relative to its pre-write state,
        # so the snapshot must be taken before the write executes.
        state_before = (
            self.graph.copy() if fired is not None and fired.is_state else None
        )

        try:
            correct = self._evaluate_reference(tree, text)
        except CypherTypeError:
            if self.dialect.lenient_type_errors:
                # Engines like Memgraph coerce runtime type mismatches into
                # empty results instead of raising.
                return ResultSet([], [])
            raise

        if fired is not None:
            self.last_fired_fault = fired
            self.last_fault_session_queries = self.queries_since_restart
            if fired.is_state:
                # The answer is correct; the *database state* is not
                # (repro.gdb.state_effects).
                fired.state_effect(
                    self.graph, state_before, tree, features.signature_hash()
                )
                return correct
            return fired.effect(correct, features.signature_hash())
        return correct

    # -- execution modes ---------------------------------------------------

    def _evaluate_reference(self, tree: AnyQuery, text: str) -> ResultSet:
        """Compute the correct answer via the configured execution mode."""
        mode = self.execution_mode
        if mode == "interpreted":
            return self._executor.execute(tree)
        if mode == "compiled":
            # Plan build and execution share the try in _execute, so a
            # CypherError raised either way surfaces identically.
            plan = self._plan_for(tree, text)
            if plan.is_fallback:
                if getattr(plan, "reason", None) == "write clause":
                    # Write statements are deliberately unplannable; the
                    # interpreted executor is the one source of truth for
                    # mutations, and the counter keeps the fallback visible.
                    self._plan_cache.write_fallbacks += 1
                return self._executor.execute(tree)
            ctx = self._plan_context()
            if ctx.op_profile is not None and ENVELOPE.limit is None:
                # The envelope's charge sites only tick while a budget is
                # active; an unreachable ceiling makes profiled execution
                # count evaluation steps without ever being able to blow —
                # no control-flow or RNG change, results stay identical.
                with evaluation_budget(PROFILE_STEP_CEILING):
                    return plan.execute(ctx)
            return plan.execute(ctx)

        # dual: interpreted first (it owns the observable result), then the
        # compiled leg under a parked envelope so its steps neither consume
        # budget nor perturb the interpreted run's accounting.
        try:
            interpreted = self._executor.execute(tree)
        except CypherError as exc:
            self._check_compiled_error(tree, text, exc)
            raise
        plan = self._plan_for(tree, text)
        if plan.is_fallback:
            return interpreted
        with parked_envelope():
            try:
                compiled = plan.execute(self._plan_context())
            except CypherError as cexc:
                self._plan_cache.divergences += 1
                raise PlanDivergenceError(
                    f"compiled execution raised {type(cexc).__name__} where "
                    f"interpreted succeeded ({cexc}); query: {text}"
                ) from cexc
        self._compare_modes(interpreted, compiled, text)
        return interpreted

    def _check_compiled_error(
        self, tree: AnyQuery, text: str, exc: CypherError
    ) -> None:
        """Dual-mode check that the compiled leg fails like the interpreter."""
        plan = self._plan_for(tree, text)
        if plan.is_fallback:
            return
        with parked_envelope():
            try:
                plan.execute(self._plan_context())
            except CypherError as cexc:
                if type(cexc) is type(exc):
                    return
                self._plan_cache.divergences += 1
                raise PlanDivergenceError(
                    f"interpreted raised {type(exc).__name__} but compiled "
                    f"raised {type(cexc).__name__}; query: {text}"
                ) from cexc
        self._plan_cache.divergences += 1
        raise PlanDivergenceError(
            f"interpreted raised {type(exc).__name__} but compiled "
            f"succeeded; query: {text}"
        )

    def _compare_modes(
        self, interpreted: ResultSet, compiled: ResultSet, text: str
    ) -> None:
        same = (
            interpreted.columns == compiled.columns
            and bool(interpreted.ordered) == bool(compiled.ordered)
            and len(interpreted.rows) == len(compiled.rows)
        )
        if same:
            for left, right in zip(interpreted.rows, compiled.rows):
                left_key = tuple(V.equivalence_key(value) for value in left)
                right_key = tuple(V.equivalence_key(value) for value in right)
                if left_key != right_key:
                    same = False
                    break
        if not same:
            self._plan_cache.divergences += 1
            raise PlanDivergenceError(
                f"compiled and interpreted results differ; query: {text}"
            )

    def _plan_for(self, tree: AnyQuery, text: str):
        cache = self._plan_cache
        key = cache.key_for_text(text)
        if key is None:
            key = PlanCache.fingerprint(query_feature_tags(tree), text)
            cache.remember_text(text, key)
        plan = cache.get(key)
        if plan is None:
            plan = build_plan(
                tree,
                enforce_rel_uniqueness=self.dialect.enforces_rel_uniqueness,
            )
            cache.put(key, plan)
        return plan

    def _plan_context(self) -> ExecutionContext:
        # Operator row tallies are recorded only in pure compiled mode: the
        # dual-mode compiled leg must stay invisible so a dual campaign's
        # events and checkpoints stay byte-identical to an interpreted one.
        profile = None
        op_profile = None
        if PROBE.on and self.execution_mode == "compiled":
            profile = self._plan_profile
            op_profile = self._op_profile
        return ExecutionContext(
            self.graph,
            procedures=self._executor.procedures,
            profile=profile,
            op_profile=op_profile,
        )

    def _check_dialect_support(self, features) -> None:
        unsupported = self.dialect.unsupported_functions
        if unsupported:
            for name in features.functions:
                if name in unsupported:
                    raise CypherRuntimeError(
                        f"{self.dialect.display_name}: unknown function "
                        f"`{name}`"
                    )

    # -- driver-level output (what differential testers compare) ------------

    def format_result(self, result: ResultSet) -> List[List[str]]:
        """Render a result the way this engine's driver prints it.

        Thin delegate for :meth:`repro.engine.binding.ResultSet.to_table`,
        which owns the rendering; differential testers compare these
        strings, and the per-engine float formatting differences are one of
        the organic sources of GDsmith's false positives (§5.4.3).
        """
        return result.to_table(self.dialect)

    # -- cost model -------------------------------------------------------

    def cost_of(self, query: AnyQuery) -> float:
        """Simulated wall-clock seconds to run *query* on this engine."""
        if isinstance(query, str):
            tree = parse_query(query)
        else:
            tree = query
        steps = 0
        def count(node):
            nonlocal steps
            if isinstance(node, ast.UnionQuery):
                count(node.left)
                count(node.right)
            else:
                steps += len(node.clauses)
        count(tree)
        return self.dialect.cost_of_steps(steps)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(faults={len(self.faults)})"


class Neo4jSim(GraphDatabase):
    """Simulated Neo4j: on-disk, strict types, full procedure support."""

    def __init__(self, options: Optional[EngineOptions] = None, *,
                 faults_enabled: Optional[bool] = None,
                 gate_scale: Optional[float] = None,
                 execution_mode: Optional[str] = None):
        super().__init__(DIALECTS["neo4j"], options=options,
                         faults_enabled=faults_enabled,
                         gate_scale=gate_scale, execution_mode=execution_mode)


class MemgraphSim(GraphDatabase):
    """Simulated Memgraph: in-memory, lenient runtime types, no db.labels."""

    def __init__(self, options: Optional[EngineOptions] = None, *,
                 faults_enabled: Optional[bool] = None,
                 gate_scale: Optional[float] = None,
                 execution_mode: Optional[str] = None):
        super().__init__(DIALECTS["memgraph"], options=options,
                         faults_enabled=faults_enabled,
                         gate_scale=gate_scale, execution_mode=execution_mode)


class KuzuSim(GraphDatabase):
    """Simulated Kùzu: schema-first, no relationship-uniqueness guarantee."""

    def __init__(self, options: Optional[EngineOptions] = None, *,
                 faults_enabled: Optional[bool] = None,
                 gate_scale: Optional[float] = None,
                 execution_mode: Optional[str] = None):
        super().__init__(DIALECTS["kuzu"], options=options,
                         faults_enabled=faults_enabled,
                         gate_scale=gate_scale, execution_mode=execution_mode)


class FalkorDBSim(GraphDatabase):
    """Simulated FalkorDB: no relationship uniqueness, rounded float output."""

    def __init__(self, options: Optional[EngineOptions] = None, *,
                 faults_enabled: Optional[bool] = None,
                 gate_scale: Optional[float] = None,
                 execution_mode: Optional[str] = None):
        super().__init__(DIALECTS["falkordb"], options=options,
                         faults_enabled=faults_enabled,
                         gate_scale=gate_scale, execution_mode=execution_mode)


class ReferenceGDB(GraphDatabase):
    """A fault-free engine with reference semantics (testing/validation)."""

    def __init__(self, name: str = "reference",
                 execution_mode: str = "interpreted"):
        dialect = DIALECTS["neo4j"]
        super().__init__(
            dialect,
            faults=[],
            options=EngineOptions(
                faults_enabled=False, execution_mode=execution_mode
            ),
        )
        self.name = name


_ENGINE_CLASSES = {
    "neo4j": Neo4jSim,
    "memgraph": MemgraphSim,
    "kuzu": KuzuSim,
    "falkordb": FalkorDBSim,
}


def create_engine(
    name: str,
    options: Optional[EngineOptions] = None,
    *,
    faults_enabled: Optional[bool] = None,
    gate_scale: Optional[float] = None,
    execution_mode: Optional[str] = None,
) -> GraphDatabase:
    """Factory for the four simulated engines.

    Tuning arrives either as one :class:`EngineOptions` value or via the
    legacy keyword flags (which override option fields when both are
    given).  The flags stay keyword-only — ``create_engine("neo4j",
    gate_scale=0.1)`` reads unambiguously at call sites, and positional
    booleans cannot silently swap.
    """
    try:
        cls = _ENGINE_CLASSES[name]
    except KeyError:
        raise ValueError(f"unknown engine {name!r}") from None
    return cls(
        options=options,
        faults_enabled=faults_enabled,
        gate_scale=gate_scale,
        execution_mode=execution_mode,
    )


@dataclass(frozen=True)
class EngineSpec:
    """Picklable recipe for building an engine inside a worker process.

    Engine instances hold a loaded graph and a live executor, so they never
    cross process boundaries; the parallel campaign runner ships this spec
    instead and each worker calls :meth:`create` locally.  The tuning
    fields are keyword-only, matching :func:`create_engine`; the
    :class:`EngineOptions` bridge (:meth:`from_options` / :meth:`options`)
    converts between the two forms without changing the pickled layout or
    the flight-recorder bundle format.
    """

    name: str
    _: KW_ONLY
    faults_enabled: bool = True
    gate_scale: float = 1.0
    execution_mode: str = "interpreted"

    @classmethod
    def from_options(cls, name: str, options: EngineOptions) -> "EngineSpec":
        return cls(
            name,
            faults_enabled=options.faults_enabled,
            gate_scale=options.gate_scale,
            execution_mode=options.execution_mode,
        )

    def options(self) -> EngineOptions:
        return EngineOptions(
            faults_enabled=self.faults_enabled,
            gate_scale=self.gate_scale,
            execution_mode=self.execution_mode,
        )

    def create(self) -> GraphDatabase:
        return create_engine(self.name, self.options())
