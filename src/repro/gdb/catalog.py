"""The injected-fault catalog.

36 faults mirror the paper's Table 3 (the bugs GQS found):

* Neo4j      2 logic + 3 other   (e.g. Figure 7: wrong property value)
* Memgraph   6 logic + 1 other   (e.g. Figure 8: empty result under
                                  Cartesian-product optimization; Figure 9:
                                  replace('', …) hang)
* Kùzu       5 logic + 2 other   (binary-operator helper bug; unsafe types)
* FalkorDB  13 logic + 4 other   (Figure 1: wrong value with undirected
                                  patterns; Figure 17: UNWIND fetches only
                                  the first record)

Two additional *session-only* crashes (``falkordb-S1``/``S2``) model the two
FalkorDB bugs that GDBMeter and Gamera found after 21 and 17 hours of
continuous testing and that GQS misses because it restarts the instance per
graph (§5.4.4).  They are excluded from the 36 via ``session_only``.

Five *state-corruption* faults (``*-ST*``, category ``"state"``) model the
Dinkel-style bug class where a write statement answers correctly but leaves
the database in the wrong state (lost SET, phantom MERGE re-create,
dangling-relationship DETACH DELETE, REMOVE no-op).  They trigger only on
write features, so read-only campaigns never see them, and are likewise
excluded from the GQS-scope 36.

``introduced_year`` encodes Table 4's latency analysis (FalkorDB bugs
average 4.0 years latent, max 5.0; Memgraph 3.4; Neo4j 2.2, max 2.7);
``confirmed``/``fixed`` mirror Table 3's confirmation columns.

Gate values are calibrated against the measured feature distributions of the
GQS synthesizer and the five baseline generators (see
``scripts/calibrate_faults.py``): faults the paper reports as found within
24 hours have an effective GQS trigger rate around 1/400 queries; the rest
sit near 1/8000 and surface only in longer campaigns.
"""

from __future__ import annotations

from typing import List

from repro.gdb.faults import Fault, FaultEffect
from repro.gdb.state_effects import StateEffect

__all__ = ["build_catalog", "faults_for", "all_faults", "gqs_scope_faults"]

E = FaultEffect


def build_catalog() -> List[Fault]:
    """Construct the full fault catalog (36 GQS-scope + 2 session-only +
    5 state-corruption faults for the stateful write workloads)."""
    faults: List[Fault] = []

    # ------------------------------------------------------------------
    # Neo4j: 2 logic + 3 other, all confirmed, all fixed (Table 3).
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "neo4j-L1", "neo4j",
            "wrong property value returned when an UNWIND separates two MATCH "
            "clauses with many patterns (Figure 7)",
            "logic", 2.7,
            lambda f: f.unwind_between_matches and f.patterns >= 3 and f.depth >= 3,
            E.wrong_value, confirmed=True, fixed=True, gate=4,
        ),
        Fault(
            "neo4j-L2", "neo4j",
            "DISTINCT projection loses its deduplication when combined with "
            "ORDER BY over heavily shared variables",
            "logic", 1.8,
            lambda f: f.has_distinct and f.has_order_by and f.dependencies >= 20,
            E.duplicate_rows, confirmed=True, fixed=True, gate=4800,
        ),
        Fault(
            "neo4j-O1", "neo4j",
            "stack exhaustion on deeply nested expressions",
            "exception", 2.2,
            lambda f: f.depth >= 9,
            E.exception, confirmed=True, fixed=True, gate=320,
        ),
        Fault(
            "neo4j-O2", "neo4j",
            "internal exception when CALL output feeds a UNION branch",
            "exception", 1.9,
            lambda f: f.has_call and f.has_union,
            E.exception, confirmed=True, fixed=True, gate=96,
        ),
        Fault(
            "neo4j-O3", "neo4j",
            "runaway memory when a single MATCH carries very many patterns",
            "memory", 2.1,
            lambda f: f.patterns >= 9,
            E.hang, confirmed=True, fixed=True, gate=2720,
        ),
    ]

    # ------------------------------------------------------------------
    # Memgraph: 6 logic + 1 other; all confirmed, 1 logic fixed.
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "memgraph-L1", "memgraph",
            "empty result when Cartesian-product optimization combines with "
            "filtering across five or more clauses (Figure 8)",
            "logic", 3.4,
            lambda f: (
                f.match_count + f.optional_match_count >= 2
                and f.has_order_by
                and f.clauses >= 5
                and f.has_where
            ),
            E.empty_result, confirmed=True, fixed=True, gate=280,
        ),
        Fault(
            "memgraph-L2", "memgraph",
            "empty result when a WITH projection precedes a WHERE filter "
            "(Figure 16; invisible to ternary-logic partitioning)",
            "logic", 3.0,
            lambda f: f.with_count >= 1 and f.has_where and f.dependencies >= 6,
            E.empty_result, confirmed=True, fixed=False, gate=400,
        ),
        Fault(
            "memgraph-L3", "memgraph",
            "ORDER BY ... LIMIT drops one qualifying record",
            "logic", 3.2,
            lambda f: f.has_order_by and f.has_limit and f.clauses >= 3,
            E.drop_last_row, confirmed=True, fixed=False, gate=3600,
        ),
        Fault(
            "memgraph-L4", "memgraph",
            "XOR in predicates is evaluated with inverted ternary semantics",
            "logic", 4.1,
            lambda f: f.xor_ops >= 1 and f.has_where,
            E.empty_result, confirmed=True, fixed=False, gate=272,
        ),
        Fault(
            "memgraph-L5", "memgraph",
            "left()/right() return values are shifted by one character in "
            "complex projections",
            "logic", 3.6,
            lambda f: (
                ("left" in f.functions or "right" in f.functions) and f.depth >= 4
            ),
            E.wrong_value, confirmed=True, fixed=False, gate=5040,
        ),
        Fault(
            "memgraph-L6", "memgraph",
            "duplicated record when UNWIND output is aggregated downstream",
            "logic", 2.8,
            lambda f: f.unwind_count >= 1 and f.aggregate_count >= 1 and f.clauses >= 4,
            E.duplicate_rows, confirmed=True, fixed=False, gate=640,
        ),
        Fault(
            "memgraph-O1", "memgraph",
            "replace() with an empty search string hangs and exhausts memory "
            "(Figure 9)",
            "memory", 3.1,
            lambda f: f.replace_with_empty,
            E.hang, confirmed=True, fixed=False, gate=8,
        ),
    ]

    # ------------------------------------------------------------------
    # Kùzu: 5 logic + 2 other, all confirmed and fixed.
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "kuzu-L1", "kuzu",
            "common binary-operator helper computes the wrong result for "
            "nested modulo/division chains",
            "logic", 0.9,
            lambda f: (f.modulo_ops + f.division_ops) >= 2 and f.depth >= 5,
            E.wrong_value, confirmed=True, fixed=True, gate=240,
        ),
        Fault(
            "kuzu-L2", "kuzu",
            "numeric conversion functions compare int/float inconsistently "
            "inside filters",
            "logic", 1.2,
            lambda f: f.conversion_functions >= 3 and f.has_where,
            E.empty_result, confirmed=True, fixed=True, gate=560,
        ),
        Fault(
            "kuzu-L3", "kuzu",
            "OPTIONAL MATCH null propagation corrupts a projected column "
            "(unsafe type usage; potential memory corruption)",
            "logic", 1.4,
            lambda f: f.optional_match_count >= 1 and f.dependencies >= 12,
            E.null_value, confirmed=True, fixed=True, gate=310,
        ),
        Fault(
            "kuzu-L4", "kuzu",
            "explicit relationship-inequality predicates are dropped by the "
            "planner, duplicating matches",
            "logic", 1.1,
            lambda f: f.rel_inequality_predicates >= 2 and f.patterns >= 2,
            E.duplicate_rows, confirmed=True, fixed=True, gate=650,
        ),
        Fault(
            "kuzu-L5", "kuzu",
            "ORDER BY inside WITH ... LIMIT returns one record short "
            "(unsafe type usage; potential memory corruption)",
            "logic", 1.0,
            lambda f: f.has_order_by and f.has_limit and f.with_count >= 2,
            E.drop_last_row, confirmed=True, fixed=True, gate=320,
        ),
        Fault(
            "kuzu-O1", "kuzu",
            "crash on expressions nested beyond nine levels",
            "crash", 1.3,
            lambda f: f.depth >= 10,
            E.crash, confirmed=True, fixed=True, gate=580,
        ),
        Fault(
            "kuzu-O2", "kuzu",
            "internal exception when CASE expressions meet ORDER BY",
            "exception", 0.8,
            lambda f: f.case_count >= 2 and f.has_order_by,
            E.exception, confirmed=True, fixed=True, gate=1100,
        ),
    ]

    # ------------------------------------------------------------------
    # FalkorDB: 13 logic + 4 other; 4 logic + 2 other confirmed, 1 other
    # fixed (the paper notes the slower confirmation cadence).
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "falkordb-L1", "falkordb",
            "wrong value returned when undirected patterns combine with "
            "UNWIND and WITH DISTINCT (Figure 1)",
            "logic", 4.0,
            lambda f: (
                f.undirected_rels >= 1
                and f.unwind_count >= 1
                and f.with_count >= 1
                and f.match_count >= 2
            ),
            E.wrong_value, confirmed=True, fixed=False, gate=90,
        ),
        Fault(
            "falkordb-L2", "falkordb",
            "UNWIND before MATCH fetches only the first record (Figure 17)",
            "logic", 1.5,
            lambda f: f.unwind_before_match and f.match_count >= 1,
            E.keep_first_row, confirmed=True, fixed=False, gate=14,
        ),
        Fault(
            "falkordb-L3", "falkordb",
            "multi-label node patterns with filters match nothing",
            "logic", 5.0,
            lambda f: f.multi_label_nodes >= 3 and f.has_where,
            E.empty_result, confirmed=True, fixed=False, gate=196,
        ),
        Fault(
            "falkordb-L4", "falkordb",
            "string predicates over concatenated values evaluate to false",
            "logic", 4.5,
            lambda f: f.string_predicates >= 1 and f.depth >= 5,
            E.empty_result, confirmed=True, fixed=False, gate=245,
        ),
        Fault(
            "falkordb-L5", "falkordb",
            "OPTIONAL MATCH emits a spurious all-null record",
            "logic", 4.2,
            lambda f: f.optional_match_count >= 2,
            E.extra_null_row, confirmed=False, fixed=False, gate=688,
        ),
        Fault(
            "falkordb-L6", "falkordb",
            "descending ORDER BY drops the first record for negative keys",
            "logic", 3.8,
            lambda f: f.has_desc_order and f.clauses >= 4,
            E.drop_last_row, confirmed=False, fixed=False, gate=284,
        ),
        Fault(
            "falkordb-L7", "falkordb",
            "DISTINCT over graph-element columns keeps duplicates",
            "logic", 4.8,
            lambda f: f.has_distinct and f.dependencies >= 15,
            E.duplicate_rows, confirmed=False, fixed=False, gate=288,
        ),
        Fault(
            "falkordb-L8", "falkordb",
            "CALL procedure output rows are lost after a filter",
            "logic", 3.5,
            lambda f: f.has_call and f.has_where,
            E.empty_result, confirmed=False, fixed=False, gate=496,
        ),
        Fault(
            "falkordb-L9", "falkordb",
            "deeply nested arithmetic evaluates incorrectly",
            "logic", 4.4,
            lambda f: f.depth >= 7 and (f.modulo_ops + f.division_ops) >= 1,
            E.wrong_value, confirmed=False, fixed=False, gate=260,
        ),
        Fault(
            "falkordb-L10", "falkordb",
            "relationship variables reused across clauses resolve to the "
            "wrong record",
            "logic", 4.6,
            lambda f: f.dependencies >= 25 and f.match_count >= 2,
            E.wrong_value, confirmed=False, fixed=False, gate=188,
        ),
        Fault(
            "falkordb-L11", "falkordb",
            "LIMIT after WITH returns one extra record",
            "logic", 3.9,
            lambda f: f.has_limit and f.with_count >= 1 and f.clauses >= 4,
            E.duplicate_rows, confirmed=False, fixed=False, gate=4160,
        ),
        Fault(
            "falkordb-L12", "falkordb",
            "modulo on negative operands returns the wrong sign",
            "logic", 4.1,
            lambda f: f.modulo_ops >= 2 and f.has_where,
            E.empty_result, confirmed=False, fixed=False, gate=1520,
        ),
        Fault(
            "falkordb-L13", "falkordb",
            "UNION deduplication keeps equivalent records",
            "logic", 3.7,
            lambda f: f.has_union and not f.has_limit,
            E.duplicate_rows, confirmed=False, fixed=False, gate=96,
        ),
        Fault(
            "falkordb-O1", "falkordb",
            "crash when a single MATCH carries very many patterns",
            "crash", 4.3,
            lambda f: f.patterns >= 8,
            E.crash, confirmed=True, fixed=True, gate=3600,
        ),
        Fault(
            "falkordb-O2", "falkordb",
            "unbounded memory on deep string-predicate chains",
            "memory", 4.0,
            lambda f: f.string_predicates >= 2 and f.depth >= 8,
            E.hang, confirmed=True, fixed=False, gate=1600,
        ),
        Fault(
            "falkordb-O3", "falkordb",
            "internal exception when a CASE result is indexed as a list",
            "exception", 3.6,
            lambda f: f.case_count >= 1 and f.list_index_count >= 1,
            E.exception, confirmed=False, fixed=False, gate=2000,
        ),
        Fault(
            "falkordb-O4", "falkordb",
            "unbounded memory growth combining collect() with DISTINCT",
            "memory", 3.3,
            lambda f: "collect" in f.functions and f.has_distinct,
            E.hang, confirmed=False, fixed=False, gate=800,
        ),
    ]

    # ------------------------------------------------------------------
    # State-corruption faults (NOT part of GQS's 36; the Dinkel direction).
    # They trigger only on write statements, which read-only campaigns
    # never issue, so every pre-stateful campaign is byte-identical.
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "neo4j-ST1", "neo4j",
            "SET is silently lost: the transaction reports success but the "
            "property write never lands",
            "state", 1.4,
            lambda f: f.set_count >= 1,
            E.identity, confirmed=True, fixed=False, gate=6,
            state_effect=StateEffect.lost_set,
        ),
        Fault(
            "memgraph-ST1", "memgraph",
            "MERGE re-creates its pattern even when it matched, leaving a "
            "duplicate node behind",
            "state", 2.6,
            lambda f: f.merge_count >= 1,
            E.identity, confirmed=True, fixed=False, gate=4,
            state_effect=StateEffect.phantom_merge,
        ),
        Fault(
            "kuzu-ST1", "kuzu",
            "DETACH DELETE half-applies its cascade: one relationship "
            "survives, dangling off a ghost of the deleted node",
            "state", 1.1,
            lambda f: f.detach_delete_count >= 1,
            E.identity, confirmed=True, fixed=False, gate=3,
            state_effect=StateEffect.dangling_delete,
        ),
        Fault(
            "falkordb-ST1", "falkordb",
            "REMOVE is a no-op: dropped properties and labels silently "
            "survive the statement",
            "state", 3.8,
            lambda f: f.remove_count >= 1 or f.remove_label_count >= 1,
            E.identity, confirmed=False, fixed=False, gate=4,
            state_effect=StateEffect.remove_noop,
        ),
        Fault(
            "falkordb-ST2", "falkordb",
            "multi-item SET loses every write past the first under "
            "concurrent property-index maintenance",
            "state", 4.2,
            lambda f: f.set_count >= 2,
            E.identity, confirmed=False, fixed=False, gate=5,
            state_effect=StateEffect.lost_set,
        ),
    ]

    # ------------------------------------------------------------------
    # Session-accumulation crashes (NOT part of GQS's 36; §5.4.4).
    # ------------------------------------------------------------------
    faults += [
        Fault(
            "falkordb-S1", "falkordb",
            "crash after a long-lived session (memory accumulates across "
            "queries; found by continuous-session testers only)",
            "crash", 4.1,
            lambda f: f.patterns >= 1 and f.has_where,
            E.crash, confirmed=True, fixed=False,
            session_queries_required=11_500,
        ),
        Fault(
            "falkordb-S2", "falkordb",
            "crash after a very long session exercising filters",
            "crash", 3.9,
            lambda f: f.has_where,
            E.crash, confirmed=True, fixed=False,
            session_queries_required=14_200,
        ),
    ]
    return faults


_CATALOG: List[Fault] = build_catalog()


def all_faults() -> List[Fault]:
    """The full catalog: 36 GQS-scope + 2 session-only + 5 state-corruption."""
    return list(_CATALOG)


def gqs_scope_faults() -> List[Fault]:
    """The 36 faults of the paper's Table 3 (session-only crashes and the
    write-triggered state-corruption faults excluded)."""
    return [
        fault for fault in _CATALOG
        if not fault.session_queries_required and not fault.is_state
    ]


def faults_for(gdb: str) -> List[Fault]:
    """The faults injected into one engine."""
    return [fault for fault in _CATALOG if fault.gdb == gdb]
