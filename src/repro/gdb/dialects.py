"""Per-GDB Cypher dialect descriptions (paper §4 and Table 2).

Each dialect captures the behavioural variations the paper handles
explicitly, plus the engine metadata of Table 2 and a simple execution-cost
model used by the simulated campaign clock:

* **Relationship uniqueness**: Kùzu and FalkorDB allow one relationship to
  match several pattern elements; GQS compensates with ``r1 <> r2``
  predicates.
* **Procedures**: ``CALL db.labels()`` exists in Neo4j and FalkorDB but not
  in Kùzu or Memgraph.
* **Schema requirement**: Kùzu needs the schema before data loads.
* **Type leniency**: engines differ in whether runtime type mismatches
  raise or silently yield empty results — a major source of differential
  false positives (§5.4.3).
* **Cost model**: the paper reports ~6 queries/s on Memgraph and ~3 on
  Neo4j for 9-step queries, with 9-step queries 6.6× slower than 3-step
  ones; ``cost_of_steps`` reproduces that shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Tuple

__all__ = ["Dialect", "NEO4J", "MEMGRAPH", "KUZU", "FALKORDB", "DIALECTS"]


# Growth rate chosen so that cost(9 steps) / cost(3 steps) = 6.6 (§5.3).
_COST_GROWTH = math.log(6.6) / 6.0


@dataclass(frozen=True)
class Dialect:
    """Static description of one simulated GDB."""

    name: str
    display_name: str
    github_stars: str
    initial_release: int
    tested_versions: Tuple[str, ...]
    loc: str
    enforces_rel_uniqueness: bool = True
    supports_call_procedures: bool = True
    requires_schema: bool = False
    lenient_type_errors: bool = False
    in_memory: bool = True
    unsupported_functions: FrozenSet[str] = frozenset()
    float_format_digits: int = 0      # 0: full repr; >0: driver rounds output
    base_query_cost: float = 0.01     # simulated seconds at "zero steps"

    def cost_of_steps(self, steps: int) -> float:
        """Simulated execution cost (seconds) of a query with *steps* clauses."""
        return self.base_query_cost * math.exp(_COST_GROWTH * max(steps, 1))


NEO4J = Dialect(
    name="neo4j",
    display_name="Neo4j",
    github_stars="13.2K",
    initial_release=2007,
    tested_versions=("5.18", "5.20", "5.21.2"),
    loc="1.4M",
    enforces_rel_uniqueness=True,
    supports_call_procedures=True,
    in_memory=False,                       # on-disk: ~3 q/s at 9 steps (§5.3)
    base_query_cost=1.0 / (3.0 * math.exp(_COST_GROWTH * 9)),
)

MEMGRAPH = Dialect(
    name="memgraph",
    display_name="Memgraph",
    github_stars="2.4K",
    initial_release=2017,
    tested_versions=("2.13", "2.14.1", "2.15", "2.17"),
    loc="0.2M",
    enforces_rel_uniqueness=True,
    supports_call_procedures=False,        # no db.labels() (§4)
    lenient_type_errors=True,              # runtime type errors yield no rows
    in_memory=True,                        # ~6 q/s at 9 steps (§5.3)
    unsupported_functions=frozenset(["cot", "isnan", "valuetype"]),
    base_query_cost=1.0 / (6.0 * math.exp(_COST_GROWTH * 9)),
)

KUZU = Dialect(
    name="kuzu",
    display_name="Kùzu",
    github_stars="1.3K",
    initial_release=2022,
    tested_versions=("0.4.2", "0.7.1"),
    loc="11.9M",
    enforces_rel_uniqueness=False,         # deviates from the reference (§4)
    supports_call_procedures=False,
    requires_schema=True,                  # schema needed before loading (§4)
    in_memory=True,
    unsupported_functions=frozenset(["tostringornull", "tobooleanornull"]),
    base_query_cost=1.0 / (5.0 * math.exp(_COST_GROWTH * 9)),
)

FALKORDB = Dialect(
    name="falkordb",
    display_name="FalkorDB",
    github_stars="651",
    initial_release=2023,                  # fork of RedisGraph (2018)
    tested_versions=("4.2.0",),
    loc="2.8M",
    enforces_rel_uniqueness=False,         # deviates from the reference (§4)
    supports_call_procedures=True,
    in_memory=True,
    unsupported_functions=frozenset(["atan2", "valuetype"]),
    float_format_digits=6,                 # driver output rounds floats
    base_query_cost=1.0 / (5.5 * math.exp(_COST_GROWTH * 9)),
)

DIALECTS = {
    dialect.name: dialect for dialect in (NEO4J, MEMGRAPH, KUZU, FALKORDB)
}
