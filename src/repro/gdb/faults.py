"""Fault model for the simulated GDBs.

The paper tests four production databases and finds 36 real bugs.  We cannot
run those binaries here, so each simulated engine carries a catalog of
*injected faults* modeled on the paper's findings (see
:mod:`repro.gdb.catalog`).  A fault is:

* a **trigger**: a deterministic predicate over syntactic/semantic features
  of the query (plus, for session-accumulation bugs, engine state).  Trigger
  conditions reference exactly the kinds of complexity the paper's §5.3
  analysis highlights — clause combinations, pattern counts, nesting depth,
  cross-clause dependencies — so the distribution of bug-triggering queries
  across those dimensions (Figures 10-15) *emerges* from which queries
  trigger which faults rather than being hard-coded;
* an **effect**: a deterministic perturbation of the correct result (wrong
  value, dropped/duplicated rows, empty result, …) or a raised error
  (crash / hang / exception for the "other bugs" of Table 3).

Determinism matters: the same query on the same engine yields the same
answer, which is what makes the paper's bug reports reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, List, Union

from repro.cypher import ast
from repro.cypher.analysis import QueryMetrics, analyze, clause_types_in, functions_in
from repro.engine.binding import ResultSet
from repro.engine.errors import CypherRuntimeError, DatabaseCrash, ResourceExhausted

__all__ = ["QueryFeatures", "extract_features", "Fault", "FaultEffect", "stable_hash"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash (Python's hash() is salted)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class QueryFeatures:
    """Everything fault triggers may inspect about a query."""

    metrics: QueryMetrics
    clause_names: List[str]
    functions: List[str]
    match_count: int = 0
    optional_match_count: int = 0
    unwind_count: int = 0
    with_count: int = 0
    has_union: bool = False
    has_call: bool = False
    has_order_by: bool = False
    has_desc_order: bool = False
    has_distinct: bool = False
    has_limit: bool = False
    has_skip: bool = False
    has_where: bool = False
    undirected_rels: int = 0
    multi_label_nodes: int = 0
    starts_with_unwind: bool = False
    unwind_before_match: bool = False
    unwind_between_matches: bool = False
    string_predicates: int = 0        # STARTS WITH / ENDS WITH / CONTAINS
    modulo_ops: int = 0
    division_ops: int = 0
    xor_ops: int = 0
    case_count: int = 0
    list_index_count: int = 0
    rel_inequality_predicates: int = 0
    replace_with_empty: bool = False
    conversion_functions: int = 0     # toInteger/toFloat/... calls
    aggregate_count: int = 0
    query_hash: int = 0
    # Write-clause features (state-aware workloads, repro.synth.state).
    create_count: int = 0
    merge_count: int = 0
    set_count: int = 0                # SET items, not clauses
    delete_count: int = 0             # plain DELETE clauses
    detach_delete_count: int = 0
    remove_count: int = 0             # REMOVE property items
    remove_label_count: int = 0       # REMOVE label items

    def signature_hash(self) -> int:
        """A hash over structural features (stable under textual noise).

        Fault gates key on this rather than the raw text hash so that a
        metamorphic rewrite flips a gate verdict only when it genuinely
        changes the query's structure — which is what makes the §5.4.3
        oracle-replay comparison meaningful.
        """
        signature = (
            self.metrics.patterns,
            self.metrics.expression_depth,
            self.metrics.clauses,
            self.metrics.dependencies,
            self.match_count,
            self.optional_match_count,
            self.unwind_count,
            self.with_count,
            self.has_union,
            self.has_call,
            self.has_order_by,
            self.has_desc_order,
            self.has_distinct,
            self.has_limit,
            self.undirected_rels,
            self.multi_label_nodes,
            self.string_predicates,
            self.modulo_ops,
            self.division_ops,
            self.xor_ops,
            self.case_count,
            tuple(sorted(set(self.functions))),
        )
        # Write counters join the signature only when a write clause is
        # present, so every read-only query hashes exactly as it did before
        # the stateful tier existed — gate decisions on existing campaigns
        # are untouched.
        if self.has_write:
            signature = signature + (
                self.create_count,
                self.merge_count,
                self.set_count,
                self.delete_count,
                self.detach_delete_count,
                self.remove_count,
                self.remove_label_count,
            )
        return stable_hash(repr(signature))

    @property
    def has_write(self) -> bool:
        """Whether any write clause (CREATE/MERGE/SET/DELETE/REMOVE) occurs."""
        return bool(
            self.create_count
            or self.merge_count
            or self.set_count
            or self.delete_count
            or self.detach_delete_count
            or self.remove_count
            or self.remove_label_count
        )

    @property
    def clauses(self) -> int:
        return self.metrics.clauses

    @property
    def patterns(self) -> int:
        return self.metrics.patterns

    @property
    def depth(self) -> int:
        return self.metrics.expression_depth

    @property
    def dependencies(self) -> int:
        return self.metrics.dependencies


def _flatten(query: AnyQuery) -> List[ast.Query]:
    if isinstance(query, ast.UnionQuery):
        return _flatten(query.left) + [query.right]
    return [query]


def extract_features(query: AnyQuery, query_text: str) -> QueryFeatures:
    """Compute the trigger-relevant features of *query*."""
    metrics = analyze(query)
    names = clause_types_in(query)
    funcs = functions_in(query)
    features = QueryFeatures(
        metrics=metrics,
        clause_names=names,
        functions=funcs,
        has_union=isinstance(query, ast.UnionQuery),
        query_hash=stable_hash(query_text),
    )

    conversions = {
        "tointeger", "tofloat", "toboolean", "tostring",
        "tointegerornull", "tofloatornull", "tobooleanornull", "tostringornull",
    }
    aggregates = {"count", "sum", "avg", "min", "max", "collect", "stdev", "stdevp"}
    features.conversion_functions = sum(1 for f in funcs if f in conversions)
    features.aggregate_count = sum(1 for f in funcs if f in aggregates)

    for sub in _flatten(query):
        saw_match = False
        saw_unwind_after_match = False
        for index, clause in enumerate(sub.clauses):
            if isinstance(clause, ast.Match):
                if clause.optional:
                    features.optional_match_count += 1
                else:
                    features.match_count += 1
                if saw_unwind_after_match:
                    features.unwind_between_matches = True
                if not saw_match and features.unwind_count:
                    features.unwind_before_match = True
                saw_match = True
                for pattern in clause.patterns:
                    for rel in pattern.relationships:
                        if rel.direction == ast.BOTH:
                            features.undirected_rels += 1
                    for node in pattern.nodes:
                        if len(node.labels) >= 2:
                            features.multi_label_nodes += 1
                if clause.where is not None:
                    features.has_where = True
                    _scan_predicate(clause.where, features)
            elif isinstance(clause, ast.Unwind):
                features.unwind_count += 1
                if index == 0:
                    features.starts_with_unwind = True
                    features.unwind_before_match = True
                if saw_match:
                    saw_unwind_after_match = True
                _scan_predicate(clause.expression, features)
            elif isinstance(clause, ast.With):
                features.with_count += 1
                features.has_distinct |= clause.distinct
                features.has_order_by |= bool(clause.order_by)
                features.has_desc_order |= any(o.descending for o in clause.order_by)
                features.has_limit |= clause.limit is not None
                features.has_skip |= clause.skip is not None
                if clause.where is not None:
                    features.has_where = True
                    _scan_predicate(clause.where, features)
                for item in clause.items:
                    _scan_predicate(item.expression, features)
            elif isinstance(clause, ast.Return):
                features.has_distinct |= clause.distinct
                features.has_order_by |= bool(clause.order_by)
                features.has_desc_order |= any(o.descending for o in clause.order_by)
                features.has_limit |= clause.limit is not None
                features.has_skip |= clause.skip is not None
                for item in clause.items:
                    _scan_predicate(item.expression, features)
            elif isinstance(clause, ast.Call):
                features.has_call = True
            elif isinstance(clause, ast.Create):
                features.create_count += 1
            elif isinstance(clause, ast.Merge):
                features.merge_count += 1
            elif isinstance(clause, ast.SetClause):
                features.set_count += len(clause.items)
                for item in clause.items:
                    _scan_predicate(item.value, features)
            elif isinstance(clause, ast.Delete):
                if clause.detach:
                    features.detach_delete_count += 1
                else:
                    features.delete_count += 1
            elif isinstance(clause, ast.Remove):
                for item in clause.items:
                    if item.key is not None:
                        features.remove_count += 1
                    else:
                        features.remove_label_count += 1
    return features


def _scan_predicate(expr: ast.Expression, features: QueryFeatures) -> None:
    """Accumulate operator/function statistics from an expression tree."""
    if isinstance(expr, ast.Binary):
        if expr.op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
            features.string_predicates += 1
        elif expr.op == "%":
            features.modulo_ops += 1
        elif expr.op == "/":
            features.division_ops += 1
        elif expr.op == "XOR":
            features.xor_ops += 1
        elif expr.op == "<>":
            if isinstance(expr.left, ast.Variable) and isinstance(
                expr.right, ast.Variable
            ):
                features.rel_inequality_predicates += 1
    elif isinstance(expr, ast.CaseExpression):
        features.case_count += 1
    elif isinstance(expr, ast.CountStar):
        features.aggregate_count += 1
    elif isinstance(expr, ast.ListIndex):
        features.list_index_count += 1
    elif isinstance(expr, ast.FunctionCall):
        if expr.name.lower() == "replace" and len(expr.args) == 3:
            search = expr.args[1]
            if isinstance(search, ast.Literal) and search.value == "":
                features.replace_with_empty = True
    for child in expr.children():
        _scan_predicate(child, features)


# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------

class FaultEffect:
    """Deterministic result perturbations and error raisers."""

    @staticmethod
    def empty_result(result: ResultSet, seed: int) -> ResultSet:
        """The query silently returns nothing (paper Figures 8 and 16)."""
        return ResultSet(result.columns, [], ordered=result.ordered)

    @staticmethod
    def keep_first_row(result: ResultSet, seed: int) -> ResultSet:
        """Only the first record is fetched (paper Figure 17)."""
        return ResultSet(result.columns, result.rows[:1], ordered=result.ordered)

    @staticmethod
    def drop_last_row(result: ResultSet, seed: int) -> ResultSet:
        return ResultSet(result.columns, result.rows[:-1], ordered=result.ordered)

    @staticmethod
    def duplicate_rows(result: ResultSet, seed: int) -> ResultSet:
        """DISTINCT/uniqueness handling fails: rows appear twice."""
        rows = list(result.rows) + list(result.rows[:1])
        return ResultSet(result.columns, rows, ordered=result.ordered)

    @staticmethod
    def extra_null_row(result: ResultSet, seed: int) -> ResultSet:
        """A spurious all-null record is emitted (bad OPTIONAL MATCH)."""
        if not result.columns:
            return result
        rows = list(result.rows) + [tuple(None for _ in result.columns)]
        return ResultSet(result.columns, rows, ordered=result.ordered)

    @staticmethod
    def wrong_value(result: ResultSet, seed: int) -> ResultSet:
        """One returned value is wrong (paper Figures 1 and 7)."""
        if not result.rows or not result.columns:
            return result
        row_index = seed % len(result.rows)
        col_index = (seed // 7) % len(result.columns)
        rows = [list(row) for row in result.rows]
        rows[row_index][col_index] = FaultEffect._perturb(
            rows[row_index][col_index], seed
        )
        return ResultSet(
            result.columns, [tuple(row) for row in rows], ordered=result.ordered
        )

    @staticmethod
    def null_value(result: ResultSet, seed: int) -> ResultSet:
        """One returned value silently becomes null."""
        if not result.rows or not result.columns:
            return result
        col_index = seed % len(result.columns)
        rows = [list(row) for row in result.rows]
        for row in rows:
            row[col_index] = None
        return ResultSet(
            result.columns, [tuple(row) for row in rows], ordered=result.ordered
        )

    @staticmethod
    def _perturb(value: Any, seed: int) -> Any:
        if value is None:
            return 0
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value + 1 + (seed % 5)
        if isinstance(value, float):
            return value * 2.0 + 1.0
        if isinstance(value, str):
            return value[::-1] if len(value) > 1 else value + "x"
        if isinstance(value, list):
            return value[:-1] if value else [0]
        return 0

    @staticmethod
    def identity(result: ResultSet, seed: int) -> ResultSet:
        """The result is untouched (state faults corrupt the graph instead)."""
        return result

    # -- error raisers ---------------------------------------------------

    @staticmethod
    def crash(result: ResultSet, seed: int) -> ResultSet:
        raise DatabaseCrash("simulated engine crash (memory corruption)")

    @staticmethod
    def hang(result: ResultSet, seed: int) -> ResultSet:
        raise ResourceExhausted(
            "simulated hang: query never completes and memory grows unboundedly"
        )

    @staticmethod
    def exception(result: ResultSet, seed: int) -> ResultSet:
        raise CypherRuntimeError("simulated unexpected internal exception")


@dataclass
class Fault:
    """One injected bug, calibrated to a bug class from the paper."""

    fault_id: str
    gdb: str
    description: str
    category: str                      # "logic" | "crash" | "hang" | "exception" | "memory" | "state"
    introduced_year: float             # years of latency before discovery (Table 4)
    trigger: Callable[[QueryFeatures], bool]
    effect: Callable[[ResultSet, int], ResultSet]
    confirmed: bool = True
    fixed: bool = False
    gate: int = 1                      # fire on 1/gate of the matching queries
    session_queries_required: int = 0  # >0: needs a long-running session
    #: State-corruption faults perturb the engine's *graph* after the write
    #: executes (repro.gdb.state_effects); the result set stays correct.
    #: Signature: (graph, before, tree, seed) -> None, mutating *graph*.
    state_effect: Any = None

    @property
    def is_logic(self) -> bool:
        return self.category == "logic"

    @property
    def is_state(self) -> bool:
        """Whether this fault corrupts post-write graph state, not results."""
        return self.category == "state"

    def triggers(
        self,
        features: QueryFeatures,
        session_queries: int = 0,
        gate_scale: float = 1.0,
    ) -> bool:
        """Whether this fault fires for the given query (deterministic).

        ``gate_scale`` < 1 makes gated faults proportionally easier to hit;
        the experiment harness uses it to compress the paper's months-long
        full campaign into a benchmark-sized run (see Table 3).
        """
        if self.session_queries_required and session_queries < self.session_queries_required:
            return False
        if not self.trigger(features):
            return False
        effective_gate = max(1, int(self.gate * gate_scale))
        if effective_gate > 1:
            # The gate hash mixes in the fault id so different faults gate
            # independent subsets of the matching queries.
            mixed = features.signature_hash() ^ stable_hash(self.fault_id)
            if mixed % effective_gate != 0:
                return False
        return True
