"""State-corruption effects: how a buggy engine mangles post-write state.

The Dinkel direction (state-aware query generation) finds a bug class the
result-perturbing effects of :mod:`repro.gdb.faults` cannot model: the
query *answers* correctly but leaves the database in the wrong state.  Each
effect here runs after the engine computed the correct result of a write
statement and deterministically corrupts the engine's own ``PropertyGraph``
— the state-tracking oracle (:mod:`repro.synth.state`) then catches the
divergence from the shadow graph via the state digest.

Every effect has the signature ``(graph, before, tree, seed) -> None``:

* *graph* — the engine's live graph, already holding the write's correct
  outcome; mutated in place;
* *before* — a copy of the graph taken just before the write executed
  (the engine snapshots it only when a state fault is about to fire);
* *tree* — the executed statement's AST, so effects can target exactly the
  clauses the statement carried;
* *seed* — the query's structural signature hash, the same deterministic
  tie-breaker the result effects use.

Effects mirror the reference executor's mutation conventions (in-place
property/label edits followed by ``invalidate_property_index``), so a
corrupted graph stays a valid ``PropertyGraph`` — semantically wrong,
structurally intact.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from repro.cypher import ast
from repro.graph.model import PropertyGraph

__all__ = ["StateEffect"]

AnyQuery = Any  # ast.Query | ast.UnionQuery


def _clauses(tree: AnyQuery) -> List[Any]:
    if isinstance(tree, ast.UnionQuery):
        return _clauses(tree.left) + _clauses(tree.right)
    return list(tree.clauses)


def _restore_property(graph: PropertyGraph, before: PropertyGraph, key: str) -> None:
    """Roll one property key back to its pre-write value on every element."""
    for node in graph.nodes():
        if before.has_node(node.id):
            source = before.node(node.id).properties
            if key in source:
                node.properties[key] = source[key]
            else:
                node.properties.pop(key, None)
    before_rels = {rel.id for rel in before.relationships()}
    for rel in graph.relationships():
        if rel.id in before_rels:
            source = before.relationship(rel.id).properties
            if key in source:
                rel.properties[key] = source[key]
            else:
                rel.properties.pop(key, None)
    graph.invalidate_property_index()


def _literal_properties(properties: Optional[ast.MapLiteral]) -> dict:
    """Evaluate a literal-only property map; non-literal entries are skipped."""
    if properties is None:
        return {}
    out = {}
    for key, value in properties.items:
        if isinstance(value, ast.Literal):
            out[key] = value.value
    return out


class StateEffect:
    """The four state-corruption models of the stateful fault catalog."""

    @staticmethod
    def lost_set(
        graph: PropertyGraph, before: PropertyGraph, tree: AnyQuery, seed: int
    ) -> None:
        """The SET is silently lost: touched keys revert to pre-write values."""
        for clause in _clauses(tree):
            if isinstance(clause, ast.SetClause):
                for item in clause.items:
                    _restore_property(graph, before, item.key)

    @staticmethod
    def remove_noop(
        graph: PropertyGraph, before: PropertyGraph, tree: AnyQuery, seed: int
    ) -> None:
        """REMOVE is a no-op: removed properties/labels silently survive."""
        label_restore = False
        for clause in _clauses(tree):
            if isinstance(clause, ast.Remove):
                for item in clause.items:
                    if item.key is not None:
                        _restore_property(graph, before, item.key)
                    else:
                        label_restore = True
        if label_restore:
            for node in list(graph.nodes()):
                if before.has_node(node.id):
                    # Same index-preserving rebuild the executor's REMOVE
                    # uses, just rolled back to the pre-write label sets.
                    graph.set_node_labels(
                        node.id, before.node(node.id).labels
                    )
            graph.invalidate_property_index()

    @staticmethod
    def phantom_merge(
        graph: PropertyGraph, before: PropertyGraph, tree: AnyQuery, seed: int
    ) -> None:
        """MERGE re-creates its pattern even when it matched (duplicate node)."""
        for clause in _clauses(tree):
            if isinstance(clause, ast.Merge):
                for node_pattern in clause.pattern.nodes:
                    graph.add_node(
                        node_pattern.labels,
                        _literal_properties(node_pattern.properties),
                    )

    @staticmethod
    def dangling_delete(
        graph: PropertyGraph, before: PropertyGraph, tree: AnyQuery, seed: int
    ) -> None:
        """DETACH DELETE leaves one relationship dangling off a ghost node.

        The lowest-id deleted node that had relationships is resurrected as
        a label-less, property-less tombstone, and its lowest-id deleted
        relationship whose far end still exists is re-attached — the classic
        half-applied cascade, kept structurally valid.
        """
        surviving: Set[int] = set(graph.node_ids())
        deleted = sorted(
            node.id for node in before.nodes() if node.id not in surviving
        )
        for node_id in deleted:
            rels = sorted(
                before.outgoing(node_id) + before.incoming(node_id),
                key=lambda rel: rel.id,
            )
            for rel in rels:
                far = rel.other_end(node_id)
                if far == node_id or far in surviving:
                    graph.add_node(frozenset(), {}, node_id=node_id)
                    graph.add_relationship(
                        rel.start, rel.end, rel.type,
                        dict(rel.properties), rel_id=rel.id,
                    )
                    return
