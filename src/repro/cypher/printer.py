"""Render Cypher ASTs to query text.

The printer produces openCypher-conformant text that the lexer/parser in this
package round-trips; it is also what the simulated GDB drivers receive, and
what the bug reports quote.
"""

from __future__ import annotations

from typing import Any, List

from repro.cypher import ast

__all__ = ["print_expression", "print_pattern", "print_clause", "print_query"]


# Operators whose spelling needs a space (keyword operators).
_KEYWORD_OPS = {
    "AND",
    "OR",
    "XOR",
    "IN",
    "STARTS WITH",
    "ENDS WITH",
    "CONTAINS",
    "=~",
}


def _print_literal(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, float):
        # Cypher has no literal spelling for non-finite floats; emit an
        # expression that evaluates to them instead (as drivers do).
        if value != value:  # NaN
            return "((0.0) / (0.0))"
        if value == float("inf"):
            return "((1.0) / (0.0))"
        if value == float("-inf"):
            return "((-1.0) / (0.0))"
        # Keep finite floats round-trippable; repr() is the shortest exact form.
        return repr(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, list):
        return "[" + ", ".join(_print_literal(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"{k}: {_print_literal(v)}" for k, v in value.items())
        return "{" + inner + "}"
    raise TypeError(f"cannot print literal of type {type(value)!r}")


def print_expression(expr: ast.Expression) -> str:
    """Render an expression node to Cypher text."""
    if isinstance(expr, ast.Literal):
        return _print_literal(expr.value)
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.PropertyAccess):
        subject = print_expression(expr.subject)
        if not isinstance(expr.subject, (ast.Variable, ast.PropertyAccess)):
            subject = f"({subject})"
        return f"{subject}.{expr.key}"
    if isinstance(expr, ast.Unary):
        operand = print_expression(expr.operand)
        if expr.op == "NOT":
            return f"(NOT ({operand}))"
        return f"({expr.op}({operand}))"
    if isinstance(expr, ast.Binary):
        left = print_expression(expr.left)
        right = print_expression(expr.right)
        op = expr.op
        if op in _KEYWORD_OPS and op != "=~":
            return f"(({left}) {op} ({right}))"
        return f"(({left}) {op} ({right}))"
    if isinstance(expr, ast.IsNull):
        inner = print_expression(expr.operand)
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"(({inner}) {keyword})"
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(print_expression(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.CountStar):
        return "count(*)"
    if isinstance(expr, ast.ListLiteral):
        return "[" + ", ".join(print_expression(item) for item in expr.items) + "]"
    if isinstance(expr, ast.MapLiteral):
        inner = ", ".join(
            f"{key}: {print_expression(value)}" for key, value in expr.items
        )
        return "{" + inner + "}"
    if isinstance(expr, ast.ListComprehension):
        out = f"[{expr.variable} IN {print_expression(expr.source)}"
        if expr.where is not None:
            out += f" WHERE {print_expression(expr.where)}"
        if expr.projection is not None:
            out += f" | {print_expression(expr.projection)}"
        return out + "]"
    if isinstance(expr, ast.ListIndex):
        return f"({print_expression(expr.subject)})[{print_expression(expr.index)}]"
    if isinstance(expr, ast.ListSlice):
        start = print_expression(expr.start) if expr.start is not None else ""
        end = print_expression(expr.end) if expr.end is not None else ""
        return f"({print_expression(expr.subject)})[{start}..{end}]"
    if isinstance(expr, ast.CaseExpression):
        parts: List[str] = ["CASE"]
        if expr.subject is not None:
            parts.append(print_expression(expr.subject))
        for alt in expr.alternatives:
            parts.append(
                f"WHEN {print_expression(alt.when)} THEN {print_expression(alt.then)}"
            )
        if expr.default is not None:
            parts.append(f"ELSE {print_expression(expr.default)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.PatternPredicate):
        return print_pattern(expr.pattern)
    if isinstance(expr, ast.LabelsPredicate):
        labels = "".join(f":{label}" for label in expr.labels)
        return f"({print_expression(expr.subject)}{labels})"
    raise TypeError(f"cannot print expression of type {type(expr)!r}")


def _print_node_pattern(node: ast.NodePattern) -> str:
    parts = node.variable or ""
    parts += "".join(f":{label}" for label in node.labels)
    if node.properties is not None:
        props = print_expression(node.properties)
        parts = f"{parts} {props}" if parts else props
    return f"({parts})"


def _print_rel_pattern(rel: ast.RelationshipPattern) -> str:
    inner = rel.variable or ""
    if rel.types:
        inner += ":" + "|".join(rel.types)
    if rel.properties is not None:
        props = print_expression(rel.properties)
        inner = f"{inner} {props}" if inner else props
    body = f"[{inner}]" if inner else "[]"
    if rel.direction == ast.OUT:
        return f"-{body}->"
    if rel.direction == ast.IN:
        return f"<-{body}-"
    return f"-{body}-"


def print_pattern(pattern: ast.PathPattern) -> str:
    """Render a path pattern to Cypher text."""
    out = f"{pattern.path_variable} = " if pattern.path_variable else ""
    out += _print_node_pattern(pattern.nodes[0])
    for index, rel in enumerate(pattern.relationships):
        out += _print_rel_pattern(rel)
        out += _print_node_pattern(pattern.nodes[index + 1])
    return out


def _print_projection(items, distinct: bool) -> str:
    rendered = []
    for item in items:
        text = print_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        rendered.append(text)
    prefix = "DISTINCT " if distinct else ""
    return prefix + ", ".join(rendered)


def _print_tail(clause) -> str:
    """ORDER BY / SKIP / LIMIT shared by WITH and RETURN."""
    parts: List[str] = []
    if clause.order_by:
        keys = ", ".join(
            print_expression(item.expression) + (" DESC" if item.descending else "")
            for item in clause.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if clause.skip is not None:
        parts.append(f"SKIP {print_expression(clause.skip)}")
    if clause.limit is not None:
        parts.append(f"LIMIT {print_expression(clause.limit)}")
    return (" " + " ".join(parts)) if parts else ""


def print_clause(clause: ast.Clause) -> str:
    """Render a single clause to Cypher text."""
    if isinstance(clause, ast.Match):
        keyword = "OPTIONAL MATCH" if clause.optional else "MATCH"
        patterns = ", ".join(print_pattern(p) for p in clause.patterns)
        text = f"{keyword} {patterns}"
        if clause.where is not None:
            text += f" WHERE {print_expression(clause.where)}"
        return text
    if isinstance(clause, ast.Unwind):
        return f"UNWIND {print_expression(clause.expression)} AS {clause.alias}"
    if isinstance(clause, ast.With):
        text = "WITH " + _print_projection(clause.items, clause.distinct)
        text += _print_tail(clause)
        if clause.where is not None:
            text += f" WHERE {print_expression(clause.where)}"
        return text
    if isinstance(clause, ast.Return):
        text = "RETURN " + _print_projection(clause.items, clause.distinct)
        text += _print_tail(clause)
        return text
    if isinstance(clause, ast.Call):
        args = ", ".join(print_expression(a) for a in clause.args)
        text = f"CALL {clause.procedure}({args})"
        if clause.yield_items:
            yields = ", ".join(
                name + (f" AS {alias}" if alias else "")
                for name, alias in clause.yield_items
            )
            text += f" YIELD {yields}"
        return text
    if isinstance(clause, ast.Create):
        patterns = ", ".join(print_pattern(p) for p in clause.patterns)
        return f"CREATE {patterns}"
    if isinstance(clause, ast.SetClause):
        items = ", ".join(
            f"{item.subject}.{item.key} = {print_expression(item.value)}"
            for item in clause.items
        )
        return f"SET {items}"
    if isinstance(clause, ast.Delete):
        keyword = "DETACH DELETE" if clause.detach else "DELETE"
        return f"{keyword} " + ", ".join(
            print_expression(e) for e in clause.expressions
        )
    if isinstance(clause, ast.Remove):
        items = []
        for item in clause.items:
            if item.key is not None:
                items.append(f"{item.subject}.{item.key}")
            else:
                items.append(f"{item.subject}:{item.label}")
        return "REMOVE " + ", ".join(items)
    if isinstance(clause, ast.Merge):
        return f"MERGE {print_pattern(clause.pattern)}"
    raise TypeError(f"cannot print clause of type {type(clause)!r}")


def print_query(query) -> str:
    """Render a :class:`Query` or :class:`UnionQuery` to Cypher text."""
    if isinstance(query, ast.UnionQuery):
        keyword = "UNION ALL" if query.all else "UNION"
        return f"{print_query(query.left)} {keyword} {print_query(query.right)}"
    return " ".join(print_clause(clause) for clause in query.clauses)
