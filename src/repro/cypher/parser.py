"""Recursive-descent parser for the Cypher subset.

Parses the language the printer emits (and ordinary hand-written Cypher over
the same feature set) back into :mod:`repro.cypher.ast` trees.  The paper's
evaluation (§5.4.2) parses 10 000 queries per tool into ASTs to measure
complexity; this parser plays the role of the libcypher-parser used there.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.cypher import ast
from repro.cypher.lexer import LexError, Token, tokenize

__all__ = ["ParseError", "parse_query", "parse_expression"]


class ParseError(Exception):
    """Raised when the token stream does not form a valid query."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def expect_punct(self, value: str) -> Token:
        if not self.current.is_punct(value):
            raise ParseError(
                f"expected {value!r} at {self.current.position}, "
                f"got {self.current.value!r}"
            )
        return self.advance()

    def expect_keyword(self, *names: str) -> Token:
        if not self.current.is_keyword(*names):
            raise ParseError(
                f"expected {'/'.join(names)} at {self.current.position}, "
                f"got {self.current.value!r}"
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.current
        if token.kind == "ident":
            self.advance()
            return token.value
        # Allow soft keywords as identifiers in name positions.
        if token.kind == "keyword" and token.value in ("ALL", "END", "ON"):
            self.advance()
            return token.value.lower()
        raise ParseError(
            f"expected identifier at {token.position}, got {token.value!r}"
        )

    def accept_punct(self, value: str) -> bool:
        if self.current.is_punct(value):
            self.advance()
            return True
        return False

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> Union[ast.Query, ast.UnionQuery]:
        query: Union[ast.Query, ast.UnionQuery] = self._single_query()
        while self.accept_keyword("UNION"):
            union_all = self.accept_keyword("ALL")
            right = self._single_query()
            query = ast.UnionQuery(query, right, all=union_all)
        if self.current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input at {self.current.position}: "
                f"{self.current.value!r}"
            )
        return query

    def _single_query(self) -> ast.Query:
        clauses: List[ast.Clause] = []
        while True:
            clause = self._try_clause()
            if clause is None:
                break
            clauses.append(clause)
        if not clauses:
            raise ParseError(f"expected a clause at {self.current.position}")
        return ast.Query(tuple(clauses))

    def _try_clause(self) -> Optional[ast.Clause]:
        token = self.current
        if token.is_keyword("OPTIONAL"):
            self.advance()
            self.expect_keyword("MATCH")
            return self._match(optional=True)
        if token.is_keyword("MATCH"):
            self.advance()
            return self._match(optional=False)
        if token.is_keyword("UNWIND"):
            self.advance()
            expr = self.expression()
            self.expect_keyword("AS")
            alias = self.expect_ident()
            return ast.Unwind(expr, alias)
        if token.is_keyword("WITH"):
            self.advance()
            return self._projection_clause(is_with=True)
        if token.is_keyword("RETURN"):
            self.advance()
            return self._projection_clause(is_with=False)
        if token.is_keyword("CALL"):
            self.advance()
            return self._call()
        if token.is_keyword("CREATE"):
            self.advance()
            patterns = [self._path_pattern()]
            while self.accept_punct(","):
                patterns.append(self._path_pattern())
            return ast.Create(tuple(patterns))
        if token.is_keyword("SET"):
            self.advance()
            return self._set_clause()
        if token.is_keyword("DETACH"):
            self.advance()
            self.expect_keyword("DELETE")
            return self._delete(detach=True)
        if token.is_keyword("DELETE"):
            self.advance()
            return self._delete(detach=False)
        if token.is_keyword("REMOVE"):
            self.advance()
            return self._remove()
        if token.is_keyword("MERGE"):
            self.advance()
            return ast.Merge(self._path_pattern())
        return None

    def _match(self, optional: bool) -> ast.Match:
        patterns = [self._path_pattern()]
        while self.accept_punct(","):
            patterns.append(self._path_pattern())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Match(tuple(patterns), optional=optional, where=where)

    def _projection_clause(self, is_with: bool) -> ast.Clause:
        distinct = self.accept_keyword("DISTINCT")
        items = [self._projection_item()]
        while self.accept_punct(","):
            items.append(self._projection_item())
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_punct(","):
                order_by.append(self._order_item())
        skip = self.expression() if self.accept_keyword("SKIP") else None
        limit = self.expression() if self.accept_keyword("LIMIT") else None
        if is_with:
            where = self.expression() if self.accept_keyword("WHERE") else None
            return ast.With(
                tuple(items), distinct=distinct, order_by=tuple(order_by),
                skip=skip, limit=limit, where=where,
            )
        return ast.Return(
            tuple(items), distinct=distinct, order_by=tuple(order_by),
            skip=skip, limit=limit,
        )

    def _projection_item(self) -> ast.ProjectionItem:
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        return ast.ProjectionItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.accept_keyword("DESC", "DESCENDING"):
            descending = True
        else:
            self.accept_keyword("ASC", "ASCENDING")
        return ast.OrderItem(expr, descending)

    def _call(self) -> ast.Call:
        name_parts = [self.expect_ident()]
        while self.accept_punct("."):
            name_parts.append(self.expect_ident())
        procedure = ".".join(name_parts)
        args: List[ast.Expression] = []
        self.expect_punct("(")
        if not self.current.is_punct(")"):
            args.append(self.expression())
            while self.accept_punct(","):
                args.append(self.expression())
        self.expect_punct(")")
        yield_items: List[Tuple[str, Optional[str]]] = []
        if self.accept_keyword("YIELD"):
            while True:
                name = self.expect_ident()
                alias = self.expect_ident() if self.accept_keyword("AS") else None
                yield_items.append((name, alias))
                if not self.accept_punct(","):
                    break
        return ast.Call(procedure, tuple(args), tuple(yield_items))

    def _set_clause(self) -> ast.SetClause:
        items: List[ast.SetItem] = []
        while True:
            subject = self.expect_ident()
            self.expect_punct(".")
            key = self.expect_ident()
            self.expect_punct("=")
            value = self.expression()
            items.append(ast.SetItem(subject, key, value))
            if not self.accept_punct(","):
                break
        return ast.SetClause(tuple(items))

    def _delete(self, detach: bool) -> ast.Delete:
        exprs = [self.expression()]
        while self.accept_punct(","):
            exprs.append(self.expression())
        return ast.Delete(tuple(exprs), detach=detach)

    def _remove(self) -> ast.Remove:
        items: List[ast.RemoveItem] = []
        while True:
            subject = self.expect_ident()
            if self.accept_punct("."):
                items.append(ast.RemoveItem(subject, key=self.expect_ident()))
            else:
                self.expect_punct(":")
                items.append(ast.RemoveItem(subject, label=self.expect_ident()))
            if not self.accept_punct(","):
                break
        return ast.Remove(tuple(items))

    # -- patterns ---------------------------------------------------------

    def _path_pattern(self) -> ast.PathPattern:
        path_variable = None
        if self.current.kind == "ident" and self.peek().is_punct("="):
            path_variable = self.advance().value
            self.advance()  # "="
        nodes = [self._node_pattern()]
        rels: List[ast.RelationshipPattern] = []
        while self.current.is_punct("-", "<-"):
            rels.append(self._relationship_pattern())
            nodes.append(self._node_pattern())
        return ast.PathPattern(tuple(nodes), tuple(rels), path_variable)

    def _node_pattern(self) -> ast.NodePattern:
        self.expect_punct("(")
        variable = None
        if self.current.kind == "ident":
            variable = self.advance().value
        labels: List[str] = []
        while self.accept_punct(":"):
            labels.append(self.expect_ident())
        properties = None
        if self.current.is_punct("{"):
            properties = self._map_literal()
        self.expect_punct(")")
        return ast.NodePattern(variable, tuple(labels), properties)

    def _relationship_pattern(self) -> ast.RelationshipPattern:
        if self.accept_punct("<-"):
            left_arrow = True
        else:
            self.expect_punct("-")
            left_arrow = False

        variable = None
        types: List[str] = []
        properties = None
        if self.accept_punct("["):
            if self.current.kind == "ident":
                variable = self.advance().value
            if self.accept_punct(":"):
                types.append(self.expect_ident())
                while self.accept_punct("|"):
                    self.accept_punct(":")  # both `|T` and `|:T` accepted
                    types.append(self.expect_ident())
            if self.current.is_punct("{"):
                properties = self._map_literal()
            self.expect_punct("]")

        if self.accept_punct("->"):
            right_arrow = True
        else:
            self.expect_punct("-")
            right_arrow = False

        if left_arrow and right_arrow:
            # `<-[r]->` — used by FalkorDB-style queries (Figure 1); treat as
            # undirected, matching either orientation.
            direction = ast.BOTH
        elif left_arrow:
            direction = ast.IN
        elif right_arrow:
            direction = ast.OUT
        else:
            direction = ast.BOTH
        return ast.RelationshipPattern(
            variable, tuple(types), direction, properties
        )

    def _map_literal(self) -> ast.MapLiteral:
        self.expect_punct("{")
        items: List[Tuple[str, ast.Expression]] = []
        if not self.current.is_punct("}"):
            while True:
                key = self.expect_ident()
                self.expect_punct(":")
                items.append((key, self.expression()))
                if not self.accept_punct(","):
                    break
        self.expect_punct("}")
        return ast.MapLiteral(tuple(items))

    # -- expressions --------------------------------------------------------

    def expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        expr = self._xor_expr()
        while self.accept_keyword("OR"):
            expr = ast.Binary("OR", expr, self._xor_expr())
        return expr

    def _xor_expr(self) -> ast.Expression:
        expr = self._and_expr()
        while self.accept_keyword("XOR"):
            expr = ast.Binary("XOR", expr, self._and_expr())
        return expr

    def _and_expr(self) -> ast.Expression:
        expr = self._not_expr()
        while self.accept_keyword("AND"):
            expr = ast.Binary("AND", expr, self._not_expr())
        return expr

    def _not_expr(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        expr = self._additive()
        while True:
            token = self.current
            if token.is_punct("=", "<>", "<", "<=", ">", ">="):
                op = self.advance().value
                expr = ast.Binary(op, expr, self._additive())
            elif token.is_keyword("IN"):
                self.advance()
                expr = ast.Binary("IN", expr, self._additive())
            elif token.is_keyword("STARTS"):
                self.advance()
                self.expect_keyword("WITH")
                expr = ast.Binary("STARTS WITH", expr, self._additive())
            elif token.is_keyword("ENDS"):
                self.advance()
                self.expect_keyword("WITH")
                expr = ast.Binary("ENDS WITH", expr, self._additive())
            elif token.is_keyword("CONTAINS"):
                self.advance()
                expr = ast.Binary("CONTAINS", expr, self._additive())
            elif token.is_punct("=~"):
                self.advance()
                expr = ast.Binary("=~", expr, self._additive())
            elif token.is_keyword("IS"):
                self.advance()
                negated = self.accept_keyword("NOT")
                self.expect_keyword("NULL")
                expr = ast.IsNull(expr, negated=negated)
            else:
                return expr

    def _additive(self) -> ast.Expression:
        expr = self._multiplicative()
        while self.current.is_punct("+", "-"):
            op = self.advance().value
            expr = ast.Binary(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> ast.Expression:
        expr = self._power()
        while self.current.is_punct("*", "/", "%"):
            op = self.advance().value
            expr = ast.Binary(op, expr, self._power())
        return expr

    def _power(self) -> ast.Expression:
        expr = self._unary()
        if self.current.is_punct("^"):
            self.advance()
            return ast.Binary("^", expr, self._power())  # right-associative
        return expr

    def _unary(self) -> ast.Expression:
        if self.current.is_punct("-"):
            self.advance()
            operand = self._unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return ast.Literal(-operand.value)
            return ast.Unary("-", operand)
        if self.current.is_punct("+"):
            self.advance()
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expression:
        expr = self._atom()
        while True:
            if self.current.is_punct("."):
                # Property access; but `1.5` was already lexed as a float.
                self.advance()
                expr = ast.PropertyAccess(expr, self.expect_ident())
            elif self.current.is_punct("["):
                self.advance()
                if self.accept_punct(".."):
                    end = None if self.current.is_punct("]") else self.expression()
                    self.expect_punct("]")
                    expr = ast.ListSlice(expr, None, end)
                    continue
                first = self.expression()
                if self.accept_punct(".."):
                    end = None if self.current.is_punct("]") else self.expression()
                    self.expect_punct("]")
                    expr = ast.ListSlice(expr, first, end)
                else:
                    self.expect_punct("]")
                    expr = ast.ListIndex(expr, first)
            elif self.current.is_punct(":") and isinstance(
                expr, (ast.Variable, ast.PropertyAccess)
            ):
                labels: List[str] = []
                while self.accept_punct(":"):
                    labels.append(self.expect_ident())
                expr = ast.LabelsPredicate(expr, tuple(labels))
            else:
                return expr

    def _atom(self) -> ast.Expression:
        token = self.current

        if token.kind == "int":
            self.advance()
            return ast.Literal(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.Literal(float(token.value))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            self.advance()
            return self._case()

        if token.kind == "ident":
            # Function call or variable reference.
            if self.peek().is_punct("("):
                name = self.advance().value
                self.advance()  # "("
                if name.lower() == "count" and self.current.is_punct("*"):
                    self.advance()
                    self.expect_punct(")")
                    return ast.CountStar()
                distinct = self.accept_keyword("DISTINCT")
                args: List[ast.Expression] = []
                if not self.current.is_punct(")"):
                    args.append(self.expression())
                    while self.accept_punct(","):
                        args.append(self.expression())
                self.expect_punct(")")
                return ast.FunctionCall(name, tuple(args), distinct=distinct)
            self.advance()
            return ast.Variable(token.value)

        if token.is_punct("["):
            self.advance()
            # `[x IN source ...]` is a list comprehension, not a literal.
            if self.current.kind == "ident" and self.peek().is_keyword("IN"):
                variable = self.advance().value
                self.advance()  # IN
                source = self.expression()
                where = None
                if self.accept_keyword("WHERE"):
                    where = self.expression()
                projection = None
                if self.accept_punct("|"):
                    projection = self.expression()
                self.expect_punct("]")
                return ast.ListComprehension(variable, source, where, projection)
            items: List[ast.Expression] = []
            if not self.current.is_punct("]"):
                items.append(self.expression())
                while self.accept_punct(","):
                    items.append(self.expression())
            self.expect_punct("]")
            return ast.ListLiteral(tuple(items))

        if token.is_punct("{"):
            return self._map_literal()

        if token.is_punct("("):
            # Could be a parenthesized expression, a labels predicate, or a
            # pattern predicate like `(a)-[:T]->(b)`.  Try the pattern form
            # first with backtracking; only accept it when at least one
            # relationship is present (otherwise `(expr)` wins).
            saved = self._pos
            try:
                pattern = self._path_pattern()
                if pattern.relationships:
                    return ast.PatternPredicate(pattern)
            except ParseError:
                pass
            self._pos = saved
            self.advance()
            inner = self.expression()
            self.expect_punct(")")
            return inner

        raise ParseError(
            f"unexpected token {token.value!r} at {token.position}"
        )

    def _case(self) -> ast.CaseExpression:
        subject = None
        if not self.current.is_keyword("WHEN"):
            subject = self.expression()
        alternatives: List[ast.CaseAlternative] = []
        while self.accept_keyword("WHEN"):
            when = self.expression()
            self.expect_keyword("THEN")
            then = self.expression()
            alternatives.append(ast.CaseAlternative(when, then))
        if not alternatives:
            raise ParseError("CASE requires at least one WHEN arm")
        default = None
        if self.accept_keyword("ELSE"):
            default = self.expression()
        self.expect_keyword("END")
        return ast.CaseExpression(subject, tuple(alternatives), default)


def parse_query(text: str) -> Union[ast.Query, ast.UnionQuery]:
    """Parse a full Cypher query."""
    try:
        tokens = tokenize(text)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    return _Parser(tokens).parse_query()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (test helper)."""
    try:
        tokens = tokenize(text)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    parser = _Parser(tokens)
    expr = parser.expression()
    if parser.current.kind != "eof":
        raise ParseError(
            f"unexpected trailing input at {parser.current.position}"
        )
    return expr
