"""Abstract syntax tree for the Cypher subset used by GQS.

The tree covers all eleven data-retrieval clauses and subclauses the paper's
implementation supports (§4): ``MATCH``, ``OPTIONAL MATCH``, ``UNWIND``,
``WITH``, ``RETURN``, ``UNION``, ``CALL``, plus the ``WHERE``, ``ORDER BY``,
``SKIP`` and ``LIMIT`` refinements — and the six write clauses used by the
graph initializer (``CREATE``, ``SET``, ``MERGE``, ``DELETE``,
``DETACH DELETE``, ``REMOVE``).

Expression nodes expose ``children()`` so analyses (nesting depth, variable
references) can walk the tree generically, and every node renders through
:mod:`repro.cypher.printer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    # expressions
    "Expression",
    "Literal",
    "Variable",
    "PropertyAccess",
    "Unary",
    "Binary",
    "IsNull",
    "FunctionCall",
    "ListLiteral",
    "MapLiteral",
    "ListIndex",
    "ListSlice",
    "CaseExpression",
    "CaseAlternative",
    "CountStar",
    "ListComprehension",
    "PatternPredicate",
    "LabelsPredicate",
    # patterns
    "NodePattern",
    "RelationshipPattern",
    "PathPattern",
    # clauses
    "Clause",
    "Match",
    "Unwind",
    "ProjectionItem",
    "OrderItem",
    "With",
    "Return",
    "Call",
    "Create",
    "SetClause",
    "SetItem",
    "Delete",
    "Remove",
    "RemoveItem",
    "Merge",
    "Query",
    "UnionQuery",
    "walk_expressions",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Base class for all expression nodes."""

    def children(self) -> Iterable["Expression"]:
        """Direct sub-expressions, for generic tree walks."""
        return ()

    def depth(self) -> int:
        """Maximum nesting depth of this expression (leaf = 1)."""
        kids = list(self.children())
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    def variables(self) -> Iterator[str]:
        """All variable names referenced anywhere in this expression."""
        if isinstance(self, Variable):
            yield self.name
        for child in self.children():
            yield from child.variables()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: null, boolean, integer, float, or string."""

    value: Any


@dataclass(frozen=True)
class Variable(Expression):
    """A reference to a bound variable (node, relationship, or alias)."""

    name: str


@dataclass(frozen=True)
class PropertyAccess(Expression):
    """``subject.key`` property access."""

    subject: Expression
    key: str

    def children(self) -> Iterable[Expression]:
        return (self.subject,)


@dataclass(frozen=True)
class Unary(Expression):
    """A unary operator: ``NOT``, ``-``, or ``+``."""

    op: str
    operand: Expression

    def children(self) -> Iterable[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class Binary(Expression):
    """A binary operator application.

    ``op`` is one of the arithmetic (+ - * / % ^), comparison
    (= <> < <= > >=), logic (AND OR XOR), membership (IN), or string
    predicate (STARTS WITH / ENDS WITH / CONTAINS) operators.
    """

    op: str
    left: Expression
    right: Expression

    def children(self) -> Iterable[Expression]:
        return (self.left, self.right)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> Iterable[Expression]:
        return (self.operand,)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A function or aggregation call, e.g. ``endNode(r1)``, ``count(DISTINCT x)``."""

    name: str
    args: Tuple[Expression, ...] = ()
    distinct: bool = False

    def children(self) -> Iterable[Expression]:
        return self.args


@dataclass(frozen=True)
class CountStar(Expression):
    """``count(*)``."""


@dataclass(frozen=True)
class ListLiteral(Expression):
    """``[e1, e2, ...]``."""

    items: Tuple[Expression, ...] = ()

    def children(self) -> Iterable[Expression]:
        return self.items


@dataclass(frozen=True)
class MapLiteral(Expression):
    """``{k1: e1, ...}``."""

    items: Tuple[Tuple[str, Expression], ...] = ()

    def children(self) -> Iterable[Expression]:
        return tuple(expr for _key, expr in self.items)


@dataclass(frozen=True)
class ListIndex(Expression):
    """``subject[index]``."""

    subject: Expression
    index: Expression

    def children(self) -> Iterable[Expression]:
        return (self.subject, self.index)


@dataclass(frozen=True)
class ListSlice(Expression):
    """``subject[start..end]`` with either bound optional."""

    subject: Expression
    start: Optional[Expression] = None
    end: Optional[Expression] = None

    def children(self) -> Iterable[Expression]:
        kids = [self.subject]
        if self.start is not None:
            kids.append(self.start)
        if self.end is not None:
            kids.append(self.end)
        return tuple(kids)


@dataclass(frozen=True)
class CaseAlternative:
    """One ``WHEN ... THEN ...`` arm of a CASE expression."""

    when: Expression
    then: Expression


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Generic or simple ``CASE`` expression."""

    subject: Optional[Expression]
    alternatives: Tuple[CaseAlternative, ...]
    default: Optional[Expression] = None

    def children(self) -> Iterable[Expression]:
        kids: List[Expression] = []
        if self.subject is not None:
            kids.append(self.subject)
        for alt in self.alternatives:
            kids.append(alt.when)
            kids.append(alt.then)
        if self.default is not None:
            kids.append(self.default)
        return tuple(kids)


@dataclass(frozen=True)
class ListComprehension(Expression):
    """``[variable IN source WHERE predicate | projection]``.

    ``predicate`` and ``projection`` are optional; without a projection the
    comprehension yields the (filtered) items unchanged.
    """

    variable: str
    source: Expression
    where: Optional[Expression] = None
    projection: Optional[Expression] = None

    def children(self) -> Iterable[Expression]:
        kids: List[Expression] = [self.source]
        if self.where is not None:
            kids.append(self.where)
        if self.projection is not None:
            kids.append(self.projection)
        return tuple(kids)

    def variables(self) -> Iterator[str]:
        # The bound variable is local to the comprehension: occurrences of
        # it inside the body are not references to outer scope.
        for child in self.children():
            for name in child.variables():
                if name != self.variable:
                    yield name


@dataclass(frozen=True)
class PatternPredicate(Expression):
    """A path pattern used as a boolean expression in WHERE.

    ``WHERE (a)-[:T]->()`` is true when at least one match of the pattern
    exists, with variables already bound in the current row constraining
    the match (an existential subquery in miniature).
    """

    pattern: "PathPattern"

    def variables(self) -> Iterator[str]:
        yield from self.pattern.variables()


@dataclass(frozen=True)
class LabelsPredicate(Expression):
    """``variable:Label1:Label2`` used as a boolean expression."""

    subject: Expression
    labels: Tuple[str, ...]

    def children(self) -> Iterable[Expression]:
        return (self.subject,)


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodePattern:
    """``(variable :Label1:Label2 {props})``; every field optional."""

    variable: Optional[str] = None
    labels: Tuple[str, ...] = ()
    properties: Optional[MapLiteral] = None


# Relationship direction encoding for :class:`RelationshipPattern`.
OUT = "out"    # (a)-[r]->(b)
IN = "in"      # (a)<-[r]-(b)
BOTH = "both"  # (a)-[r]-(b)


@dataclass(frozen=True)
class RelationshipPattern:
    """``-[variable :TYPE {props}]->`` (direction relative to reading order)."""

    variable: Optional[str] = None
    types: Tuple[str, ...] = ()
    direction: str = OUT
    properties: Optional[MapLiteral] = None

    def __post_init__(self) -> None:
        if self.direction not in (OUT, IN, BOTH):
            raise ValueError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class PathPattern:
    """A chain ``(n0)-[r0]-(n1)-...-(nk)``.

    ``nodes`` has exactly one more element than ``relationships``.  A named
    path (``MATCH p = (a)-[r]->(b)``) binds the matched chain to
    ``path_variable`` as a PATH value.
    """

    nodes: Tuple[NodePattern, ...]
    relationships: Tuple[RelationshipPattern, ...] = ()
    path_variable: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.relationships) + 1:
            raise ValueError("path pattern arity mismatch")

    def variables(self) -> Iterator[str]:
        if self.path_variable:
            yield self.path_variable
        for node in self.nodes:
            if node.variable:
                yield node.variable
        for rel in self.relationships:
            if rel.variable:
                yield rel.variable


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------

class Clause:
    """Base class for clauses."""


@dataclass(frozen=True)
class Match(Clause):
    """``MATCH`` / ``OPTIONAL MATCH`` with an optional ``WHERE`` subclause."""

    patterns: Tuple[PathPattern, ...]
    optional: bool = False
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Unwind(Clause):
    """``UNWIND expr AS alias``."""

    expression: Expression
    alias: str


@dataclass(frozen=True)
class ProjectionItem:
    """``expr AS alias`` (alias optional for plain variable projections)."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self) -> str:
        """The column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, Variable):
            return self.expression.name
        from repro.cypher.printer import print_expression

        return print_expression(self.expression)


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class With(Clause):
    """``WITH [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n] [WHERE p]``."""

    items: Tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Return(Clause):
    """``RETURN [DISTINCT] items [ORDER BY ...] [SKIP n] [LIMIT n]``."""

    items: Tuple[ProjectionItem, ...]
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None


@dataclass(frozen=True)
class Call(Clause):
    """``CALL proc(args) YIELD name [AS alias], ...``."""

    procedure: str
    args: Tuple[Expression, ...] = ()
    yield_items: Tuple[Tuple[str, Optional[str]], ...] = ()


@dataclass(frozen=True)
class Create(Clause):
    """``CREATE pattern, ...`` (write clause)."""

    patterns: Tuple[PathPattern, ...]


@dataclass(frozen=True)
class SetItem:
    """One assignment in a ``SET`` clause: ``subject.key = value``."""

    subject: str
    key: str
    value: Expression


@dataclass(frozen=True)
class SetClause(Clause):
    """``SET items`` (write clause)."""

    items: Tuple[SetItem, ...]


@dataclass(frozen=True)
class Delete(Clause):
    """``DELETE`` / ``DETACH DELETE`` (write clause)."""

    expressions: Tuple[Expression, ...]
    detach: bool = False


@dataclass(frozen=True)
class RemoveItem:
    """One target of a ``REMOVE`` clause: a property or a label."""

    subject: str
    key: Optional[str] = None      # property name, or
    label: Optional[str] = None    # label name


@dataclass(frozen=True)
class Remove(Clause):
    """``REMOVE items`` (write clause)."""

    items: Tuple[RemoveItem, ...]


@dataclass(frozen=True)
class Merge(Clause):
    """``MERGE pattern`` — MATCH-or-CREATE (write clause)."""

    pattern: PathPattern


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Query:
    """A single (non-UNION) query: an ordered sequence of clauses."""

    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("a query must contain at least one clause")


@dataclass(frozen=True)
class UnionQuery:
    """``query UNION [ALL] query`` (left-associative chains nest on the left)."""

    left: "Query | UnionQuery"
    right: Query
    all: bool = False


def walk_expressions(clause: Clause) -> Iterator[Expression]:
    """Yield every top-level expression appearing in *clause*.

    This is the entry point the analyzers use; sub-expressions are reached
    via :meth:`Expression.children`.
    """
    if isinstance(clause, Match):
        for pattern in clause.patterns:
            for node in pattern.nodes:
                if node.properties is not None:
                    yield node.properties
            for rel in pattern.relationships:
                if rel.properties is not None:
                    yield rel.properties
        if clause.where is not None:
            yield clause.where
    elif isinstance(clause, Unwind):
        yield clause.expression
    elif isinstance(clause, (With, Return)):
        for item in clause.items:
            yield item.expression
        for order in clause.order_by:
            yield order.expression
        if clause.skip is not None:
            yield clause.skip
        if clause.limit is not None:
            yield clause.limit
        if isinstance(clause, With) and clause.where is not None:
            yield clause.where
    elif isinstance(clause, Call):
        yield from clause.args
    elif isinstance(clause, Create):
        for pattern in clause.patterns:
            for node in pattern.nodes:
                if node.properties is not None:
                    yield node.properties
            for rel in pattern.relationships:
                if rel.properties is not None:
                    yield rel.properties
    elif isinstance(clause, SetClause):
        for item in clause.items:
            yield item.value
    elif isinstance(clause, Delete):
        yield from clause.expressions
    elif isinstance(clause, Merge):
        for node in clause.pattern.nodes:
            if node.properties is not None:
                yield node.properties
        for rel in clause.pattern.relationships:
            if rel.properties is not None:
                yield rel.properties
