"""Cypher function library.

The paper's implementation supports "an extensive library of 61 functions, as
well as aggregation operators" (§4) — the subset commonly supported by the
four tested GDBs.  This module provides exactly that: 61 scalar/string/
numeric/list/graph functions with openCypher semantics, plus the aggregation
functions handled by the executor.

Each function is registered as a :class:`FunctionDef` carrying its signature
metadata.  The signature metadata doubles as the template catalog for the
expression synthesizer (§3.5): a template like ``left(par1, par2)`` is simply
a function whose parameter types are known.

Null handling follows openCypher: unless a function opts out (``coalesce``,
the ``...OrNull`` conversions), any ``null`` argument yields ``null``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.model import Node, Path, Relationship
from repro.graph import values as V

__all__ = [
    "FunctionDef",
    "FunctionError",
    "FUNCTIONS",
    "AGGREGATES",
    "lookup",
    "is_aggregate",
    "call_function",
]


class FunctionError(V.CypherTypeError):
    """Raised when a function receives invalid arguments."""


@dataclass(frozen=True)
class FunctionDef:
    """A registered Cypher function.

    ``arg_types`` lists the declared type of each parameter (using "NUMBER"
    for int-or-float and "ANY" for unconstrained); trailing parameters beyond
    ``min_args`` are optional.  ``propagates_null`` controls the default
    null-in/null-out behaviour.
    """

    name: str
    arg_types: Tuple[str, ...]
    return_type: str
    impl: Callable[..., Any]
    min_args: Optional[int] = None
    propagates_null: bool = True
    variadic: bool = False

    @cached_property
    def arity_min(self) -> int:
        return self.min_args if self.min_args is not None else len(self.arg_types)

    @cached_property
    def arity_max(self) -> Optional[int]:
        return None if self.variadic else len(self.arg_types)


def _want_number(value: Any, fn: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FunctionError(f"{fn}() expects a number, got {V.type_name(value)}")
    return value


def _want_int(value: Any, fn: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise FunctionError(f"{fn}() expects an integer, got {V.type_name(value)}")
    return value


def _want_str(value: Any, fn: str) -> str:
    if not isinstance(value, str):
        raise FunctionError(f"{fn}() expects a string, got {V.type_name(value)}")
    return value


def _want_list(value: Any, fn: str) -> list:
    if not isinstance(value, list):
        raise FunctionError(f"{fn}() expects a list, got {V.type_name(value)}")
    return value


# ---------------------------------------------------------------------------
# Implementations
# ---------------------------------------------------------------------------

def _abs(x):
    return abs(_want_number(x, "abs"))


def _ceil(x):
    num = _want_number(x, "ceil")
    if isinstance(num, float) and not math.isfinite(num):
        return num  # ceil(±inf) = ±inf, ceil(NaN) = NaN
    return float(math.ceil(num))


def _floor(x):
    num = _want_number(x, "floor")
    if isinstance(num, float) and not math.isfinite(num):
        return num
    return float(math.floor(num))


def _round(x):
    # Cypher round() rounds half away from zero, returning a float.
    num = _want_number(x, "round")
    if isinstance(num, float) and not math.isfinite(num):
        return num
    return float(math.floor(num + 0.5)) if num >= 0 else float(math.ceil(num - 0.5))


def _sign(x):
    num = _want_number(x, "sign")
    return (num > 0) - (num < 0)


def _sqrt(x):
    num = _want_number(x, "sqrt")
    if num < 0:
        return float("nan")
    return math.sqrt(num)


def _exp(x):
    try:
        return math.exp(_want_number(x, "exp"))
    except OverflowError:
        return float("inf")


def _log(x):
    num = _want_number(x, "log")
    if num <= 0:
        return float("nan")
    return math.log(num)


def _log10(x):
    num = _want_number(x, "log10")
    if num <= 0:
        return float("nan")
    return math.log10(num)


def _atan2(y, x):
    return math.atan2(_want_number(y, "atan2"), _want_number(x, "atan2"))


def _clamped_trig(fn_name, fn):
    def impl(x):
        num = _want_number(x, fn_name)
        if fn_name in ("asin", "acos") and not -1.0 <= num <= 1.0:
            return float("nan")
        return fn(num)

    return impl


def _cot(x):
    num = _want_number(x, "cot")
    tangent = math.tan(num)
    if tangent == 0:
        return float("inf")
    return 1.0 / tangent


def _left(s, n):
    text = _want_str(s, "left")
    count = _want_int(n, "left")
    if count < 0:
        raise FunctionError("left() expects a non-negative length")
    return text[:count]


def _right(s, n):
    text = _want_str(s, "right")
    count = _want_int(n, "right")
    if count < 0:
        raise FunctionError("right() expects a non-negative length")
    return text[len(text) - min(count, len(text)):]


def _replace(original, search, replacement):
    text = _want_str(original, "replace")
    needle = _want_str(search, "replace")
    repl = _want_str(replacement, "replace")
    if needle == "":
        # Underspecified in openCypher; the reference behaviour we adopt (and
        # the one the paper's expected result uses in Figure 9) is to return
        # the original string unchanged.  MemgraphSim's fault catalog models
        # the real engine hanging here.
        return text
    return text.replace(needle, repl)


def _substring(s, start, length=None):
    text = _want_str(s, "substring")
    begin = _want_int(start, "substring")
    if begin < 0:
        raise FunctionError("substring() expects a non-negative start")
    if length is None:
        return text[begin:]
    count = _want_int(length, "substring")
    if count < 0:
        raise FunctionError("substring() expects a non-negative length")
    return text[begin:begin + count]


def _split(s, delim):
    text = _want_str(s, "split")
    sep = _want_str(delim, "split")
    if sep == "":
        return list(text)
    return text.split(sep)


def _reverse(value):
    if isinstance(value, str):
        return value[::-1]
    if isinstance(value, list):
        return list(reversed(value))
    raise FunctionError(
        f"reverse() expects a string or list, got {V.type_name(value)}"
    )


def _size(value):
    if isinstance(value, (str, list)):
        return len(value)
    raise FunctionError(f"size() expects a string or list, got {V.type_name(value)}")


def _char_length(value):
    return len(_want_str(value, "char_length"))


def _to_string(value):
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise FunctionError(f"toString() cannot convert {V.type_name(value)}")


def _to_integer(value):
    if isinstance(value, bool):
        raise FunctionError("toInteger() cannot convert BOOLEAN")
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise FunctionError("toInteger() cannot convert a non-finite float")
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError:
            try:
                return int(float(value.strip()))
            except ValueError:
                return None
    raise FunctionError(f"toInteger() cannot convert {V.type_name(value)}")


def _to_float(value):
    if isinstance(value, bool):
        raise FunctionError("toFloat() cannot convert BOOLEAN")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    raise FunctionError(f"toFloat() cannot convert {V.type_name(value)}")


def _to_boolean(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered == "true":
            return True
        if lowered == "false":
            return False
        return None
    raise FunctionError(f"toBoolean() cannot convert {V.type_name(value)}")


def _or_null(converter):
    def impl(value):
        try:
            return converter(value)
        except FunctionError:
            return None

    return impl


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _head(value):
    items = _want_list(value, "head")
    return items[0] if items else None


def _last(value):
    items = _want_list(value, "last")
    return items[-1] if items else None


def _tail(value):
    items = _want_list(value, "tail")
    return items[1:]


def _range(start, end, step=None):
    begin = _want_int(start, "range")
    stop = _want_int(end, "range")
    stride = 1 if step is None else _want_int(step, "range")
    if stride == 0:
        raise FunctionError("range() step must not be zero")
    if stride > 0:
        return list(range(begin, stop + 1, stride))
    return list(range(begin, stop - 1, stride))


def _keys(value):
    if isinstance(value, (Node, Relationship)):
        return sorted(value.properties.keys())
    if isinstance(value, dict):
        return sorted(value.keys())
    raise FunctionError(f"keys() expects a map or element, got {V.type_name(value)}")


def _labels(value):
    if isinstance(value, Node):
        return sorted(value.labels)
    raise FunctionError(f"labels() expects a node, got {V.type_name(value)}")


def _type(value):
    if isinstance(value, Relationship):
        return value.type
    raise FunctionError(f"type() expects a relationship, got {V.type_name(value)}")


def _id(value):
    if isinstance(value, (Node, Relationship)):
        return value.id
    raise FunctionError(f"id() expects an element, got {V.type_name(value)}")


def _properties(value):
    if isinstance(value, (Node, Relationship)):
        return dict(value.properties)
    if isinstance(value, dict):
        return dict(value)
    raise FunctionError(
        f"properties() expects a map or element, got {V.type_name(value)}"
    )


def _start_node(value):
    if not isinstance(value, Relationship):
        raise FunctionError(
            f"startNode() expects a relationship, got {V.type_name(value)}"
        )
    return ("__node_ref__", value.start)


def _end_node(value):
    if not isinstance(value, Relationship):
        raise FunctionError(
            f"endNode() expects a relationship, got {V.type_name(value)}"
        )
    return ("__node_ref__", value.end)


def _length(value):
    if isinstance(value, Path):
        return len(value)
    if isinstance(value, (str, list)):
        # Legacy Cypher allowed length() on strings and lists.
        return len(value)
    raise FunctionError(f"length() expects a path, got {V.type_name(value)}")


def _nodes(value):
    if isinstance(value, Path):
        return list(value.nodes)
    raise FunctionError(f"nodes() expects a path, got {V.type_name(value)}")


def _relationships(value):
    if isinstance(value, Path):
        return list(value.relationships)
    raise FunctionError(
        f"relationships() expects a path, got {V.type_name(value)}"
    )


def _is_empty(value):
    if isinstance(value, (str, list, dict)):
        return len(value) == 0
    raise FunctionError(
        f"isEmpty() expects a string, list, or map, got {V.type_name(value)}"
    )


def _is_nan(value):
    num = _want_number(value, "isNaN")
    return isinstance(num, float) and math.isnan(num)


def _value_type(value):
    return V.type_name(value)


def _to_lower(value):
    return _want_str(value, "toLower").lower()


def _to_upper(value):
    return _want_str(value, "toUpper").upper()


def _trim(value):
    return _want_str(value, "trim").strip()


def _ltrim(value):
    return _want_str(value, "ltrim").lstrip()


def _rtrim(value):
    return _want_str(value, "rtrim").rstrip()


def _exists(value):
    # exists(n.prop) — the evaluator passes the evaluated property value and
    # this reports whether it was present.  Null-safe by definition.
    return value is not None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _defs() -> List[FunctionDef]:
    F = FunctionDef
    defs = [
        # --- numeric (22)
        F("abs", ("NUMBER",), "NUMBER", _abs),
        F("ceil", ("NUMBER",), "FLOAT", _ceil),
        F("floor", ("NUMBER",), "FLOAT", _floor),
        F("round", ("NUMBER",), "FLOAT", _round),
        F("sign", ("NUMBER",), "INTEGER", _sign),
        F("sqrt", ("NUMBER",), "FLOAT", _sqrt),
        F("exp", ("NUMBER",), "FLOAT", _exp),
        F("log", ("NUMBER",), "FLOAT", _log),
        F("log10", ("NUMBER",), "FLOAT", _log10),
        F("sin", ("NUMBER",), "FLOAT", _clamped_trig("sin", math.sin)),
        F("cos", ("NUMBER",), "FLOAT", _clamped_trig("cos", math.cos)),
        F("tan", ("NUMBER",), "FLOAT", _clamped_trig("tan", math.tan)),
        F("asin", ("NUMBER",), "FLOAT", _clamped_trig("asin", math.asin)),
        F("acos", ("NUMBER",), "FLOAT", _clamped_trig("acos", math.acos)),
        F("atan", ("NUMBER",), "FLOAT", _clamped_trig("atan", math.atan)),
        F("atan2", ("NUMBER", "NUMBER"), "FLOAT", _atan2),
        F("cot", ("NUMBER",), "FLOAT", _cot),
        F("degrees", ("NUMBER",), "FLOAT",
          lambda x: math.degrees(_want_number(x, "degrees"))),
        F("radians", ("NUMBER",), "FLOAT",
          lambda x: math.radians(_want_number(x, "radians"))),
        F("pi", (), "FLOAT", lambda: math.pi),
        F("e", (), "FLOAT", lambda: math.e),
        F("isNaN", ("NUMBER",), "BOOLEAN", _is_nan),
        # --- string (14)
        F("left", ("STRING", "INTEGER"), "STRING", _left),
        F("right", ("STRING", "INTEGER"), "STRING", _right),
        F("ltrim", ("STRING",), "STRING", _ltrim),
        F("rtrim", ("STRING",), "STRING", _rtrim),
        F("trim", ("STRING",), "STRING", _trim),
        F("replace", ("STRING", "STRING", "STRING"), "STRING", _replace),
        F("split", ("STRING", "STRING"), "LIST", _split),
        F("substring", ("STRING", "INTEGER", "INTEGER"), "STRING",
          _substring, min_args=2),
        F("toLower", ("STRING",), "STRING", _to_lower),
        F("toUpper", ("STRING",), "STRING", _to_upper),
        F("toString", ("ANY",), "STRING", _to_string),
        F("toStringOrNull", ("ANY",), "STRING", _or_null(_to_string)),
        F("char_length", ("STRING",), "INTEGER", _char_length),
        F("reverse", ("ANY",), "ANY", _reverse),
        # --- conversions (6)
        F("toInteger", ("ANY",), "INTEGER", _to_integer),
        F("toIntegerOrNull", ("ANY",), "INTEGER", _or_null(_to_integer)),
        F("toFloat", ("ANY",), "FLOAT", _to_float),
        F("toFloatOrNull", ("ANY",), "FLOAT", _or_null(_to_float)),
        F("toBoolean", ("ANY",), "BOOLEAN", _to_boolean),
        F("toBooleanOrNull", ("ANY",), "BOOLEAN", _or_null(_to_boolean)),
        # --- list (7)
        F("head", ("LIST",), "ANY", _head),
        F("last", ("LIST",), "ANY", _last),
        F("tail", ("LIST",), "LIST", _tail),
        F("range", ("INTEGER", "INTEGER", "INTEGER"), "LIST", _range, min_args=2),
        F("size", ("ANY",), "INTEGER", _size),
        F("keys", ("ANY",), "LIST", _keys),
        F("labels", ("NODE",), "LIST", _labels),
        # --- graph / scalar (12)
        F("id", ("ANY",), "INTEGER", _id),
        F("type", ("RELATIONSHIP",), "STRING", _type),
        F("startNode", ("RELATIONSHIP",), "NODE", _start_node),
        F("endNode", ("RELATIONSHIP",), "NODE", _end_node),
        F("properties", ("ANY",), "MAP", _properties),
        F("length", ("ANY",), "INTEGER", _length),
        F("nodes", ("PATH",), "LIST", _nodes),
        F("relationships", ("PATH",), "LIST", _relationships),
        F("coalesce", ("ANY",), "ANY", _coalesce,
          min_args=1, propagates_null=False, variadic=True),
        F("exists", ("ANY",), "BOOLEAN", _exists, propagates_null=False),
        F("isEmpty", ("ANY",), "BOOLEAN", _is_empty),
        F("valueType", ("ANY",), "STRING", _value_type, propagates_null=False),
    ]
    return defs


FUNCTIONS: Dict[str, FunctionDef] = {fdef.name.lower(): fdef for fdef in _defs()}

# Aggregation functions are executed by the grouping machinery in the
# executor rather than through call_function.
AGGREGATES = frozenset(
    ["count", "sum", "avg", "min", "max", "collect", "stdev", "stdevp"]
)

assert len(FUNCTIONS) == 61, f"expected 61 functions, have {len(FUNCTIONS)}"


# Memoized case-insensitive views; query names come from a finite AST
# vocabulary, so these caches stay small while skipping a str.lower() on
# every evaluation of every function call.
_LOOKUP_CACHE: Dict[str, Optional[FunctionDef]] = {}
_AGGREGATE_CACHE: Dict[str, bool] = {}


def lookup(name: str) -> Optional[FunctionDef]:
    """Case-insensitive function lookup."""
    try:
        return _LOOKUP_CACHE[name]
    except KeyError:
        fdef = _LOOKUP_CACHE[name] = FUNCTIONS.get(name.lower())
        return fdef


def is_aggregate(name: str) -> bool:
    """Whether *name* is an aggregation function."""
    try:
        return _AGGREGATE_CACHE[name]
    except KeyError:
        verdict = _AGGREGATE_CACHE[name] = name.lower() in AGGREGATES
        return verdict


def call_function(name: str, args: Sequence[Any]) -> Any:
    """Invoke a registered function with already-evaluated arguments.

    Handles arity checking and default null propagation.  The special
    ``("__node_ref__", id)`` return convention of startNode/endNode is
    resolved by the evaluator, which has access to the graph.
    """
    fdef = lookup(name)
    if fdef is None:
        raise FunctionError(f"unknown function {name}()")
    n_args = len(args)
    if n_args < fdef.arity_min or (
        fdef.arity_max is not None and n_args > fdef.arity_max
    ):
        raise FunctionError(
            f"{fdef.name}() called with {n_args} argument(s); expected "
            f"{fdef.arity_min}"
            + (f"..{fdef.arity_max}" if fdef.arity_max != fdef.arity_min else "")
        )
    if fdef.propagates_null and any(arg is None for arg in args):
        return None
    return fdef.impl(*args)
