"""Cypher-to-Gremlin translation (paper §7, "Beyond Cypher").

The paper tests JanusGraph by translating GQS's synthesized Cypher queries
with the *Cypher for Gremlin* compiler, and reports that the compiler
mistranslates ``UNWIND`` and aggregation functions — so those features were
disabled during that experiment.  This module reproduces that setup: a
translator from the supported Cypher subset to Gremlin traversal text, which
raises :class:`UnsupportedForGremlin` for exactly the constructs the paper
had to disable (UNWIND, aggregations, UNION, CALL).

The output follows the classic TinkerPop style::

    MATCH (a:USER)-[r:LIKE]->(b) WHERE a.age > 3 RETURN b.name AS name

    g.V().hasLabel('USER').as('a').outE('LIKE').as('r').inV().as('b')
     .where(...).select('b').by('name')

The translation targets structural fidelity (pattern shape, filters,
projections, ordering, paging), not a bug-for-bug emulation of the
cypher-for-gremlin compiler.
"""

from __future__ import annotations

from typing import List, Union

from repro.cypher import ast
from repro.cypher.functions import is_aggregate
from repro.engine.evaluator import has_aggregate

__all__ = ["UnsupportedForGremlin", "translate_query", "translate_expression"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


class UnsupportedForGremlin(Exception):
    """Raised for Cypher constructs the §7 experiment had to disable."""


def _literal(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return "'" + value.replace("\\", "\\\\").replace("'", "\\'") + "'"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, list):
        return "[" + ", ".join(_literal(item) for item in value) + "]"
    raise UnsupportedForGremlin(f"cannot express literal {value!r}")


_COMPARATORS = {
    "=": "eq",
    "<>": "neq",
    "<": "lt",
    "<=": "lte",
    ">": "gt",
    ">=": "gte",
}

_TEXT_PREDICATES = {
    "STARTS WITH": "startingWith",
    "ENDS WITH": "endingWith",
    "CONTAINS": "containing",
}


def translate_expression(expr: ast.Expression) -> str:
    """Translate an expression into Gremlin's closure-style syntax."""
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.Variable):
        return f"select('{expr.name}')"
    if isinstance(expr, ast.PropertyAccess):
        if isinstance(expr.subject, ast.Variable):
            return f"select('{expr.subject.name}').values('{expr.key}')"
        return f"{translate_expression(expr.subject)}.values('{expr.key}')"
    if isinstance(expr, ast.Binary):
        if expr.op in _COMPARATORS:
            return (
                f"{translate_expression(expr.left)}.is(P."
                f"{_COMPARATORS[expr.op]}({translate_expression(expr.right)}))"
            )
        if expr.op in _TEXT_PREDICATES:
            return (
                f"{translate_expression(expr.left)}.is(TextP."
                f"{_TEXT_PREDICATES[expr.op]}({translate_expression(expr.right)}))"
            )
        if expr.op == "AND":
            return (
                f"and({translate_expression(expr.left)}, "
                f"{translate_expression(expr.right)})"
            )
        if expr.op == "OR":
            return (
                f"or({translate_expression(expr.left)}, "
                f"{translate_expression(expr.right)})"
            )
        if expr.op in ("+", "-", "*", "/", "%"):
            op_name = {"+": "sum", "-": "minus", "*": "mult",
                       "/": "div", "%": "mod"}[expr.op]
            return (
                f"math('{op_name}', {translate_expression(expr.left)}, "
                f"{translate_expression(expr.right)})"
            )
        if expr.op == "IN":
            return (
                f"{translate_expression(expr.left)}.is(P.within("
                f"{translate_expression(expr.right)}))"
            )
        raise UnsupportedForGremlin(f"operator {expr.op!r}")
    if isinstance(expr, ast.Unary):
        if expr.op == "NOT":
            return f"not({translate_expression(expr.operand)})"
        if expr.op == "-":
            return f"math('neg', {translate_expression(expr.operand)})"
        raise UnsupportedForGremlin(f"unary operator {expr.op!r}")
    if isinstance(expr, ast.IsNull):
        inner = translate_expression(expr.operand)
        return f"{inner}.hasNext()" if expr.negated else f"not({inner}.hasNext())"
    if isinstance(expr, ast.FunctionCall):
        if is_aggregate(expr.name):
            raise UnsupportedForGremlin(
                f"aggregation function {expr.name}() (disabled in the §7 setup)"
            )
        args = ", ".join(translate_expression(arg) for arg in expr.args)
        return f"cfog.{expr.name}({args})"
    if isinstance(expr, ast.CountStar):
        raise UnsupportedForGremlin("count(*) (disabled in the §7 setup)")
    if isinstance(expr, ast.ListLiteral):
        return "[" + ", ".join(translate_expression(i) for i in expr.items) + "]"
    if isinstance(expr, ast.ListIndex):
        return (
            f"cfog.index({translate_expression(expr.subject)}, "
            f"{translate_expression(expr.index)})"
        )
    if isinstance(expr, ast.ListComprehension):
        raise UnsupportedForGremlin("list comprehension")
    if isinstance(expr, ast.PatternPredicate):
        raise UnsupportedForGremlin("pattern predicate")
    if isinstance(expr, ast.CaseExpression):
        return _translate_case(expr)
    if isinstance(expr, ast.LabelsPredicate):
        subject = translate_expression(expr.subject)
        labels = ", ".join(f"'{label}'" for label in expr.labels)
        return f"{subject}.hasLabel({labels})"
    raise UnsupportedForGremlin(f"expression {type(expr).__name__}")


def _translate_case(expr: ast.CaseExpression) -> str:
    parts: List[str] = []
    for alternative in expr.alternatives:
        parts.append(
            f"choose({translate_expression(alternative.when)}, "
            f"{translate_expression(alternative.then)}"
        )
    tail = (
        translate_expression(expr.default)
        if expr.default is not None
        else "constant(null)"
    )
    out = tail
    for part in reversed(parts):
        out = f"{part}, {out})"
    return out


def _translate_node(node: ast.NodePattern, first: bool) -> str:
    step = "g.V()" if first else ""
    if node.labels:
        labels = ", ".join(f"'{label}'" for label in node.labels)
        step += f".hasLabel({labels})" if step else f"hasLabel({labels})"
    if node.properties is not None:
        for key, value in node.properties.items:
            step += f".has('{key}', {translate_expression(value)})"
    if node.variable:
        step += f".as('{node.variable}')"
    return step or "identity()"


def _translate_rel(rel: ast.RelationshipPattern) -> str:
    if rel.direction == ast.OUT:
        edge, vertex = "outE", "inV"
    elif rel.direction == ast.IN:
        edge, vertex = "inE", "outV"
    else:
        edge, vertex = "bothE", "otherV"
    types = ", ".join(f"'{t}'" for t in rel.types)
    step = f".{edge}({types})"
    if rel.properties is not None:
        for key, value in rel.properties.items:
            step += f".has('{key}', {translate_expression(value)})"
    if rel.variable:
        step += f".as('{rel.variable}')"
    step += f".{vertex}()"
    return step


def _translate_pattern(pattern: ast.PathPattern, first: bool) -> str:
    out = _translate_node(pattern.nodes[0], first)
    for index, rel in enumerate(pattern.relationships):
        out += _translate_rel(rel)
        nxt = _translate_node(pattern.nodes[index + 1], first=False)
        if nxt != "identity()":
            out += "." + nxt
    return out


def translate_query(query: AnyQuery) -> str:
    """Translate a query; raises :class:`UnsupportedForGremlin` when the
    query uses a construct the §7 experiment disabled."""
    if isinstance(query, ast.UnionQuery):
        raise UnsupportedForGremlin("UNION (disabled in the §7 setup)")

    steps: List[str] = []
    first_match = True
    for clause in query.clauses:
        if isinstance(clause, ast.Match):
            if clause.optional:
                raise UnsupportedForGremlin("OPTIONAL MATCH")
            for index, pattern in enumerate(clause.patterns):
                part = _translate_pattern(pattern, first_match and index == 0)
                if first_match and index == 0:
                    steps.append(part)
                else:
                    steps.append(f".match(__.{part})")
            first_match = False
            if clause.where is not None:
                steps.append(f".where({translate_expression(clause.where)})")
        elif isinstance(clause, ast.Unwind):
            raise UnsupportedForGremlin("UNWIND (disabled in the §7 setup)")
        elif isinstance(clause, ast.Call):
            raise UnsupportedForGremlin("CALL (no Gremlin counterpart)")
        elif isinstance(clause, (ast.With, ast.Return)):
            if any(has_aggregate(item.expression) for item in clause.items):
                raise UnsupportedForGremlin(
                    "aggregation (disabled in the §7 setup)"
                )
            projections = []
            for item in clause.items:
                name = item.output_name()
                projections.append(
                    f".by({translate_expression(item.expression)}).as('{name}')"
                    if not isinstance(item.expression, ast.Variable)
                    else f".by(select('{item.expression.name}')).as('{name}')"
                )
            names = ", ".join(f"'{item.output_name()}'" for item in clause.items)
            steps.append(f".project({names})" + "".join(
                f".by({translate_expression(item.expression)})"
                for item in clause.items
            ))
            if clause.distinct:
                steps.append(".dedup()")
            for order in clause.order_by:
                direction = "desc" if order.descending else "asc"
                steps.append(
                    f".order().by({translate_expression(order.expression)}, "
                    f"{direction})"
                )
            if clause.skip is not None and isinstance(clause.skip, ast.Literal):
                steps.append(f".skip({clause.skip.value})")
            if clause.limit is not None and isinstance(clause.limit, ast.Literal):
                steps.append(f".limit({clause.limit.value})")
            if isinstance(clause, ast.With) and clause.where is not None:
                steps.append(f".where({translate_expression(clause.where)})")
        else:
            raise UnsupportedForGremlin(
                f"clause {type(clause).__name__} (write clauses are not part "
                f"of the retrieval translation)"
            )
    if not steps:
        raise UnsupportedForGremlin("empty query")
    return "".join(steps)
