"""Query complexity analysis (paper §5.4.2).

The paper parses 10 000 test queries per tool into ASTs and measures, per
query: (i) the number of patterns involved, (ii) the maximum depth of nested
expressions, (iii) the number of clauses involved, and (iv) the number of
cross-clause data references.  This module computes those four metrics plus
the per-clause-type histograms behind Figures 11 and 12.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Union

from repro.cypher import ast

__all__ = ["QueryMetrics", "analyze", "clause_histogram", "clause_types_in"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


@dataclass(frozen=True)
class QueryMetrics:
    """The four complexity metrics of Table 5."""

    patterns: int
    expression_depth: int
    clauses: int
    dependencies: int


def _flatten(query: AnyQuery) -> List[ast.Query]:
    if isinstance(query, ast.UnionQuery):
        return _flatten(query.left) + [query.right]
    return [query]


def _clause_bound_variables(clause: ast.Clause) -> Set[str]:
    """Variables newly introduced by *clause*."""
    bound: Set[str] = set()
    if isinstance(clause, (ast.Match, ast.Create)):
        for pattern in clause.patterns:
            bound.update(pattern.variables())
    elif isinstance(clause, ast.Merge):
        bound.update(clause.pattern.variables())
    elif isinstance(clause, ast.Unwind):
        bound.add(clause.alias)
    elif isinstance(clause, (ast.With, ast.Return)):
        for item in clause.items:
            bound.add(item.output_name())
    elif isinstance(clause, ast.Call):
        for name, alias in clause.yield_items:
            bound.add(alias or name)
    return bound


def _clause_variable_uses(clause: ast.Clause) -> Iterator[str]:
    """Every variable occurrence *used* (referenced) in *clause*.

    Pattern elements that carry a variable count as uses too — reusing a
    variable bound earlier inside a later MATCH is precisely the kind of
    cross-clause dependency the paper counts (e.g. ``n5`` referenced in four
    clauses in Figure 1).
    """
    for expr in ast.walk_expressions(clause):
        yield from expr.variables()
    if isinstance(clause, (ast.Match, ast.Create)):
        for pattern in clause.patterns:
            yield from pattern.variables()
    elif isinstance(clause, ast.Merge):
        yield from clause.pattern.variables()


def analyze(query: AnyQuery) -> QueryMetrics:
    """Compute the Table 5 metrics for one query."""
    patterns = 0
    depth = 0
    clause_count = 0
    dependencies = 0

    for sub in _flatten(query):
        seen: Set[str] = set()
        for clause in sub.clauses:
            clause_count += 1
            if isinstance(clause, ast.Match):
                patterns += len(clause.patterns)
            elif isinstance(clause, (ast.Create,)):
                patterns += len(clause.patterns)
            elif isinstance(clause, ast.Merge):
                patterns += 1
            for expr in ast.walk_expressions(clause):
                depth = max(depth, expr.depth())
            # Cross-clause references: uses of variables bound by an
            # *earlier* clause.
            for name in _clause_variable_uses(clause):
                if name in seen:
                    dependencies += 1
            seen.update(_clause_bound_variables(clause))
    return QueryMetrics(patterns, depth, clause_count, dependencies)


def clause_types_in(query: AnyQuery) -> List[str]:
    """All clause/subclause type names occurring in *query* (with repeats).

    Subclauses (WHERE, ORDER BY, SKIP, LIMIT, DISTINCT) are reported
    individually, matching the paper's Figure 11 accounting where WHERE
    "appears more than 100 times as it serves as the filtering subclause for
    both MATCH and WITH".
    """
    names: List[str] = []
    for sub in _flatten(query):
        for clause in sub.clauses:
            if isinstance(clause, ast.Match):
                names.append("OPTIONAL MATCH" if clause.optional else "MATCH")
                if clause.where is not None:
                    names.append("WHERE")
            elif isinstance(clause, ast.Unwind):
                names.append("UNWIND")
            elif isinstance(clause, ast.With):
                names.append("WITH")
                if clause.distinct:
                    names.append("DISTINCT")
                if clause.order_by:
                    names.append("ORDER BY")
                if clause.skip is not None:
                    names.append("SKIP")
                if clause.limit is not None:
                    names.append("LIMIT")
                if clause.where is not None:
                    names.append("WHERE")
            elif isinstance(clause, ast.Return):
                names.append("RETURN")
                if clause.distinct:
                    names.append("DISTINCT")
                if clause.order_by:
                    names.append("ORDER BY")
                if clause.skip is not None:
                    names.append("SKIP")
                if clause.limit is not None:
                    names.append("LIMIT")
            elif isinstance(clause, ast.Call):
                names.append("CALL")
            elif isinstance(clause, ast.Create):
                names.append("CREATE")
            elif isinstance(clause, ast.SetClause):
                names.append("SET")
            elif isinstance(clause, ast.Delete):
                names.append("DETACH DELETE" if clause.detach else "DELETE")
            elif isinstance(clause, ast.Remove):
                names.append("REMOVE")
            elif isinstance(clause, ast.Merge):
                names.append("MERGE")
    if isinstance(query, ast.UnionQuery):
        names.append("UNION")
    return names


def clause_histogram(queries) -> Dict[str, int]:
    """Aggregate clause counts over many queries (Figure 11)."""
    counter: Counter = Counter()
    for query in queries:
        counter.update(clause_types_in(query))
    return dict(counter)


def functions_in(query: AnyQuery) -> List[str]:
    """All function names used in *query* (for the §5.3 function analysis)."""
    names: List[str] = []

    def visit(expr: ast.Expression) -> None:
        if isinstance(expr, ast.FunctionCall):
            names.append(expr.name.lower())
        for child in expr.children():
            visit(child)

    for sub in _flatten(query):
        for clause in sub.clauses:
            for expr in ast.walk_expressions(clause):
                visit(expr)
    return names
