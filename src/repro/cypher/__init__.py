"""Cypher language substrate: AST, printer, lexer/parser, functions, analysis."""

from repro.cypher import ast
from repro.cypher.printer import print_clause, print_expression, print_pattern, print_query
from repro.cypher.parser import ParseError, parse_expression, parse_query
from repro.cypher.analysis import QueryMetrics, analyze, clause_histogram

__all__ = [
    "ast",
    "print_query",
    "print_clause",
    "print_pattern",
    "print_expression",
    "parse_query",
    "parse_expression",
    "ParseError",
    "QueryMetrics",
    "analyze",
    "clause_histogram",
]
