"""Tokenizer for the Cypher subset.

Produces a flat token stream for :mod:`repro.cypher.parser`.  Keywords are
case-insensitive (normalized to upper case); identifiers keep their spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]


class LexError(Exception):
    """Raised on malformed input text."""


KEYWORDS = frozenset(
    [
        "MATCH", "OPTIONAL", "UNWIND", "WITH", "RETURN", "WHERE", "ORDER",
        "BY", "SKIP", "LIMIT", "AS", "DISTINCT", "UNION", "ALL", "CALL",
        "YIELD", "CREATE", "SET", "DELETE", "DETACH", "REMOVE", "MERGE",
        "AND", "OR", "XOR", "NOT", "IN", "STARTS", "ENDS", "CONTAINS",
        "IS", "NULL", "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE",
        "END", "DESC", "DESCENDING", "ASC", "ASCENDING", "ON",
    ]
)

# Multi-character punctuation, longest first so the scanner is greedy.
_PUNCT = [
    "<=", ">=", "<>", "->", "<-", "..", "=~",
    "(", ")", "[", "]", "{", "}", ",", ":", ";", ".", "-", "<", ">",
    "=", "+", "*", "/", "%", "^", "|",
]


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is one of ident/keyword/int/float/string/punct/eof."""

    kind: str
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_punct(self, *values: str) -> bool:
        return self.kind == "punct" and self.value in values


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*, raising :class:`LexError` on bad input."""
    tokens: List[Token] = []
    index = 0
    length = len(text)

    while index < length:
        char = text[index]

        if char.isspace():
            index += 1
            continue

        # Line comments.
        if text.startswith("//", index):
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue

        # String literal.
        if char in ("'", '"'):
            quote = char
            out: List[str] = []
            cursor = index + 1
            while cursor < length:
                current = text[cursor]
                if current == "\\":
                    if cursor + 1 >= length:
                        raise LexError(f"dangling escape at {cursor}")
                    escape = text[cursor + 1]
                    mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
                    out.append(mapping.get(escape, escape))
                    cursor += 2
                    continue
                if current == quote:
                    break
                out.append(current)
                cursor += 1
            else:
                raise LexError(f"unterminated string starting at {index}")
            tokens.append(Token("string", "".join(out), index))
            index = cursor + 1
            continue

        # Number literal (integer or float; sign handled by the parser).
        if char.isdigit():
            cursor = index
            while cursor < length and text[cursor].isdigit():
                cursor += 1
            is_float = False
            if (
                cursor < length
                and text[cursor] == "."
                and cursor + 1 < length
                and text[cursor + 1].isdigit()
            ):
                is_float = True
                cursor += 1
                while cursor < length and text[cursor].isdigit():
                    cursor += 1
            if cursor < length and text[cursor] in ("e", "E"):
                peek = cursor + 1
                if peek < length and text[peek] in ("+", "-"):
                    peek += 1
                if peek < length and text[peek].isdigit():
                    is_float = True
                    cursor = peek
                    while cursor < length and text[cursor].isdigit():
                        cursor += 1
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, text[index:cursor], index))
            index = cursor
            continue

        # Identifier or keyword.
        if char.isalpha() or char == "_":
            cursor = index
            while cursor < length and (text[cursor].isalnum() or text[cursor] == "_"):
                cursor += 1
            word = text[index:cursor]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, index))
            else:
                tokens.append(Token("ident", word, index))
            index = cursor
            continue

        # Backtick-quoted identifier.
        if char == "`":
            closing = text.find("`", index + 1)
            if closing == -1:
                raise LexError(f"unterminated backtick identifier at {index}")
            tokens.append(Token("ident", text[index + 1:closing], index))
            index = closing + 1
            continue

        # Punctuation.
        for punct in _PUNCT:
            if text.startswith(punct, index):
                tokens.append(Token("punct", punct, index))
                index += len(punct)
                break
        else:
            raise LexError(f"unexpected character {char!r} at {index}")

    tokens.append(Token("eof", "", length))
    return tokens
