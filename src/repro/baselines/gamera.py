"""Gamera: graph-aware metamorphic relations (Zhuang et al., VLDB '24).

Two representative relations are implemented:

* **MR-A (graph augmentation)**: adding an isolated node with a fresh label
  must leave the result unchanged.  Applicable only when every node pattern
  carries a label (otherwise the new node genuinely matches) and the query
  calls no procedures.
* **MR-B (direction relaxation)**: relaxing one directed relationship
  pattern to undirected can only *grow* the result: ``R(Q) ⊆ R(Q')``.
  Applicable only without OPTIONAL MATCH, aggregation, or LIMIT/SKIP, all
  of which break monotonicity.

Both relations are insensitive to bugs whose behaviour is identical across
the original and transformed runs — e.g. faults rooted in UNWIND handling
(paper Figure 17) — which is exactly the blind spot §5.4.3 describes.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.baselines.common import (
    BaselineTester,
    GeneratorProfile,
    run_and_observe,
)
from repro.core.runner import BugReport, CampaignResult
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.engine.evaluator import has_aggregate
from repro.gdb.engines import GraphDatabase
from repro.runtime.protocol import SessionPolicy

__all__ = ["GameraTester", "relax_one_direction", "augmentation_applicable"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def augmentation_applicable(query: AnyQuery) -> bool:
    """Whether MR-A (isolated-node augmentation) preserves the result."""
    if isinstance(query, ast.UnionQuery):
        return augmentation_applicable(query.left) and augmentation_applicable(
            query.right
        )
    for clause in query.clauses:
        if isinstance(clause, ast.Call):
            return False
        if isinstance(clause, ast.Match):
            for pattern in clause.patterns:
                for node in pattern.nodes:
                    if not node.labels:
                        return False
    return True


def _monotonicity_applicable(query: AnyQuery) -> bool:
    if isinstance(query, ast.UnionQuery):
        return False
    for clause in query.clauses:
        if isinstance(clause, ast.Match) and clause.optional:
            return False
        if isinstance(clause, (ast.With, ast.Return)):
            if clause.limit is not None or clause.skip is not None:
                return False
            if clause.distinct:
                return False
            if any(has_aggregate(item.expression) for item in clause.items):
                return False
    return True


def relax_one_direction(query: AnyQuery) -> Optional[AnyQuery]:
    """MR-B: make the first directed relationship pattern undirected."""
    if not _monotonicity_applicable(query):
        return None
    assert isinstance(query, ast.Query)
    clauses = list(query.clauses)
    for clause_index, clause in enumerate(clauses):
        if not isinstance(clause, ast.Match):
            continue
        patterns = list(clause.patterns)
        for pattern_index, pattern in enumerate(patterns):
            rels = list(pattern.relationships)
            for rel_index, rel in enumerate(rels):
                if rel.direction == ast.BOTH:
                    continue
                rels[rel_index] = ast.RelationshipPattern(
                    rel.variable, rel.types, ast.BOTH, rel.properties
                )
                patterns[pattern_index] = ast.PathPattern(
                    pattern.nodes, tuple(rels)
                )
                clauses[clause_index] = ast.Match(
                    tuple(patterns), clause.optional, clause.where
                )
                return ast.Query(tuple(clauses))
    return None


class GameraTester(BaselineTester):
    """Graph-aware metamorphic tester."""

    name = "Gamera"
    # Declared explicitly (new policy-object API): one long-lived session.
    session = SessionPolicy.long_session()
    # Small queries (Table 5: 0.83 patterns, depth 1.39, 1.92 clauses).
    profile = GeneratorProfile(
        name="Gamera",
        min_clauses=2,
        max_clauses=2,
        max_patterns_per_match=1,
        max_path_length=1,
        expression_depth=1,
        reuse_probability=0.2,
        where_probability=0.6,
        label_probability=0.9,          # labeled patterns keep MR-A applicable
        order_by_probability=0.05,
        distinct_probability=0.0,
    )
    supported_engines = ("neo4j", "falkordb", "kuzu")  # no Memgraph support

    def check_query(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        rng: random.Random,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        result.sim_seconds += engine.cost_of(query)
        base, exc, fired = run_and_observe(engine, query)
        if exc is not None:
            if self._is_hard_failure(exc):
                return self._error_report(
                    engine, print_query(query), exc, result.sim_seconds
                )
            return None

        # MR-A: isolated-node augmentation.
        if augmentation_applicable(query) and engine.graph is not None:
            augmented = engine.graph.copy()
            augmented.add_node([f"GameraAug{augmented.node_count}"], {})
            original_graph, original_schema = engine.graph, engine.schema
            engine.load_graph(augmented, original_schema, restart=False)
            result.sim_seconds += engine.cost_of(query)
            aug_result, aug_exc, aug_fault = run_and_observe(engine, query)
            engine.load_graph(original_graph, original_schema, restart=False)
            fired = fired or aug_fault
            if aug_exc is not None:
                if self._is_hard_failure(aug_exc):
                    return self._error_report(
                        engine, print_query(query), aug_exc, result.sim_seconds
                    )
            elif not base.same_rows(aug_result):
                return self._violation(engine, query, fired, result,
                                       "MR-A: result changed after adding an "
                                       "isolated node")

        # MR-B: direction relaxation (superset check).
        relaxed = relax_one_direction(query)
        if relaxed is not None:
            result.sim_seconds += engine.cost_of(relaxed)
            sup_result, sup_exc, sup_fault = run_and_observe(engine, relaxed)
            fired = fired or sup_fault
            if sup_exc is not None:
                if self._is_hard_failure(sup_exc):
                    return self._error_report(
                        engine, print_query(relaxed), sup_exc, result.sim_seconds
                    )
            elif not base.is_sub_bag_of(sup_result):
                return self._violation(engine, query, fired, result,
                                       "MR-B: relaxing a direction shrank "
                                       "the result")
        return None

    def _violation(self, engine, query, fault, result, detail) -> BugReport:
        return BugReport(
            tester=self.name,
            engine=engine.name,
            kind="logic",
            detail=detail,
            query_text=print_query(query),
            fault_id=fault.fault_id if fault else None,
            sim_time=result.sim_seconds,
        )
