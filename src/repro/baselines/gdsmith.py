"""GDsmith: randomized differential testing of Cypher engines (Hua et al.,
ISSTA '23).

GDsmith runs the same generated query on several GDBs and reports any
discrepancy between their (driver-formatted) outputs.  Two organic weaknesses
the paper quantifies (§5.4.3) are modeled faithfully:

* **False positives** (~98 % in the paper's 24-hour Neo4j/Memgraph run):
  GDsmith's generator is not dialect-aware, so queries hit engine-specific
  behaviour that is *intended* — runtime type leniency, unsupported
  functions, relationship-uniqueness deviations, driver float formatting —
  and every such difference surfaces as a bug report.
* **Shared-codebase blindness**: discrepancies only appear when exactly one
  engine misbehaves; our engines share no faults, so replayed GQS queries
  are all detected (matching §5.4.3's "no missed bugs" finding for GDsmith).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.baselines.common import (
    BaselineTester,
    GeneratorProfile,
    run_and_observe,
)
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.gdb.engines import GraphDatabase
from repro.runtime.protocol import Judgement, SessionPolicy
from repro.runtime.results import BugReport, CampaignResult

__all__ = ["GDsmithTester"]

AnyQuery = Union[ast.Query, ast.UnionQuery]


class GDsmithTester(BaselineTester):
    """Differential tester across several engines."""

    name = "GDsmith"
    # Declared explicitly (new policy-object API): one long-lived session.
    session = SessionPolicy.long_session()
    # GDsmith's skeleton-based generation yields fairly complex queries
    # (Table 5: 4.96 patterns, depth 3.68, 6.39 clauses, 21.75 deps).
    profile = GeneratorProfile(
        name="GDsmith",
        min_clauses=4,
        max_clauses=8,
        max_patterns_per_match=2,
        max_path_length=3,
        expression_depth=3,
        reuse_probability=0.45,
        where_probability=0.8,
        unwind_probability=0.1,
        with_probability=0.25,
        order_by_probability=0.15,
        distinct_probability=0.1,
        type_safe=False,               # emits runtime-type-unsafe expressions
    )
    supported_engines = ("neo4j", "memgraph", "falkordb")

    def __init__(self, comparison_engines: Sequence[GraphDatabase], **kwargs):
        super().__init__(**kwargs)
        self.comparison_engines = list(comparison_engines)

    # -- multi-engine session: all engines hold the same graph ------------

    def _session_engines(self, engine: GraphDatabase) -> list:
        return [engine] + [
            other for other in self.comparison_engines if other is not engine
        ]

    def session_engines(self, engine: GraphDatabase) -> list:
        # Kernel-facing alias (bug attribution / flight recording).
        return self._session_engines(engine)

    def load_graph(self, engine, graph, schema, restart) -> None:
        for gdb in self._session_engines(engine):
            gdb.load_graph(graph, schema, restart=restart)

    def judge(self, engine, query, graph, rng, result):
        report = self._check_differential(
            self._session_engines(engine), query, result
        )
        return Judgement(report=report)

    def recover(self, engine, graph, schema) -> bool:
        restarted = False
        for gdb in self._session_engines(engine):
            if gdb.crashed:
                gdb.restart()
                gdb.load_graph(graph, schema, restart=True)
                restarted = True
        return restarted

    # -- differential oracle --------------------------------------------------

    def _check_differential(
        self,
        engines: Sequence[GraphDatabase],
        query: AnyQuery,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        outcomes = []
        fired = None
        fired_engine = None
        for gdb in engines:
            result.sim_seconds += gdb.cost_of(query)
            res, exc, fault = run_and_observe(gdb, query)
            if fault is not None and fired is None:
                fired = fault
                fired_engine = gdb
            if exc is not None and self._is_hard_failure(exc):
                return self._error_report(
                    gdb, print_query(query), exc, result.sim_seconds
                )
            outcomes.append((gdb, res, exc))

        # Compare driver-formatted outputs (or error/no-error status).
        rendered = []
        for gdb, res, exc in outcomes:
            if exc is not None:
                rendered.append(("error",))
            else:
                rows = res.to_table(gdb.dialect)
                rendered.append(tuple(sorted(map(tuple, rows))))
        if all(item == rendered[0] for item in rendered[1:]):
            return None

        report_engine = fired_engine or engines[0]
        return BugReport(
            tester=self.name,
            engine=report_engine.name,
            kind="logic",
            detail="differential discrepancy across engines",
            query_text=print_query(query),
            fault_id=fired.fault_id if fired else None,
            sim_time=result.sim_seconds,
        )

    # -- replay (§5.4.3) -----------------------------------------------------

    def check_query(self, engine, query, rng, result):
        engines = [engine] + [
            other for other in self.comparison_engines if other is not engine
        ]
        # The comparison engines must hold the same graph as the target.
        if engine.graph is not None:
            for other in engines[1:]:
                other.load_graph(engine.graph, engine.schema, restart=True)
        return self._check_differential(engines, query, result)
