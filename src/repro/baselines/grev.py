"""GRev: testing GDBs via equivalent query rewriting (Mang et al., ICSE '24).

GRev rewrites a query into semantically equivalent forms and checks result
equality.  The rewrites implemented here preserve openCypher semantics:

* reversing path patterns (``(a)-[r]->(b)`` ≡ ``(b)<-[r]-(a)``) — this is
  the class of rewrites that steers engines into different query plans
  (paper §3.4 footnote);
* permuting comma-separated patterns within a MATCH;
* commuting AND conjuncts inside WHERE;
* double-negating a WHERE predicate (``P`` ≡ ``NOT (NOT P)``).

Queries containing LIMIT/SKIP are skipped: with ties, truncation makes even
equivalent queries legitimately nondeterministic, and GRev's oracle must not
raise false alarms.
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.baselines.common import (
    BaselineTester,
    GeneratorProfile,
    run_and_observe,
)
from repro.core.runner import BugReport, CampaignResult
from repro.cypher import ast
from repro.cypher.printer import print_query
from repro.gdb.engines import GraphDatabase
from repro.runtime.protocol import SessionPolicy

__all__ = [
    "GRevTester",
    "reverse_patterns",
    "permute_patterns",
    "double_negate_where",
    "rewrite_applicable",
]

AnyQuery = Union[ast.Query, ast.UnionQuery]


def rewrite_applicable(query: AnyQuery) -> bool:
    """Equivalence checking is unsound under truncation with ties."""
    if isinstance(query, ast.UnionQuery):
        return rewrite_applicable(query.left) and rewrite_applicable(query.right)
    for clause in query.clauses:
        if isinstance(clause, (ast.With, ast.Return)):
            if clause.limit is not None or clause.skip is not None:
                return False
    return True


def _reverse_path(pattern: ast.PathPattern) -> ast.PathPattern:
    flipped = {ast.OUT: ast.IN, ast.IN: ast.OUT, ast.BOTH: ast.BOTH}
    nodes = tuple(reversed(pattern.nodes))
    rels = tuple(
        ast.RelationshipPattern(
            rel.variable, rel.types, flipped[rel.direction], rel.properties
        )
        for rel in reversed(pattern.relationships)
    )
    return ast.PathPattern(nodes, rels)


def reverse_patterns(query: AnyQuery) -> Optional[AnyQuery]:
    """Rewrite every path pattern into its reverse orientation."""
    if isinstance(query, ast.UnionQuery) or not rewrite_applicable(query):
        return None
    changed = False
    clauses = []
    for clause in query.clauses:
        if isinstance(clause, ast.Match) and any(
            len(p.relationships) > 0 for p in clause.patterns
        ):
            clauses.append(
                ast.Match(
                    tuple(_reverse_path(p) for p in clause.patterns),
                    clause.optional,
                    clause.where,
                )
            )
            changed = True
        else:
            clauses.append(clause)
    if not changed:
        return None
    return ast.Query(tuple(clauses))


def permute_patterns(query: AnyQuery, rng: random.Random) -> Optional[AnyQuery]:
    """Shuffle the comma-separated patterns of each multi-pattern MATCH."""
    if isinstance(query, ast.UnionQuery) or not rewrite_applicable(query):
        return None
    changed = False
    clauses = []
    for clause in query.clauses:
        if isinstance(clause, ast.Match) and len(clause.patterns) > 1:
            patterns = list(clause.patterns)
            rng.shuffle(patterns)
            if tuple(patterns) != clause.patterns:
                changed = True
            clauses.append(
                ast.Match(tuple(patterns), clause.optional, clause.where)
            )
        else:
            clauses.append(clause)
    if not changed:
        return None
    return ast.Query(tuple(clauses))


def double_negate_where(query: AnyQuery) -> Optional[AnyQuery]:
    """``WHERE P`` becomes ``WHERE NOT (NOT P)`` (ternary-logic safe)."""
    if isinstance(query, ast.UnionQuery) or not rewrite_applicable(query):
        return None
    clauses = list(query.clauses)
    for index, clause in enumerate(clauses):
        if isinstance(clause, ast.Match) and clause.where is not None:
            clauses[index] = ast.Match(
                clause.patterns,
                clause.optional,
                ast.Unary("NOT", ast.Unary("NOT", clause.where)),
            )
            return ast.Query(tuple(clauses))
    return None


class GRevTester(BaselineTester):
    """Equivalent-query-rewriting tester."""

    name = "GRev"
    # Declared explicitly (new policy-object API): one long-lived session.
    session = SessionPolicy.long_session()
    # Table 5: 6.69 patterns, depth 5.26, 6.49 clauses, 28.41 dependencies.
    profile = GeneratorProfile(
        name="GRev",
        min_clauses=5,
        max_clauses=8,
        max_patterns_per_match=2,
        max_path_length=3,
        expression_depth=4,
        reuse_probability=0.5,
        where_probability=0.85,
        unwind_probability=0.05,
        with_probability=0.3,
        order_by_probability=0.1,
        distinct_probability=0.05,
    )
    supported_engines = ("neo4j", "memgraph", "falkordb")

    def check_query(
        self,
        engine: GraphDatabase,
        query: AnyQuery,
        rng: random.Random,
        result: CampaignResult,
    ) -> Optional[BugReport]:
        result.sim_seconds += engine.cost_of(query)
        base, exc, fired = run_and_observe(engine, query)
        if exc is not None:
            if self._is_hard_failure(exc):
                return self._error_report(
                    engine, print_query(query), exc, result.sim_seconds
                )
            return None

        rewrites = [
            reverse_patterns(query),
            permute_patterns(query, rng),
            double_negate_where(query),
        ]
        for variant in rewrites:
            if variant is None:
                continue
            result.sim_seconds += engine.cost_of(variant)
            res, var_exc, var_fault = run_and_observe(engine, variant)
            fired = fired or var_fault
            if var_exc is not None:
                if self._is_hard_failure(var_exc):
                    return self._error_report(
                        engine, print_query(variant), var_exc, result.sim_seconds
                    )
                continue
            if not base.same_rows(res):
                return BugReport(
                    tester=self.name,
                    engine=engine.name,
                    kind="logic",
                    detail="equivalent rewrite produced a different result",
                    query_text=print_query(query),
                    fault_id=fired.fault_id if fired else None,
                    sim_time=result.sim_seconds,
                )
        return None
