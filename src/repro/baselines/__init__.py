"""Re-implementations of the five state-of-the-art baseline testers (§5.4)."""

from repro.baselines.common import BaselineTester, GeneratorProfile, RandomQueryGenerator
from repro.baselines.gdbmeter import GDBMeterTester, partition_query
from repro.baselines.gdsmith import GDsmithTester
from repro.baselines.gamera import GameraTester
from repro.baselines.gqt import GQTTester
from repro.baselines.grev import GRevTester

__all__ = [
    "BaselineTester",
    "GeneratorProfile",
    "RandomQueryGenerator",
    "GDBMeterTester",
    "partition_query",
    "GDsmithTester",
    "GameraTester",
    "GQTTester",
    "GRevTester",
]
